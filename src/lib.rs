//! Shrink-wrap-schema reuse through concept schemas — a complete Rust
//! implementation of Delcambre & Langston, *Reusing (Shrink Wrap) Schemas
//! by Modifying Concept Schemas* (OGI CS/E 95-009, 1995 / ICDE 1996).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`odl`] — extended ODMG ODL (part-of, instance-of): parser, printer,
//!   validation,
//! * [`model`] — the arena/ID schema graph, hierarchy queries,
//!   well-formedness, diff,
//! * [`core`] — concept schemas, modification operations, permission
//!   matrix, constraints, consistency, mapping, impact (the paper's
//!   contribution),
//! * [`repository`] — persistence (ODL text + replayable op log),
//! * [`designer`] — the interactive session engine and REPL,
//! * [`corpus`] — the paper's example schemas and a synthetic generator.
//!
//! # Quickstart
//!
//! ```
//! use shrink_wrap_schemas::prelude::*;
//!
//! // 1. Ingest a shrink wrap schema.
//! let mut session = Session::from_odl(
//!     "interface Person { attribute string name; }
//!      interface Employee : Person { attribute long badge; }",
//! )
//! .unwrap();
//!
//! // 2. Browse its concept schemas.
//! assert_eq!(session.concept_list().len(), 3); // 2 wagon wheels + 1 hierarchy
//!
//! // 3. Customize: elaborate in a wagon wheel context...
//! session.issue_str("add_attribute(Employee, double, salary)").unwrap();
//! // ...and move information in the generalization hierarchy.
//! session.set_context(ConceptKind::Generalization);
//! let feedback = session.issue_str("modify_attribute(Employee, badge, Person)").unwrap();
//! assert!(!feedback.warnings.is_empty()); // cautionary feedback
//!
//! // 4. Inspect the derived mapping.
//! let summary = session.mapping().summary();
//! assert_eq!(summary.moved, 1);
//! assert_eq!(summary.added, 1);
//! ```
#![forbid(unsafe_code)]

pub use sws_core as core;
pub use sws_corpus as corpus;
pub use sws_designer as designer;
pub use sws_model as model;
pub use sws_odl as odl;
pub use sws_repository as repository;

/// The most commonly used items in one import.
pub mod prelude {
    pub use sws_core::ops::PermissionMatrix;
    pub use sws_core::{
        decompose, ConceptKind, ConceptSchema, Feedback, Mapping, ModOp, OpError, OpKind, Workspace,
    };
    pub use sws_designer::{execute, CommandOutcome, Session};
    pub use sws_model::{graph_to_schema, schema_to_graph, SchemaGraph};
    pub use sws_odl::{parse_schema, print_schema, Schema};
    pub use sws_repository::Repository;
}
