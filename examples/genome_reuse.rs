//! The §4 case study as a designer would live it: take the ACEDB schema as
//! shrink wrap and customize it for a new organism database — the scenario
//! in which AAtDB and SacchDB were (manually) created from ACEDB.
//!
//! ```sh
//! cargo run --example genome_reuse
//! ```

use shrink_wrap_schemas::corpus::genome;
use shrink_wrap_schemas::prelude::*;

fn main() {
    let acedb = genome::acedb();
    println!(
        "shrink wrap: ACEDB — {} types, {} constructs",
        acedb.type_count(),
        acedb.construct_count()
    );

    let mut session = Session::new(Repository::ingest(acedb));

    // Our new organism database doesn't use worm genetics data...
    for stmt in [
        "delete_type_definition(TwoPointData)",
        "delete_type_definition(Rearrangement)",
        // ...and uses 'Phenotype' (plant terminology) instead of 'Strain'.
        // Under name equivalence this is a delete + add: the §5 discussion
        // acknowledges exactly this limitation.
        "delete_type_definition(Strain)",
        "add_type_definition(Phenotype)",
        "add_extent_name(Phenotype, phenotypes)",
        "add_attribute(Phenotype, string(32), phenotype_name)",
        "add_attribute(Phenotype, string(64), description)",
        "add_key_list(Phenotype, (phenotype_name))",
        "add_relationship(Phenotype, set<Allele>, carries, Allele::carried_by)",
        // New for this project: growth-condition records per phenotype.
        "add_type_definition(GrowthCondition)",
        "add_attribute(GrowthCondition, string(32), medium)",
        "add_attribute(GrowthCondition, double, temperature)",
        "add_relationship(GrowthCondition, set<Phenotype>, observed_phenotypes, Phenotype::observed_under)",
    ] {
        match session.issue_str(stmt) {
            Ok(feedback) => {
                print!("{}", feedback.render());
            }
            Err(e) => {
                println!("rejected: {stmt}\n  {e}");
                return;
            }
        }
    }

    // The deletes cascaded relationships; the consistency report confirms
    // the custom schema is sound.
    let report = session.consistency();
    println!("\nconsistency report ({} findings):", report.findings.len());
    print!("{}", report.render());

    // The mapping quantifies the reuse.
    let mapping = session.mapping();
    let summary = mapping.summary();
    println!("\nmapping summary:");
    println!("  shrink wrap constructs : {}", summary.shrink_wrap_total());
    println!(
        "  reused                 : {:.1}%",
        summary.reuse_fraction() * 100.0
    );
    println!("  deleted                : {}", summary.deleted);
    println!("  added                  : {}", summary.added);
    println!(
        "  ops issued             : {}",
        session.repository().workspace().log().len()
    );

    // Systems built from the same shrink wrap share their common objects —
    // the interoperation benefit §5 points out.
    let shared = genome::shared_type_names();
    println!(
        "\n{} object types shared with the published ACEDB descendants: {}",
        shared.len(),
        shared.join(", ")
    );
}
