//! Drive the interactive schema designer (`swsd`) programmatically: the
//! same command interpreter the binary wires to stdin, here fed a scripted
//! design session over the EMSL software-version schema (Fig. 6).
//!
//! ```sh
//! cargo run --example repl_script
//! ```

use shrink_wrap_schemas::corpus::software;
use shrink_wrap_schemas::prelude::*;

fn main() {
    let mut session = Session::new(Repository::ingest_odl(software::SOURCE).expect("valid corpus"));

    let script = [
        "help",
        "concepts",
        // The instance-of hierarchy is the last concept schema; select the
        // Application wagon wheel first for a look.
        "show 0",
        // Elaborate: applications carry a license record.
        "add_type_definition(License)",
        "add_attribute(License, string(32), license_key)",
        "add_relationship(Application, License, licensed_under, License::licenses)",
        // Switch to the instance-of hierarchy to extend the chain:
        // installed versions are configured per user.
        "context instance_of",
        "add_type_definition(UserConfiguration)",
        "add_instance_of_relationship(InstalledVersion, set<UserConfiguration>, configurations, UserConfiguration::installation)",
        // A cycle is refused.
        "add_instance_of_relationship(UserConfiguration, set<Application>, apps, Application::config)",
        "map",
        "check",
        "log",
        "odl",
        "quit",
    ];

    for line in script {
        println!("swsd> {line}");
        match execute(&mut session, line) {
            CommandOutcome::Continue(text) => print!("{text}"),
            CommandOutcome::Quit => {
                println!("session ended");
                break;
            }
        }
    }
}
