//! Interoperation through common objects (paper §5): two teams customize
//! the same business-objects shrink wrap schema for their own systems;
//! because both started from the same shrink wrap, their shared vocabulary
//! is computable — "the semantically identical constructs have already
//! been identified."
//!
//! ```sh
//! cargo run --example interop_commons
//! ```

use shrink_wrap_schemas::core::interop;
use shrink_wrap_schemas::core::Mapping;
use shrink_wrap_schemas::corpus::business;
use shrink_wrap_schemas::prelude::*;

fn customize(statements: &[(&str, ConceptKind)]) -> Session {
    let mut session = Session::new(Repository::ingest(business::graph()));
    for (stmt, context) in statements {
        session.set_context(*context);
        session
            .issue_str(stmt)
            .unwrap_or_else(|e| panic!("{stmt}: {e}"));
    }
    session
}

fn main() {
    use ConceptKind::{Generalization, WagonWheel};

    // Team A builds the web-shop: no payroll data, loyalty tracking added.
    let team_a = customize(&[
        ("delete_type_definition(EmployeeRecord)", WagonWheel),
        ("add_type_definition(LoyaltyAccount)", WagonWheel),
        (
            "add_attribute(LoyaltyAccount, unsigned_long, points)",
            WagonWheel,
        ),
        (
            "add_relationship(LoyaltyAccount, Customer, holder, Customer::loyalty)",
            WagonWheel,
        ),
        ("delete_attribute(Person, born)", WagonWheel),
    ]);

    // Team B builds the warehouse system: no catalog, stock detail added,
    // and `display_name` generalized usage shifted down to Person.
    let team_b = customize(&[
        ("delete_type_definition(Catalog)", WagonWheel),
        ("delete_type_definition(CatalogSection)", WagonWheel),
        (
            "add_attribute(StockLevel, string(16), bin_location)",
            WagonWheel,
        ),
        (
            "modify_attribute(Party, display_name, Person)",
            Generalization,
        ),
    ]);

    let map_a = Mapping::derive(team_a.repository().workspace());
    let map_b = Mapping::derive(team_b.repository().workspace());

    println!(
        "team A reuse: {:.1}%   team B reuse: {:.1}%",
        map_a.summary().reuse_fraction() * 100.0,
        map_b.summary().reuse_fraction() * 100.0
    );

    let commons = interop::common_objects(&map_a, &map_b);
    let summary = interop::summarize(&map_a, &map_b);
    println!(
        "\ncommon objects: {} of {} shrink wrap constructs ({:.1}% shared vocabulary), \
         {} byte-identical",
        summary.common,
        summary.shrink_wrap_total,
        summary.interchange_fraction() * 100.0,
        summary.identical
    );

    println!("\nconstructs needing adaptation at the integration boundary:");
    for common in commons.iter().filter(|c| !c.identical()) {
        println!("  {}", common.construct);
        println!("    in A: {}   in B: {}", common.in_a, common.in_b);
    }

    println!("\nexamples of interchange-ready constructs:");
    for common in commons.iter().filter(|c| c.identical()).take(8) {
        println!("  {}", common.construct);
    }
}
