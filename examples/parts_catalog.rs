//! Working with an aggregation hierarchy (Fig. 5): browse the house parts
//! explosion, re-wire it with the aggregation-hierarchy operations, and
//! watch the propagation when a component type is deleted.
//!
//! ```sh
//! cargo run --example parts_catalog
//! ```

use shrink_wrap_schemas::core::decompose;
use shrink_wrap_schemas::corpus::house;
use shrink_wrap_schemas::prelude::*;

fn show_aggregation(session: &Session, heading: &str) {
    let g = session.repository().workspace().working();
    let d = decompose(g);
    println!("{heading}");
    for cs in &d.aggregations {
        print!("{}", cs.describe(g));
    }
    println!();
}

fn main() {
    let mut session = Session::new(Repository::ingest_odl(house::SOURCE).expect("valid corpus"));
    show_aggregation(&session, "Fig. 5 — the house aggregation hierarchy:");

    // All modifications below concern the part-of explosion, so they are
    // issued in the aggregation-hierarchy context (Table 1).
    session.set_context(ConceptKind::Aggregation);

    // This catalog tracks skylights as roof components.
    for stmt in [
        "add_type_definition(Skylight)",
        "add_part_of_relationship(Roof, set<Skylight>, skylights, Skylight::roof)",
        // Shingle bundles are ordered by SKU — make the collection a list.
        "modify_part_of_cardinality(Roof, shingles, set, list)",
        "modify_part_of_order_by(Roof, shingles, (sku), (sku, color))",
    ] {
        let feedback = session
            .issue_str(stmt)
            .expect("legal in the aggregation context");
        print!("{}", feedback.render());
    }

    // Attribute edits belong to the wagon wheels.
    session.set_context(ConceptKind::WagonWheel);
    session
        .issue_str("add_attribute(Skylight, string(16), sku)")
        .expect("wagon wheel elaboration");

    // A cardinality modification addressed to the child (single-valued)
    // end is rejected — the grammar allows it only on the to-parts end.
    session.set_context(ConceptKind::Aggregation);
    let err = session
        .issue_str("modify_part_of_cardinality(Shingle, roof, set, list)")
        .expect_err("child end refuses cardinality changes");
    println!("rejected as expected: {err}\n");

    // Delete a whole component type and watch the propagation.
    session.set_context(ConceptKind::WagonWheel);
    let feedback = session
        .issue_str("delete_type_definition(Foundation)")
        .expect("type deletion is legal");
    println!("deleting Foundation propagates:");
    print!("{}", feedback.render());

    show_aggregation(&session, "\nthe customized parts explosion:");

    let report = session.consistency();
    println!("consistency findings ({}):", report.findings.len());
    print!("{}", report.render());
}
