//! The paper's running example, end to end (Figs. 3, 4, 7): start from the
//! university shrink wrap schema, view the course-offering concept schema,
//! elaborate it with a class schedule, simplify it for correspondence-only
//! courses, and persist the session.
//!
//! ```sh
//! cargo run --example university_redesign
//! ```

use shrink_wrap_schemas::core::decompose;
use shrink_wrap_schemas::corpus::university;
use shrink_wrap_schemas::prelude::*;

fn show_course_offering(session: &Session, heading: &str) {
    let g = session.repository().workspace().working();
    let d = decompose(g);
    let co = g.type_id("CourseOffering").expect("course offerings exist");
    let ww = d.wagon_wheel_of(co).expect("one wagon wheel per type");
    println!("{heading}\n{}", ww.describe(g));
}

fn main() {
    let mut session =
        Session::new(Repository::ingest_odl(university::SOURCE).expect("corpus schema is valid"));

    // Fig. 3: the designer considers the course-offering point of view.
    show_course_offering(&session, "Fig. 3 — the course-offering concept schema:");

    // Fig. 4: and the student generalization hierarchy.
    let list = session.concept_list();
    let gen = list
        .iter()
        .find(|cs| cs.kind == ConceptKind::Generalization)
        .expect("the university schema has a generalization hierarchy");
    println!(
        "Fig. 4 — {}:\n{}",
        gen.name,
        gen.describe(session.repository().workspace().working())
    );

    // Fig. 7, elaboration: a class schedule that consists of course
    // offerings (an aggregation link into the wagon wheel).
    for stmt in [
        "add_type_definition(Schedule)",
        "add_attribute(Schedule, string(16), term_name)",
        "add_part_of_relationship(Schedule, list<CourseOffering>, offerings, CourseOffering::schedule, (room))",
    ] {
        let feedback = session.issue_str(stmt).expect("elaboration is legal");
        print!("{}", feedback.render());
    }
    show_course_offering(&session, "\nFig. 7 — after elaboration:");

    // §3.4, simplification: correspondence-only courses need no time slot
    // and no room. Watch the impact report on the type deletion.
    for stmt in [
        "delete_relationship(CourseOffering, offered_during)",
        "delete_type_definition(TimeSlot)",
        "delete_attribute(CourseOffering, room)",
    ] {
        let feedback = session.issue_str(stmt).expect("simplification is legal");
        print!("{}", feedback.render());
    }
    show_course_offering(&session, "\nafter simplification (correspondence only):");

    // The mapping summarizes what happened to the shrink wrap schema.
    let summary = session.mapping().summary();
    println!(
        "mapping summary: {} unchanged, {} modified, {} moved, {} deleted, {} added \
         (reuse {:.1}%)",
        summary.unchanged,
        summary.modified,
        summary.moved,
        summary.deleted,
        summary.added,
        summary.reuse_fraction() * 100.0
    );

    // Persist and reload the whole session.
    let dir = std::env::temp_dir().join("sws_university_redesign");
    let _ = std::fs::remove_dir_all(&dir);
    session.save(&dir).expect("session saves");
    let reloaded = Session::load(&dir).expect("session replays");
    assert_eq!(
        reloaded.repository().custom_schema_odl(),
        session.repository().custom_schema_odl()
    );
    println!(
        "\nsession saved to {} and verified by replay",
        dir.display()
    );
}
