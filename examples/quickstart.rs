//! Quickstart: ingest a shrink wrap schema, browse its concept schemas,
//! customize it, and inspect the derived mapping.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use shrink_wrap_schemas::prelude::*;

const SHRINK_WRAP: &str = r#"
schema Library {
    interface Person {
        extent people;
        attribute string(64) name;
        keys name;
    }
    interface Member : Person {
        attribute unsigned_long card_number;
        relationship set<Loan> loans inverse Loan::borrower;
    }
    interface Librarian : Person {
        attribute string(32) desk;
    }
    interface Loan {
        attribute date due;
        relationship Member borrower inverse Member::loans;
        relationship Item item inverse Item::loaned_as;
    }
    interface Item {
        attribute string(64) title;
        relationship set<Loan> loaned_as inverse Loan::item;
    }
}
"#;

fn main() {
    // 1. Ingest the shrink wrap schema into an interactive session.
    let mut session = Session::from_odl(SHRINK_WRAP).expect("shrink wrap schema is valid");

    // 2. Browse the concept schemas: one wagon wheel per type, plus the
    //    Person generalization hierarchy.
    println!("concept schemas of the shrink wrap schema:");
    for (i, cs) in session.concept_list().iter().enumerate() {
        println!("  {i:>2}  {} ({} elements)", cs.name, cs.element_count());
    }

    // 3. Customize. Elaborate the Loan wagon wheel with a fine...
    let feedback = session
        .issue_str("add_attribute(Loan, double, fine)")
        .expect("elaboration is legal");
    print!("\n{}", feedback.render());

    // ...and move `name`-like information in the generalization hierarchy:
    // card numbers make sense for every person in this library.
    session.set_context(ConceptKind::Generalization);
    let feedback = session
        .issue_str("modify_attribute(Member, card_number, Person)")
        .expect("move is within the hierarchy");
    print!("{}", feedback.render());

    // An illegal customization is rejected with an explanation: moving a
    // relationship target outside the generalization path violates the
    // paper's semantic-stability rule.
    let err = session
        .issue_str("modify_relationship_target_type(Loan, item, Item, Person)")
        .expect_err("Item and Person are not on one generalization path");
    println!("rejected as expected: {err}");

    // 4. The mapping records the semantic correspondence between shrink
    //    wrap and custom schema.
    println!("\nmapping:\n{}", session.mapping().render());

    // 5. The consistency report surfaces interactions among concept
    //    schemas (none here).
    let report = session.consistency();
    println!(
        "consistency findings: {} ({} errors)",
        report.findings.len(),
        report.errors().count()
    );

    // 6. The custom schema is ordinary extended ODL.
    println!(
        "\ncustom schema:\n{}",
        session.repository().custom_schema_odl()
    );
}
