//! Property tests for the incremental verification engine.
//!
//! * The workspace's incrementally-maintained consistency report equals a
//!   from-scratch `check_consistency` run after every step of a random op
//!   script (accepted and rejected ops alike), and the `full_recheck`
//!   escape hatch agrees too.
//! * After the script, `reset()` replays the undo log back to a graph
//!   structurally identical to the shrink wrap schema.
//! * A `QueryCache` interleaved with arbitrary mutations always answers
//!   exactly like the uncached `query` traversals.

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use shrink_wrap_schemas::core::{check_consistency, ConceptKind, ModOp, Workspace};
use shrink_wrap_schemas::corpus::university;
use shrink_wrap_schemas::model::{diff_graphs, query, QueryCache};
use shrink_wrap_schemas::odl::DomainType;

/// Names likely to exist in the university schema plus some that don't.
fn type_name() -> impl Strategy<Value = String> {
    prop_oneof![
        4 => prop::sample::select(vec![
            "Person", "Student", "Undergraduate", "Graduate", "Masters", "PhD",
            "NonThesisMasters", "Employee", "Faculty", "Department", "Course",
            "CourseOffering", "Syllabus", "Book", "TimeSlot",
        ])
        .prop_map(str::to_string),
        1 => "[A-Z][a-z]{2,6}".prop_map(|s| format!("Zz{s}")),
    ]
}

fn member_name() -> impl Strategy<Value = String> {
    prop_oneof![
        3 => prop::sample::select(vec![
            "name", "address", "student_id", "badge", "salary", "rank", "room",
            "duration", "term", "number", "title", "credits", "enrolled_in",
            "enrolls", "works_in_a", "has", "teaches", "taught_by", "course",
            "offerings", "described_by", "books", "offered_during", "gpa",
        ])
        .prop_map(str::to_string),
        1 => "[a-z]{2,6}".prop_map(|s| format!("zz_{s}")),
    ]
}

fn domain() -> impl Strategy<Value = DomainType> {
    prop_oneof![
        Just(DomainType::Long),
        Just(DomainType::String),
        type_name().prop_map(DomainType::Named),
        type_name().prop_map(|n| DomainType::set_of(DomainType::Named(n))),
    ]
}

/// Ops chosen to dirty every region the incremental engine tracks: type
/// existence, ISA edges, members, extents, keys, moves, and deletions with
/// cascades.
fn random_op() -> impl Strategy<Value = ModOp> {
    let t = type_name;
    let m = member_name;
    prop_oneof![
        t().prop_map(|ty| ModOp::AddTypeDefinition { ty }),
        t().prop_map(|ty| ModOp::DeleteTypeDefinition { ty }),
        (t(), t()).prop_map(|(ty, supertype)| ModOp::AddSupertype { ty, supertype }),
        (t(), t()).prop_map(|(ty, supertype)| ModOp::DeleteSupertype { ty, supertype }),
        (t(), m()).prop_map(|(ty, extent)| ModOp::AddExtentName { ty, extent }),
        (t(), m()).prop_map(|(ty, extent)| ModOp::DeleteExtentName { ty, extent }),
        (t(), domain(), m()).prop_map(|(ty, domain, name)| ModOp::AddAttribute {
            ty,
            domain,
            size: None,
            name
        }),
        (t(), m()).prop_map(|(ty, name)| ModOp::DeleteAttribute { ty, name }),
        (t(), m(), t()).prop_map(|(ty, name, new_ty)| ModOp::ModifyAttribute { ty, name, new_ty }),
        (t(), m()).prop_map(|(ty, path)| ModOp::DeleteRelationship { ty, path }),
        (t(), m(), t(), t()).prop_map(|(ty, path, old_target, new_target)| {
            ModOp::ModifyRelationshipTargetType {
                ty,
                path,
                old_target,
                new_target,
            }
        }),
        (t(), m()).prop_map(|(ty, name)| ModOp::DeleteOperation { ty, name }),
        (t(), m()).prop_map(|(ty, path)| ModOp::DeletePartOfRelationship { ty, path }),
        (t(), m()).prop_map(|(ty, path)| ModOp::DeleteInstanceOfRelationship { ty, path }),
    ]
}

fn contexts() -> impl Strategy<Value = ConceptKind> {
    prop::sample::select(ConceptKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_consistency_equals_full(
        script in prop::collection::vec((contexts(), random_op()), 1..20)
    ) {
        let mut ws = Workspace::new(university::graph());
        for (context, op) in script {
            let _ = ws.apply(context, op);
            let incremental = ws.consistency();
            let full = check_consistency(ws.working(), ws.shrink_wrap());
            prop_assert_eq!(incremental, full);
        }
        // The escape hatch recomputes from scratch and must agree.
        prop_assert_eq!(
            ws.full_recheck(),
            check_consistency(ws.working(), ws.shrink_wrap())
        );
        // Undo-log replay lands exactly on the shrink wrap schema.
        ws.reset();
        let diff = diff_graphs(ws.shrink_wrap(), ws.working());
        prop_assert!(diff.is_empty(), "{diff:?}");
        prop_assert_eq!(
            ws.consistency(),
            check_consistency(ws.working(), ws.shrink_wrap())
        );
    }

    #[test]
    fn cached_queries_equal_uncached_under_mutation(
        script in prop::collection::vec((contexts(), random_op()), 1..15)
    ) {
        let mut ws = Workspace::new(university::graph());
        let qc = QueryCache::new();
        for (context, op) in script {
            let _ = ws.apply(context, op);
            let g = ws.working();
            for (t, _) in g.types() {
                prop_assert_eq!(&*qc.ancestors(g, t), &query::ancestors(g, t));
                prop_assert_eq!(&*qc.descendants(g, t), &query::descendants(g, t));
                prop_assert_eq!(&*qc.visible_members(g, t), &query::visible_members(g, t));
                // Second lookup exercises the hit path; same answer.
                prop_assert_eq!(&*qc.ancestors(g, t), &query::ancestors(g, t));
            }
            prop_assert_eq!(
                &*qc.generalization_components(g),
                &query::generalization_components(g)
            );
        }
        prop_assert!(qc.hits() > 0);
    }
}
