//! Pipeline fuzzing: random modification operations, biased toward the
//! university schema's real names, thrown at the full workspace pipeline.
//!
//! Invariants under fuzz:
//! * `apply` never panics: every operation either applies or returns an
//!   error,
//! * a rejected operation leaves the workspace untouched and unlogged,
//! * after any accepted sequence, the working schema remains well-formed
//!   (no structural errors from the model layer),
//! * the session log replays to the same custom schema.

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use shrink_wrap_schemas::core::{ConceptKind, ModOp, Workspace};
use shrink_wrap_schemas::corpus::university;
use shrink_wrap_schemas::model::{check_well_formed, graph_to_schema};
use shrink_wrap_schemas::odl::{Cardinality, CollectionKind, DomainType};

/// Names likely to exist in the university schema plus some that don't.
fn type_name() -> impl Strategy<Value = String> {
    prop_oneof![
        4 => prop::sample::select(vec![
            "Person", "Student", "Undergraduate", "Graduate", "Masters", "PhD",
            "NonThesisMasters", "Employee", "Faculty", "Department", "Course",
            "CourseOffering", "Syllabus", "Book", "TimeSlot",
        ])
        .prop_map(str::to_string),
        1 => "[A-Z][a-z]{2,6}".prop_map(|s| format!("Zz{s}")),
    ]
}

fn member_name() -> impl Strategy<Value = String> {
    prop_oneof![
        3 => prop::sample::select(vec![
            "name", "address", "student_id", "badge", "salary", "rank", "room",
            "duration", "term", "number", "title", "credits", "enrolled_in",
            "enrolls", "works_in_a", "has", "teaches", "taught_by", "course",
            "offerings", "described_by", "books", "offered_during", "gpa",
        ])
        .prop_map(str::to_string),
        1 => "[a-z]{2,6}".prop_map(|s| format!("zz_{s}")),
    ]
}

fn domain() -> impl Strategy<Value = DomainType> {
    prop_oneof![
        Just(DomainType::Long),
        Just(DomainType::String),
        Just(DomainType::Double),
        type_name().prop_map(DomainType::Named),
        type_name().prop_map(|n| DomainType::set_of(DomainType::Named(n))),
    ]
}

fn cardinality() -> impl Strategy<Value = Cardinality> {
    prop_oneof![
        Just(Cardinality::One),
        Just(Cardinality::Many(CollectionKind::Set)),
        Just(Cardinality::Many(CollectionKind::List)),
    ]
}

fn collection() -> impl Strategy<Value = CollectionKind> {
    prop_oneof![
        Just(CollectionKind::Set),
        Just(CollectionKind::List),
        Just(CollectionKind::Bag)
    ]
}

fn random_op() -> impl Strategy<Value = ModOp> {
    let t = type_name;
    let m = member_name;
    prop_oneof![
        t().prop_map(|ty| ModOp::AddTypeDefinition { ty }),
        t().prop_map(|ty| ModOp::DeleteTypeDefinition { ty }),
        (t(), t()).prop_map(|(ty, supertype)| ModOp::AddSupertype { ty, supertype }),
        (t(), t()).prop_map(|(ty, supertype)| ModOp::DeleteSupertype { ty, supertype }),
        (t(), m()).prop_map(|(ty, extent)| ModOp::AddExtentName { ty, extent }),
        (t(), m()).prop_map(|(ty, extent)| ModOp::DeleteExtentName { ty, extent }),
        (t(), domain(), m()).prop_map(|(ty, domain, name)| ModOp::AddAttribute {
            ty,
            domain,
            size: None,
            name
        }),
        (t(), m()).prop_map(|(ty, name)| ModOp::DeleteAttribute { ty, name }),
        (t(), m(), t()).prop_map(|(ty, name, new_ty)| ModOp::ModifyAttribute { ty, name, new_ty }),
        (t(), t(), cardinality(), m(), m()).prop_map(
            |(ty, target, cardinality, path, inverse_path)| ModOp::AddRelationship {
                ty,
                target,
                cardinality,
                path,
                inverse_path,
                order_by: vec![]
            }
        ),
        (t(), m()).prop_map(|(ty, path)| ModOp::DeleteRelationship { ty, path }),
        (t(), m(), t(), t()).prop_map(|(ty, path, old_target, new_target)| {
            ModOp::ModifyRelationshipTargetType {
                ty,
                path,
                old_target,
                new_target,
            }
        }),
        (t(), m(), cardinality(), cardinality()).prop_map(|(ty, path, old, new)| {
            ModOp::ModifyRelationshipCardinality { ty, path, old, new }
        }),
        (t(), domain(), m()).prop_map(|(ty, return_type, name)| ModOp::AddOperation {
            ty,
            return_type,
            name,
            args: vec![],
            raises: vec![]
        }),
        (t(), m()).prop_map(|(ty, name)| ModOp::DeleteOperation { ty, name }),
        (t(), prop::option::of(collection()), t(), m(), m()).prop_map(
            |(ty, collection, target, path, inverse_path)| ModOp::AddPartOfRelationship {
                ty,
                collection,
                target,
                path,
                inverse_path,
                order_by: vec![]
            }
        ),
        (t(), m()).prop_map(|(ty, path)| ModOp::DeletePartOfRelationship { ty, path }),
        (t(), prop::option::of(collection()), t(), m(), m()).prop_map(
            |(ty, collection, target, path, inverse_path)| ModOp::AddInstanceOfRelationship {
                ty,
                collection,
                target,
                path,
                inverse_path,
                order_by: vec![]
            }
        ),
        (t(), m()).prop_map(|(ty, path)| ModOp::DeleteInstanceOfRelationship { ty, path }),
    ]
}

fn contexts() -> impl Strategy<Value = ConceptKind> {
    prop::sample::select(ConceptKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_sequences_preserve_all_invariants(
        script in prop::collection::vec((contexts(), random_op()), 1..25)
    ) {
        let mut ws = Workspace::new(university::graph());
        for (context, op) in script {
            let before = graph_to_schema(ws.working());
            let log_len = ws.log().len();
            match ws.apply(context, op) {
                Ok(_) => {
                    prop_assert_eq!(ws.log().len(), log_len + 1);
                }
                Err(_) => {
                    // Rejected: no mutation, no log entry.
                    prop_assert_eq!(graph_to_schema(ws.working()), before);
                    prop_assert_eq!(ws.log().len(), log_len);
                }
            }
        }
        // Whatever was accepted left a structurally sound schema.
        let issues = check_well_formed(ws.working());
        prop_assert!(issues.is_empty(), "{issues:?}");
        // And the log replays to the same result.
        let mut replayed = Workspace::new(ws.shrink_wrap().clone());
        replayed
            .replay(ws.log().iter().map(|r| (r.context, r.op.clone())))
            .map_err(|(i, e)| TestCaseError::fail(format!("replay op {i}: {e}")))?;
        prop_assert_eq!(
            graph_to_schema(replayed.working()),
            graph_to_schema(ws.working())
        );
    }
}
