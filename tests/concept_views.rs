//! Concept schemas as *views*: they are regenerated from (or pruned
//! against) the one integrated working schema, so customizations made in
//! any context are immediately visible from every other concept schema —
//! the mechanism behind the paper's "we maintain the integrated,
//! customized user schema".

use shrink_wrap_schemas::core::{decompose, ConceptKind};
use shrink_wrap_schemas::corpus::business;
use shrink_wrap_schemas::prelude::*;

#[test]
fn business_schema_decomposes_as_expected() {
    let g = business::graph();
    let d = decompose(&g);
    assert_eq!(d.wagon_wheels.len(), 19);
    assert_eq!(d.generalizations.len(), 1); // Party hierarchy
    assert_eq!(d.aggregations.len(), 3); // Catalog, Order, Invoice
    assert_eq!(d.instance_ofs.len(), 1); // Product -> Sku
}

#[test]
fn edits_in_one_concept_schema_show_in_others() {
    let mut session = Session::new(Repository::ingest(business::graph()));

    // Before: the Customer wagon wheel has no loyalty spoke.
    let customer_elements = {
        let g = session.repository().workspace().working();
        let d = decompose(g);
        d.wagon_wheel_of(g.type_id("Customer").unwrap())
            .unwrap()
            .element_count()
    };

    // Edit from a *different* context: add a supertype edge in the
    // generalization hierarchy...
    session.set_context(ConceptKind::Generalization);
    session
        .issue_str("add_type_definition(LoyaltyMember)")
        .unwrap();
    session
        .issue_str("add_supertype(LoyaltyMember, Customer)")
        .unwrap();

    // ...and the Customer wagon wheel (a different concept schema) grew a
    // generalization spoke.
    let g = session.repository().workspace().working();
    let d = decompose(g);
    let ww = d.wagon_wheel_of(g.type_id("Customer").unwrap()).unwrap();
    assert_eq!(ww.element_count(), customer_elements + 2); // new type + edge
    assert!(ww.types.contains(&g.type_id("LoyaltyMember").unwrap()));
}

#[test]
fn stale_views_prune_cleanly_after_cross_context_deletion() {
    let mut session = Session::new(Repository::ingest(business::graph()));
    // Take a snapshot view of the Order wagon wheel.
    let mut order_ww = {
        let g = session.repository().workspace().working();
        let d = decompose(g);
        d.wagon_wheel_of(g.type_id("Order").unwrap())
            .unwrap()
            .clone()
    };
    let before = order_ww.element_count();

    // Delete Shipment from its own wagon wheel; Order's view holds stale
    // IDs for the shipments relationship and the Shipment type.
    session
        .issue_str("delete_type_definition(Shipment)")
        .unwrap();
    let g = session.repository().workspace().working();
    let dropped = order_ww.prune_dead(g);
    assert!(
        dropped >= 2,
        "expected type + relationship to drop, got {dropped}"
    );
    assert!(order_ww.element_count() < before);
    // The pruned view still describes cleanly.
    let text = order_ww.describe(g);
    assert!(text.contains("type Order (focal)"));
    assert!(!text.contains("Shipment"));
}

#[test]
fn aggregation_views_follow_rewiring() {
    let mut session = Session::new(Repository::ingest(business::graph()));
    session.set_context(ConceptKind::Aggregation);
    // Invoice lines move under a new Statement root... first create it.
    session.issue_str("add_type_definition(Statement)").unwrap();
    session
        .issue_str(
            "add_part_of_relationship(Statement, set<Invoice>, invoices, Invoice::statement)",
        )
        .unwrap();
    let g = session.repository().workspace().working();
    let d = decompose(g);
    // Invoice is no longer a part-of root: Statement took over.
    let roots: Vec<&str> = d
        .aggregations
        .iter()
        .map(|cs| g.type_name(cs.focal))
        .collect();
    assert!(roots.contains(&"Statement"));
    assert!(!roots.contains(&"Invoice"));
    // And the Statement explosion reaches down to InvoiceLine.
    let statement = d
        .aggregations
        .iter()
        .find(|cs| g.type_name(cs.focal) == "Statement")
        .unwrap();
    assert!(statement.types.contains(&g.type_id("InvoiceLine").unwrap()));
}
