//! Differential suite for the parallel execution layer: thread count must
//! never change an observable result.
//!
//! For every corpus schema (plus a synthetic one large enough to actually
//! fan out) and every `SWS_THREADS ∈ {1, 2, 4, 8}`:
//!
//! * the full consistency report is byte-identical to the serial run,
//! * the decomposition is identical to the serial run,
//! * the incrementally-resynced report after every step of a deterministic
//!   edit stream is identical to the serial incremental run.
//!
//! Thread counts are forced through `parallel::with_workers` (a
//! thread-local override), not the `SWS_THREADS` environment variable, so
//! the suite is immune to cross-test env races while exercising exactly
//! the code path the env var selects.
//!
//! A proptest-gated companion (`--features proptest`) drives randomized
//! edit streams through a parallel incremental checker, a serial
//! incremental checker, and a serial full checker, asserting three-way
//! agreement at every step.

use shrink_wrap_schemas::core::{check_consistency, decompose, parallel, Workspace};
use shrink_wrap_schemas::corpus::{all_named, synthetic::SyntheticSpec};
use shrink_wrap_schemas::model::SchemaGraph;
use sws_bench::edit_scripts::edit_stream;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Corpus schemas plus a synthetic graph that clears the parallel
/// threshold by a wide margin.
fn suite() -> Vec<(String, SchemaGraph)> {
    let mut all: Vec<(String, SchemaGraph)> = all_named()
        .into_iter()
        .map(|(n, g)| (n.to_string(), g))
        .collect();
    all.push((
        "synthetic-120".to_string(),
        SyntheticSpec::sized(120, 42).generate(),
    ));
    all
}

#[test]
fn full_consistency_report_is_identical_at_every_thread_count() {
    for (name, g) in suite() {
        // Customize first so shrink-wrap-relative findings exist: deletions
        // in the stream produce lost keys/dangling refs relative to `g`.
        let mut ws = Workspace::new(g.clone());
        for (context, op) in edit_stream(&g, 16, 7) {
            ws.apply(context, op).unwrap();
        }
        let serial =
            parallel::with_workers(1, || check_consistency(ws.working(), ws.shrink_wrap()));
        for t in THREADS {
            let report =
                parallel::with_workers(t, || check_consistency(ws.working(), ws.shrink_wrap()));
            assert_eq!(report, serial, "{name}: report diverged at {t} threads");
        }
    }
}

#[test]
fn decomposition_is_identical_at_every_thread_count() {
    for (name, g) in suite() {
        let serial = parallel::with_workers(1, || decompose(&g));
        for t in THREADS {
            let d = parallel::with_workers(t, || decompose(&g));
            assert_eq!(d, serial, "{name}: decomposition diverged at {t} threads");
        }
    }
}

#[test]
fn incremental_resync_is_identical_at_every_thread_count() {
    for (name, g) in suite() {
        // Serial reference: one workspace, one report per applied op.
        let serial: Vec<_> = parallel::with_workers(1, || {
            let mut ws = Workspace::new(g.clone());
            edit_stream(&g, 12, 11)
                .into_iter()
                .map(|(context, op)| {
                    ws.apply(context, op).unwrap();
                    ws.consistency()
                })
                .collect()
        });
        for t in THREADS {
            let reports: Vec<_> = parallel::with_workers(t, || {
                let mut ws = Workspace::new(g.clone());
                edit_stream(&g, 12, 11)
                    .into_iter()
                    .map(|(context, op)| {
                        ws.apply(context, op).unwrap();
                        ws.consistency()
                    })
                    .collect()
            });
            assert_eq!(
                reports, serial,
                "{name}: incremental resync diverged at {t} threads"
            );
        }
    }
}

/// At 50k types every parallel run shares one frozen CSR closure index
/// across all workers (the serial run traverses the graph's own adjacency
/// with the persistent scratch). The rendered report must be byte-identical
/// at every thread count — this pins the index backend against the graph
/// backend at a scale where the two take genuinely different code paths.
#[test]
fn shared_index_full_check_is_byte_identical_at_fifty_thousand_types() {
    let g = SyntheticSpec::sized(50_000, 9).generate();
    let serial = parallel::with_workers(1, || check_consistency(&g, &g));
    let serial_text = serial.render();
    for t in THREADS {
        let report = parallel::with_workers(t, || check_consistency(&g, &g));
        assert_eq!(
            report.render(),
            serial_text,
            "50k synthetic: rendered report diverged at {t} threads"
        );
        assert_eq!(
            report, serial,
            "50k synthetic: report diverged at {t} threads"
        );
    }
}

#[cfg(feature = "proptest")]
mod random {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Three checkers — parallel incremental, serial incremental,
        /// serial full — agree after every step of a random edit stream.
        #[test]
        fn parallel_checker_agrees_with_serial_checkers(
            seed in 0u64..10_000,
            count in 1usize..24,
            threads in 2usize..9,
        ) {
            let g = SyntheticSpec::sized(60, seed ^ 0x5157).generate();
            let mut ws_par = Workspace::new(g.clone());
            let mut ws_ser = Workspace::new(g.clone());
            for (context, op) in edit_stream(&g, count, seed) {
                ws_par.apply(context, op.clone()).unwrap();
                ws_ser.apply(context, op).unwrap();
                let par = parallel::with_workers(threads, || ws_par.consistency());
                let ser = parallel::with_workers(1, || ws_ser.consistency());
                let full = parallel::with_workers(1, || {
                    check_consistency(ws_ser.working(), ws_ser.shrink_wrap())
                });
                prop_assert_eq!(&par, &ser, "parallel incremental != serial incremental");
                prop_assert_eq!(&ser, &full, "serial incremental != serial full");
            }
        }
    }
}
