//! The concurrency proof for `swsd serve`: N clients hammer one live TCP
//! server with seeded edit streams, submitting against their own (stale)
//! view of the op log. At every server thread count in {1, 2, 4, 8}:
//!
//! * the server's final exported schema is **byte-identical** to a serial
//!   replay of the accepted-op total order (the `log` since 0) onto a
//!   fresh repository,
//! * every client replica — maintained purely from accept confirmations
//!   and conflict deltas, never from the server's state — converges to
//!   that same byte-identical schema,
//! * every stale-`base_rev` submit receives a conflict report whose delta
//!   is exactly the ops in `(base_rev, rev]` and replays cleanly onto the
//!   client's replica (the rebase contract),
//! * contention is forced, not hoped for: when the server has enough
//!   threads to hold every client connection at once, a barrier releases
//!   all first submits at `base_rev` 0 simultaneously (exactly one wins);
//!   at lower thread counts — where acceptors serialize whole connections
//!   and a cross-client barrier would deadlock — a *straggler* client
//!   opens after the fray with an honest local rev of 0 and must take the
//!   full-delta rebase path.
//!
//! The clients speak the real wire protocol over real sockets — nothing
//! here shortcuts through `DesignService` directly.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Barrier;
use std::time::Duration;

use shrink_wrap_schemas::repository::Repository;
use sws_bench::edit_scripts::edit_stream;
use sws_core::{parse_statement, print_op, ConceptKind, ModOp};
use sws_designer::crash::checksum_valid;
use sws_designer::protocol::Json;
use sws_designer::{serve, DesignService, Session};

const CLIENTS: usize = 4;
const OPS_PER_CLIENT: usize = 12;

/// Unwind guard: if any assertion fails mid-scenario, ask the server to
/// stop and poke every acceptor awake so the scope's implicit join of the
/// server thread terminates instead of hanging the whole test binary.
struct StopServer<'a> {
    service: &'a DesignService,
    addr: SocketAddr,
    threads: usize,
}

impl Drop for StopServer<'_> {
    fn drop(&mut self) {
        self.service.request_shutdown();
        for _ in 0..self.threads {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

fn university_odl() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("crates/corpus/scripts/university.odl");
    std::fs::read_to_string(path).expect("university.odl")
}

/// One protocol client over a real socket, maintaining a local replica of
/// the repository from nothing but protocol messages.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    session: String,
    /// Length of the accepted op log this client has incorporated.
    rev: u64,
    replica: Repository,
    accepted_ops: u64,
    conflicts: u64,
    rejected: u64,
}

enum Outcome {
    Accepted,
    Rejected,
}

impl Client {
    fn connect(addr: SocketAddr, session: &str, src: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(600)))
            .expect("read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
            session: session.to_string(),
            rev: 0,
            replica: Repository::ingest_odl(src).expect("replica ingests"),
            accepted_ops: 0,
            conflicts: 0,
            rejected: 0,
        }
    }

    fn rpc(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("recv");
        let response = response.trim_end();
        assert!(
            checksum_valid(response),
            "response failed checksum: {response}"
        );
        Json::parse(response).expect("response parses")
    }

    fn tag(resp: &Json) -> &str {
        resp.get("type").and_then(Json::as_str).expect("type field")
    }

    fn num(resp: &Json, key: &str) -> u64 {
        resp.get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing numeric `{key}` in {resp:?}"))
    }

    fn open(&mut self) {
        let resp = self.rpc(&format!(
            "{{\"type\":\"open\",\"session\":\"{}\"}}",
            self.session
        ));
        assert_eq!(Self::tag(&resp), "opened");
    }

    /// Apply wire-format log records (from a conflict delta or a `log`
    /// response) to the replica. Every record MUST replay cleanly: the
    /// server accepted it, so a client that cannot rebase over it has
    /// caught a protocol bug.
    fn apply_records(&mut self, records: &Json) {
        for record in records.as_array().expect("records array") {
            let tag = record
                .get("context")
                .and_then(Json::as_str)
                .expect("context");
            let context = ConceptKind::from_tag(tag).expect("known context");
            let stmt = record.get("stmt").and_then(Json::as_str).expect("stmt");
            let op = parse_statement(stmt).expect("accepted op parses");
            self.replica
                .workspace_mut()
                .apply(context, op)
                .unwrap_or_else(|e| {
                    panic!("accepted op `{stmt}` does not replay on a synced replica: {e}")
                });
            self.rev += 1;
        }
    }

    /// Submit one op at the client's current (possibly stale) rev and
    /// drive the conflict/rebase protocol until the op is either accepted
    /// or genuinely rejected at the head.
    fn submit_until_resolved(&mut self, context: ConceptKind, op: &ModOp) -> Outcome {
        loop {
            let stmt = print_op(op);
            let resp = self.rpc(&format!(
                "{{\"type\":\"submit\",\"session\":\"{}\",\"base_rev\":{},\
                 \"ops\":[{{\"context\":\"{}\",\"stmt\":\"{stmt}\"}}]}}",
                self.session,
                self.rev,
                context.tag(),
            ));
            match Self::tag(&resp) {
                "accepted" => {
                    assert_eq!(Self::num(&resp, "base_rev"), self.rev);
                    assert_eq!(Self::num(&resp, "rev"), self.rev + 1);
                    self.replica
                        .workspace_mut()
                        .apply(context, op.clone())
                        .expect("op the server accepted applies to the synced replica");
                    self.rev += 1;
                    self.accepted_ops += 1;
                    return Outcome::Accepted;
                }
                "conflict" => {
                    self.conflicts += 1;
                    let base_rev = Self::num(&resp, "base_rev");
                    let rev = Self::num(&resp, "rev");
                    assert_eq!(base_rev, self.rev, "conflict echoes the stale base_rev");
                    assert!(rev > base_rev, "conflict implies the head moved");
                    let delta = resp.get("delta").expect("conflict carries a delta");
                    assert_eq!(
                        delta.as_array().expect("delta array").len() as u64,
                        rev - base_rev,
                        "delta must be exactly the ops in (base_rev, rev]"
                    );
                    // The rebase contract: the delta brings the replica to
                    // the head the conflict was reported against.
                    self.apply_records(delta);
                    assert_eq!(self.rev, rev);
                    // Retry at the new base; the head may move again.
                }
                "rejected" => {
                    // Head-rejected: the op lost a semantic race (e.g. its
                    // target attribute was deleted by a sibling). Nothing
                    // was applied server-side; nothing is applied locally.
                    self.rejected += 1;
                    return Outcome::Rejected;
                }
                other => panic!("unexpected response to submit: {other}: {resp:?}"),
            }
        }
    }

    /// Fetch and apply everything the replica is missing.
    fn sync_to_head(&mut self) {
        let resp = self.rpc(&format!(
            "{{\"type\":\"log\",\"session\":\"{}\",\"since\":{}}}",
            self.session, self.rev
        ));
        assert_eq!(Self::tag(&resp), "log");
        let ops = resp.get("ops").expect("ops");
        self.apply_records(ops);
        assert_eq!(self.rev, Self::num(&resp, "rev"));
    }

    fn export(&mut self) -> (u64, String) {
        let resp = self.rpc(&format!(
            "{{\"type\":\"export\",\"session\":\"{}\"}}",
            self.session
        ));
        assert_eq!(Self::tag(&resp), "exported");
        let odl = resp.get("odl").and_then(Json::as_str).expect("odl");
        (Self::num(&resp, "rev"), odl.to_string())
    }

    /// Consume the client into its report, CLOSING the connection. A
    /// partially-moved `Client` would keep its socket open to the end of
    /// the enclosing scope — and with few server threads an acceptor
    /// blocked on that idle connection can never serve the next client.
    fn into_report(self) -> ClientReport {
        ClientReport {
            replica: self.replica,
            rev: self.rev,
            accepted_ops: self.accepted_ops,
            conflicts: self.conflicts,
            rejected: self.rejected,
        }
    }
}

struct ClientReport {
    replica: Repository,
    rev: u64,
    accepted_ops: u64,
    conflicts: u64,
    rejected: u64,
}

/// Drive one client: a barrier-forced contention round, then its seeded
/// edit stream submitted against its own view of the log.
fn run_client(
    addr: SocketAddr,
    idx: usize,
    src: &str,
    stream_ops: Vec<(ConceptKind, ModOp)>,
    barrier: &Barrier,
) -> ClientReport {
    let mut client = Client::connect(addr, &format!("client{idx}"), src);
    client.open();

    // Contention round: every client submits at base_rev 0 simultaneously.
    // Exactly one wins; the others MUST take the conflict/rebase path.
    barrier.wait();
    let forced = ModOp::AddTypeDefinition {
        ty: format!("Forced{idx}"),
    };
    client.submit_until_resolved(ConceptKind::WagonWheel, &forced);

    for (context, op) in stream_ops {
        client.submit_until_resolved(context, &op);
    }
    eprintln!(
        "client{idx} done: rev={} accepted={} conflicts={} rejected={}",
        client.rev, client.accepted_ops, client.conflicts, client.rejected
    );
    client.into_report()
}

fn run_at(threads: usize) {
    let src = university_odl();
    let session = Session::from_odl(&src).expect("server schema");
    let base = session.repository().workspace().working().clone();
    let service = DesignService::new(session);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    // Each acceptor thread owns one connection at a time, so a barrier
    // across all clients only converges when every connection can be held
    // concurrently; below that the barrier degenerates to a no-op and the
    // straggler provides the guaranteed conflict instead.
    let barrier = Barrier::new(if threads >= CLIENTS { CLIENTS } else { 1 });

    let (reports, total_rev, exported, log_records) = std::thread::scope(|scope| {
        let server = scope.spawn(|| serve::serve(&service, listener, threads));
        // Dropped on every exit from this closure — including an assertion
        // unwind in a client thread's join — so the server always stops.
        let _stop = StopServer {
            service: &service,
            addr,
            threads,
        };

        let handles: Vec<_> = (0..CLIENTS)
            .map(|idx| {
                let src = &src;
                let base = &base;
                let barrier = &barrier;
                scope.spawn(move || {
                    let ops = edit_stream(base, OPS_PER_CLIENT, 100 + idx as u64);
                    run_client(addr, idx, src, ops, barrier)
                })
            })
            .collect();
        let mut reports: Vec<ClientReport> = handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect();

        // The straggler: its honest view is rev 0 while the head is far
        // ahead, so its first submit MUST conflict, and the full delta
        // (the entire accepted order) must rebase cleanly onto its
        // replica before the retry lands.
        let mut straggler = Client::connect(addr, "straggler", &src);
        straggler.open();
        let late = ModOp::AddTypeDefinition {
            ty: "Straggler".to_string(),
        };
        assert!(matches!(
            straggler.submit_until_resolved(ConceptKind::WagonWheel, &late),
            Outcome::Accepted
        ));
        assert!(
            straggler.conflicts >= 1,
            "a rev-0 submit against a populated log must conflict"
        );
        // A wire-level `log` fetch from the straggler's rev must report the
        // same head it just rebased to (the delta left nothing behind).
        straggler.sync_to_head();
        reports.push(straggler.into_report());

        // Final verification over the same wire protocol, then shutdown.
        let mut verifier = Client::connect(addr, "verifier", &src);
        verifier.open();
        let log = verifier.rpc("{\"type\":\"log\",\"session\":\"verifier\",\"since\":0}");
        assert_eq!(Client::tag(&log), "log");
        let (total_rev, exported) = verifier.export();
        let bye = verifier.rpc("{\"type\":\"shutdown\"}");
        assert_eq!(Client::tag(&bye), "bye");
        server.join().expect("server thread").expect("serve io");
        (reports, total_rev, exported, log)
    });

    // The accepted total order IS the log: replaying it serially onto a
    // fresh repository must reproduce the server's exported schema to the
    // byte.
    let records = log_records
        .get("ops")
        .expect("ops")
        .as_array()
        .expect("array");
    assert_eq!(
        records.len() as u64,
        total_rev,
        "log since 0 covers the whole accepted order"
    );
    let mut serial = Repository::ingest_odl(&src).expect("serial replica");
    for record in records {
        let context = ConceptKind::from_tag(
            record
                .get("context")
                .and_then(Json::as_str)
                .expect("context"),
        )
        .expect("known context");
        let stmt = record.get("stmt").and_then(Json::as_str).expect("stmt");
        let op = parse_statement(stmt).expect("logged op parses");
        serial
            .workspace_mut()
            .apply(context, op)
            .unwrap_or_else(|e| panic!("serial replay of accepted `{stmt}` failed: {e}"));
    }
    assert_eq!(
        serial.custom_schema_odl(),
        exported,
        "{threads} threads: serial replay of the accepted order diverged from the live state"
    );

    // Every client replica converges to the same bytes once topped up with
    // the records it had not yet seen.
    let mut total_accepted = 0;
    let mut total_conflicts = 0;
    let mut total_rejected = 0;
    for (idx, mut report) in reports.into_iter().enumerate() {
        for record in &records[report.rev as usize..] {
            let context = ConceptKind::from_tag(
                record
                    .get("context")
                    .and_then(Json::as_str)
                    .expect("context"),
            )
            .expect("known context");
            let stmt = record.get("stmt").and_then(Json::as_str).expect("stmt");
            let op = parse_statement(stmt).expect("logged op parses");
            report
                .replica
                .workspace_mut()
                .apply(context, op)
                .unwrap_or_else(|e| panic!("client{idx} top-up of `{stmt}` failed: {e}"));
        }
        assert_eq!(
            report.replica.custom_schema_odl(),
            exported,
            "{threads} threads: client{idx}'s replica diverged from the server"
        );
        total_accepted += report.accepted_ops;
        total_conflicts += report.conflicts;
        total_rejected += report.rejected;
    }
    assert_eq!(
        total_accepted, total_rev,
        "every accepted op appears in the log exactly once"
    );
    // Guaranteed contention: the straggler at every thread count, plus the
    // barrier round's CLIENTS - 1 losers when connections run concurrently.
    let floor = if threads >= CLIENTS {
        CLIENTS as u64
    } else {
        1
    };
    assert!(
        total_conflicts >= floor,
        "{threads} threads: expected >= {floor} conflicts, saw {total_conflicts}"
    );
    eprintln!(
        "serve differential @ {threads} threads: rev={total_rev} accepted={total_accepted} \
         conflicts={total_conflicts} rejected={total_rejected}"
    );
}

#[test]
fn concurrent_clients_converge_at_1_thread() {
    run_at(1);
}

#[test]
fn concurrent_clients_converge_at_2_threads() {
    run_at(2);
}

#[test]
fn concurrent_clients_converge_at_4_threads() {
    run_at(4);
}

#[test]
fn concurrent_clients_converge_at_8_threads() {
    run_at(8);
}
