//! End-to-end integration: the full Fig. 1 architecture driven through the
//! public API — ingest, decompose, customize with feedback, consistency,
//! mapping, persistence, REPL.

use shrink_wrap_schemas::corpus::university;
use shrink_wrap_schemas::prelude::*;

#[test]
fn whole_pipeline_over_the_university_schema() {
    // Ingest (repository + single-root normalization; the university
    // schema is already single-rooted).
    let repo = Repository::ingest_odl(university::SOURCE).expect("valid ODL");
    assert!(repo.created_roots().is_empty());
    let mut session = Session::new(repo);

    // Decompose: 15 wagon wheels + 1 generalization hierarchy + 1
    // instance-of hierarchy (Course -> CourseOffering); no part-of roots.
    let concepts = session.concept_list();
    let wagon_wheels = concepts
        .iter()
        .filter(|c| c.kind == ConceptKind::WagonWheel)
        .count();
    let gens = concepts
        .iter()
        .filter(|c| c.kind == ConceptKind::Generalization)
        .count();
    let aggs = concepts
        .iter()
        .filter(|c| c.kind == ConceptKind::Aggregation)
        .count();
    let insts = concepts
        .iter()
        .filter(|c| c.kind == ConceptKind::InstanceOf)
        .count();
    assert_eq!((wagon_wheels, gens, aggs, insts), (15, 1, 0, 1));

    // Customize across several concept schemas.
    session.issue_str("add_type_definition(Lab)").unwrap();
    session
        .issue_str("add_attribute(Lab, string(16), building)")
        .unwrap();
    session
        .issue_str("add_relationship(Lab, set<CourseOffering>, hosts, CourseOffering::held_in)")
        .unwrap();
    session.set_context(ConceptKind::Generalization);
    let fb = session
        .issue_str("modify_attribute(Graduate, thesis_topic, Masters)")
        .unwrap();
    assert!(!fb.warnings.is_empty(), "move down should warn");
    // PhD students lost thesis_topic — that is exactly what the warning
    // said; the schema remains well-formed.
    let report = session.consistency();
    assert_eq!(report.errors().count(), 0, "{}", report.render());

    // The mapping distinguishes moved from added.
    let summary = session.mapping().summary();
    assert_eq!(summary.moved, 1);
    assert_eq!(summary.added, 3); // Lab, its attribute, and the hosts relationship

    // Undo restores the previous state exactly.
    let before_undo = session.repository().custom_schema_odl();
    session.issue_str("add_type_definition(Scratch)").unwrap();
    session.undo().unwrap();
    assert_eq!(session.repository().custom_schema_odl(), before_undo);

    // Persist, reload, verify.
    let dir = std::env::temp_dir().join(format!("sws_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    session.save(&dir).unwrap();
    let reloaded = Session::load(&dir).unwrap();
    assert_eq!(reloaded.repository().custom_schema_odl(), before_undo);
    assert_eq!(reloaded.repository().workspace().log().len(), 4);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repl_drives_the_same_pipeline() {
    let mut session = Session::new(Repository::ingest_odl(university::SOURCE).unwrap());
    let script = [
        "concepts",
        "context generalization",
        "modify_relationship_target_type(Department, has, Employee, Person)",
        "map",
        "check",
    ];
    let mut outputs = Vec::new();
    for line in script {
        match execute(&mut session, line) {
            CommandOutcome::Continue(text) => outputs.push(text),
            CommandOutcome::Quit => unreachable!(),
        }
    }
    assert!(outputs[0].contains("wagon wheel: CourseOffering"));
    assert!(outputs[2].contains("applied: modify_relationship_target_type"));
    assert!(outputs[3].contains("moved to `Person`"));
}

#[test]
fn permission_denials_name_the_context() {
    let mut session = Session::new(Repository::ingest_odl(university::SOURCE).unwrap());
    session.set_context(ConceptKind::InstanceOf);
    let err = session
        .issue_str("add_attribute(Course, long, units)")
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("add_attribute"), "{msg}");
    assert!(msg.contains("instance-of hierarchy"), "{msg}");
}

#[test]
fn constraint_denials_explain_themselves() {
    let mut session = Session::new(Repository::ingest_odl(university::SOURCE).unwrap());
    let err = session
        .issue_str("add_attribute(Undergraduate, string, name)")
        .unwrap_err();
    // Shadowing Person::name is an inheritance conflict.
    assert!(err.to_string().contains("inherited"), "{err}");
    let err = session
        .issue_str("delete_attribute(Course, ghost)")
        .unwrap_err();
    assert!(
        err.to_string().contains("no attribute named `ghost`"),
        "{err}"
    );
}
