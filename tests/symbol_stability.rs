//! Symbol and ID stability across undo and replay.
//!
//! The global interner is append-only: a `Symbol` handle minted for any
//! name stays valid (and keeps the same id) for the life of the process,
//! even after every construct using that name has been deleted or
//! reverted away. These tests pin the two ways a session rewinds:
//!
//! * `Workspace::reset` — pops the whole [`UndoPatch`] journal; the
//!   reverted graph must render the original ODL byte-for-byte,
//! * replaying the saved op log after a reset — must land on the same
//!   rendering as before the reset, and must not mint a single new
//!   symbol (every name was already interned on the first pass).
//!
//! [`UndoPatch`]: shrink_wrap_schemas::model::UndoPatch

use shrink_wrap_schemas::core::{ConceptKind, ModOp, Workspace};
use shrink_wrap_schemas::corpus::university;
use shrink_wrap_schemas::model::{graph_to_schema, Symbol};
use shrink_wrap_schemas::odl::{print_schema, DomainType};

fn render(ws: &Workspace) -> String {
    print_schema(&graph_to_schema(ws.working()))
}

/// A deterministic edit script that touches every construct arena: new
/// type, new attribute, a supertype edge, and a deletion with cascade.
fn script() -> Vec<(ConceptKind, ModOp)> {
    vec![
        (
            ConceptKind::WagonWheel,
            ModOp::AddTypeDefinition {
                ty: "ZzStableType".into(),
            },
        ),
        (
            ConceptKind::WagonWheel,
            ModOp::AddAttribute {
                ty: "ZzStableType".into(),
                domain: DomainType::Long,
                size: None,
                name: "zz_stable_attr".into(),
            },
        ),
        (
            ConceptKind::Generalization,
            ModOp::AddSupertype {
                ty: "ZzStableType".into(),
                supertype: "Person".into(),
            },
        ),
        (
            ConceptKind::WagonWheel,
            ModOp::DeleteTypeDefinition { ty: "Book".into() },
        ),
    ]
}

#[test]
fn reset_reverts_odl_byte_for_byte_and_interner_never_shrinks() {
    let mut ws = Workspace::new(university::graph());
    let odl_before = render(&ws);
    let len_start = Symbol::interner_len();

    let mut len_prev = len_start;
    for (context, op) in script() {
        ws.apply(context, op).expect("scripted edit applies");
        let len_now = Symbol::interner_len();
        assert!(len_now >= len_prev, "interner shrank during apply");
        len_prev = len_now;
    }
    let odl_edited = render(&ws);
    assert_ne!(odl_edited, odl_before, "script must change the schema");

    // Handles minted for names that only exist in the edited schema.
    let novel_type = Symbol::intern("ZzStableType");
    let novel_attr = Symbol::intern("zz_stable_attr");
    let len_edited = Symbol::interner_len();

    ws.reset();

    // Byte-for-byte: the undo journal restores the exact original
    // rendering, not merely a structurally equivalent one.
    assert_eq!(render(&ws), odl_before);
    assert!(ws.log().is_empty());

    // The interner is untouched by the revert: nothing freed, every
    // handle still resolves to the same id and string.
    assert_eq!(Symbol::interner_len(), len_edited);
    assert_eq!(Symbol::try_lookup("ZzStableType"), Some(novel_type));
    assert_eq!(Symbol::try_lookup("zz_stable_attr"), Some(novel_attr));
    assert_eq!(novel_type.as_str(), "ZzStableType");
    assert_eq!(novel_attr.as_str(), "zz_stable_attr");
}

#[test]
fn replay_after_reset_reuses_every_symbol() {
    let mut ws = Workspace::new(university::graph());
    ws.apply_script(
        ConceptKind::WagonWheel,
        script().into_iter().map(|(_, op)| op).take(2),
    )
    .expect("script applies");
    let odl_edited = render(&ws);
    let log: Vec<_> = ws.log().iter().map(|r| (r.context, r.op.clone())).collect();

    // Pin the ids of every name visible in the edited working schema.
    let ids: Vec<(Symbol, &'static str)> = ws
        .working()
        .types()
        .map(|(_, node)| (node.name, node.name.as_str()))
        .collect();

    ws.reset();
    let len_after_reset = Symbol::interner_len();

    ws.replay(log).expect("log replays after reset");
    assert_eq!(render(&ws), odl_edited);

    // Replay re-interns only names seen on the first pass: the interner
    // must not have grown, and every pinned handle must resolve to the
    // same id.
    assert_eq!(Symbol::interner_len(), len_after_reset);
    for (sym, name) in ids {
        assert_eq!(Symbol::try_lookup(name), Some(sym));
    }
}

#[cfg(feature = "proptest")]
mod random {
    use super::*;
    use proptest::prelude::*;
    use shrink_wrap_schemas::model::check_well_formed;

    fn type_name() -> impl Strategy<Value = String> {
        prop_oneof![
            3 => prop::sample::select(vec![
                "Person", "Student", "Employee", "Faculty", "Department",
                "Course", "CourseOffering", "Book", "TimeSlot",
            ])
            .prop_map(str::to_string),
            1 => "[A-Z][a-z]{2,6}".prop_map(|s| format!("Zy{s}")),
        ]
    }

    fn member_name() -> impl Strategy<Value = String> {
        prop_oneof![
            2 => prop::sample::select(vec![
                "name", "address", "salary", "rank", "credits", "title",
            ])
            .prop_map(str::to_string),
            1 => "[a-z]{2,6}".prop_map(|s| format!("zy_{s}")),
        ]
    }

    fn random_op() -> impl Strategy<Value = ModOp> {
        prop_oneof![
            type_name().prop_map(|ty| ModOp::AddTypeDefinition { ty }),
            type_name().prop_map(|ty| ModOp::DeleteTypeDefinition { ty }),
            (type_name(), type_name())
                .prop_map(|(ty, supertype)| ModOp::AddSupertype { ty, supertype }),
            (type_name(), member_name()).prop_map(|(ty, name)| ModOp::AddAttribute {
                ty,
                domain: DomainType::Long,
                size: None,
                name
            }),
            (type_name(), member_name()).prop_map(|(ty, name)| ModOp::DeleteAttribute { ty, name }),
        ]
    }

    fn contexts() -> impl Strategy<Value = ConceptKind> {
        prop::sample::select(ConceptKind::ALL.to_vec())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random accepted/rejected edit mixes, then a reset: the ODL
        /// rendering round-trips byte-for-byte, the interner only grows,
        /// and replaying the accepted log reproduces the edited schema
        /// without minting any new symbol.
        #[test]
        fn random_edit_reset_replay_is_symbol_stable(
            script in prop::collection::vec((contexts(), random_op()), 1..20)
        ) {
            let mut ws = Workspace::new(university::graph());
            let odl_before = render(&ws);

            let mut len_prev = Symbol::interner_len();
            for (context, op) in script {
                let _ = ws.apply(context, op);
                let len_now = Symbol::interner_len();
                prop_assert!(len_now >= len_prev, "interner shrank");
                len_prev = len_now;
            }
            let odl_edited = render(&ws);
            let log: Vec<_> = ws.log().iter().map(|r| (r.context, r.op.clone())).collect();
            let ids: Vec<(Symbol, &'static str)> = ws
                .working()
                .types()
                .map(|(_, node)| (node.name, node.name.as_str()))
                .collect();

            ws.reset();
            prop_assert_eq!(render(&ws), odl_before);
            prop_assert!(Symbol::interner_len() >= len_prev, "reset shrank the interner");

            let len_before_replay = Symbol::interner_len();
            ws.replay(log)
                .map_err(|(i, e)| TestCaseError::fail(format!("replay op {i}: {e}")))?;
            prop_assert_eq!(render(&ws), odl_edited);
            prop_assert_eq!(Symbol::interner_len(), len_before_replay);
            for (sym, name) in ids {
                prop_assert_eq!(Symbol::try_lookup(name), Some(sym));
            }
            let issues = check_well_formed(ws.working());
            prop_assert!(issues.is_empty(), "{issues:?}");
        }
    }
}
