//! The §5 local-names extension, end to end — including the measurable
//! payoff on the §4 case study: expressing ACEDB's `Strain` as AAtDB's
//! `Phenotype` by *renaming* instead of delete + re-add keeps the construct
//! (and everything attached to it) in the mapping as reused.

use shrink_wrap_schemas::core::{ConceptKind, Mapping};
use shrink_wrap_schemas::corpus::genome;
use shrink_wrap_schemas::prelude::*;

#[test]
fn alias_preserves_reuse_where_name_equivalence_forces_churn() {
    // Without local names (name equivalence only): Strain -> Phenotype is
    // delete + add, so Strain and its members count as deleted.
    let acedb = genome::acedb();
    let script = shrink_wrap_schemas::core::ops::synthesize::synthesize(&acedb, &genome::aatdb());
    let renames_as_churn = script
        .iter()
        .filter(|op| {
            matches!(op, shrink_wrap_schemas::core::ModOp::DeleteTypeDefinition { ty } if ty == "Strain")
                || matches!(op, shrink_wrap_schemas::core::ModOp::AddTypeDefinition { ty } if ty == "Phenotype")
        })
        .count();
    assert_eq!(renames_as_churn, 2, "name equivalence forces delete+add");

    // With local names: zero operations — an alias entry suffices, and the
    // rendered schema uses the plant-discipline terms.
    let mut repo = Repository::ingest(acedb);
    repo.set_type_alias("Strain", "Phenotype").unwrap();
    repo.set_member_alias("Strain", "strain_name", "phenotype_name")
        .unwrap();
    repo.set_member_alias("Strain", "genotype", "description")
        .unwrap();
    assert!(
        repo.workspace().log().is_empty(),
        "no modification operations needed"
    );

    let local = repo.custom_schema_local_odl();
    assert!(local.contains("interface Phenotype"));
    assert!(local.contains("attribute string(32) phenotype_name;"));
    assert!(local.contains("keys phenotype_name;"));
    assert!(!local.contains("Strain"));
    // The mapping still reports 100% reuse: nothing was deleted.
    let summary = Mapping::derive(repo.workspace()).summary();
    assert_eq!(summary.deleted, 0);
    assert!((summary.reuse_fraction() - 1.0).abs() < 1e-9);
}

#[test]
fn aliases_compose_with_real_modifications() {
    let mut session = Session::new(Repository::ingest(genome::acedb()));
    // Real structural customization...
    session
        .issue_str("delete_type_definition(TwoPointData)")
        .unwrap();
    session.set_context(ConceptKind::WagonWheel);
    session
        .issue_str("add_attribute(Locus, string(16), chromosome_arm)")
        .unwrap();
    // ...plus display renames.
    session.set_alias("Strain", None, "Phenotype").unwrap();
    session
        .set_alias("Locus", Some("chromosome_arm"), "arm")
        .unwrap();

    let local = session.repository().custom_schema_local_odl();
    assert!(local.contains("interface Phenotype"));
    assert!(local.contains("attribute string(16) arm;"));
    assert!(!local.contains("TwoPointData"));
    // Canonical output keeps canonical names (the workspace vocabulary).
    let canonical = session.repository().custom_schema_odl();
    assert!(canonical.contains("interface Strain"));
    assert!(canonical.contains("chromosome_arm"));

    // Round-trip through persistence.
    let dir = std::env::temp_dir().join(format!("sws_local_names_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    session.save(&dir).unwrap();
    let loaded = Session::load(&dir).unwrap();
    assert_eq!(
        loaded.repository().custom_schema_local_odl(),
        session.repository().custom_schema_local_odl()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn locally_named_output_is_valid_odl() {
    // The renamed schema must itself parse and validate — it is a real
    // deliverable, not just display sugar.
    let mut repo = Repository::ingest(genome::acedb());
    repo.set_type_alias("Strain", "Phenotype").unwrap();
    repo.set_type_alias("Paper", "Publication").unwrap();
    repo.set_member_alias("Paper", "title", "headline").unwrap();
    let local = repo.custom_schema_local_odl();
    let parsed = shrink_wrap_schemas::odl::parse_schema(&local).expect("valid ODL");
    assert!(shrink_wrap_schemas::odl::validate_schema(&parsed).is_empty());
    shrink_wrap_schemas::model::schema_to_graph(&parsed).expect("lowers cleanly");
}
