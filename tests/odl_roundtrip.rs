//! Property tests at the substrate boundary: extended-ODL text ↔ AST ↔
//! schema graph round-trips on randomly generated schemas, and graph
//! well-formedness is preserved by the pipeline.

use shrink_wrap_schemas::model::graph_to_schema;
use shrink_wrap_schemas::odl::{parse_schema, print_schema};

#[cfg(feature = "proptest")]
mod props {
    use super::*;
    use proptest::prelude::*;
    use shrink_wrap_schemas::corpus::synthetic::SyntheticSpec;
    use shrink_wrap_schemas::model::{check_well_formed, schema_to_graph};
    use shrink_wrap_schemas::odl::validate_schema;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// graph → AST → text → AST → graph is the identity (on canonical
        /// form).
        #[test]
        fn full_pipeline_round_trip(n in 1usize..30, seed in 0u64..10_000) {
            let g = SyntheticSpec::sized(n, seed).generate();
            let ast = graph_to_schema(&g);
            let text = print_schema(&ast);
            let reparsed = parse_schema(&text)
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(&reparsed, &ast);
            let relowered = schema_to_graph(&reparsed)
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(graph_to_schema(&relowered), ast);
        }

        /// Generated schemas validate cleanly at both levels.
        #[test]
        fn generated_schemas_validate(n in 1usize..30, seed in 0u64..10_000) {
            let g = SyntheticSpec::sized(n, seed).generate();
            prop_assert!(check_well_formed(&g).is_empty());
            let ast = graph_to_schema(&g);
            prop_assert!(validate_schema(&ast).is_empty());
        }

        /// Printing is deterministic and canonical: print(parse(print(x))) ==
        /// print(x).
        #[test]
        fn printing_is_canonical(n in 1usize..20, seed in 0u64..10_000) {
            let g = SyntheticSpec::sized(n, seed).generate();
            let text = print_schema(&graph_to_schema(&g));
            let again = print_schema(&parse_schema(&text).unwrap());
            prop_assert_eq!(text, again);
        }
    }
}

#[test]
fn corpus_round_trips() {
    for (name, g) in shrink_wrap_schemas::corpus::all_named() {
        let ast = graph_to_schema(&g);
        let text = print_schema(&ast);
        let reparsed = parse_schema(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(reparsed, ast, "{name}");
    }
}
