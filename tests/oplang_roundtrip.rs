//! Property test: every modification operation round-trips through the
//! modification language (`parse(print(op)) == op`).

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use shrink_wrap_schemas::core::oplang::{parse_statement, print_op};
use shrink_wrap_schemas::core::ModOp;
use shrink_wrap_schemas::odl::{Cardinality, CollectionKind, DomainType, Key, Param, ParamDir};

/// Identifiers that can never collide with a keyword in any argument
/// position (`in`, `none`, `set`, primitive type names, ...).
fn ident() -> impl Strategy<Value = String> {
    "[A-Z][a-z]{0,5}".prop_map(|s| format!("Id{s}"))
}

fn member() -> impl Strategy<Value = String> {
    "[a-z]{1,6}".prop_map(|s| format!("m_{s}"))
}

fn domain() -> impl Strategy<Value = DomainType> {
    prop_oneof![
        Just(DomainType::Long),
        Just(DomainType::String),
        Just(DomainType::Double),
        Just(DomainType::Bool),
        ident().prop_map(DomainType::Named),
        ident().prop_map(|n| DomainType::set_of(DomainType::Named(n))),
        (1u32..16).prop_map(|n| DomainType::Array(Box::new(DomainType::Double), n)),
    ]
}

fn cardinality() -> impl Strategy<Value = Cardinality> {
    prop_oneof![
        Just(Cardinality::One),
        Just(Cardinality::Many(CollectionKind::Set)),
        Just(Cardinality::Many(CollectionKind::List)),
        Just(Cardinality::Many(CollectionKind::Bag)),
    ]
}

fn collection() -> impl Strategy<Value = CollectionKind> {
    prop_oneof![
        Just(CollectionKind::Set),
        Just(CollectionKind::List),
        Just(CollectionKind::Bag)
    ]
}

fn keys() -> impl Strategy<Value = Vec<Key>> {
    prop::collection::vec(prop::collection::vec(member(), 1..3).prop_map(Key), 1..3)
}

fn params() -> impl Strategy<Value = Vec<Param>> {
    prop::collection::vec(
        (
            prop_oneof![
                Just(ParamDir::In),
                Just(ParamDir::Out),
                Just(ParamDir::InOut)
            ],
            domain(),
            member(),
        )
            .prop_map(|(direction, ty, name)| Param {
                direction,
                ty,
                name,
            }),
        0..3,
    )
}

fn names() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(member(), 0..3)
}

fn mod_op() -> impl Strategy<Value = ModOp> {
    let t = ident;
    let m = member;
    prop_oneof![
        t().prop_map(|ty| ModOp::AddTypeDefinition { ty }),
        t().prop_map(|ty| ModOp::DeleteTypeDefinition { ty }),
        (t(), t()).prop_map(|(ty, supertype)| ModOp::AddSupertype { ty, supertype }),
        (t(), t()).prop_map(|(ty, supertype)| ModOp::DeleteSupertype { ty, supertype }),
        (
            t(),
            prop::collection::vec(t(), 0..3),
            prop::collection::vec(t(), 0..3)
        )
            .prop_map(|(ty, old, new)| ModOp::ModifySupertype { ty, old, new }),
        (t(), m()).prop_map(|(ty, extent)| ModOp::AddExtentName { ty, extent }),
        (t(), m()).prop_map(|(ty, extent)| ModOp::DeleteExtentName { ty, extent }),
        (t(), m(), m()).prop_map(|(ty, old, new)| ModOp::ModifyExtentName { ty, old, new }),
        (t(), keys()).prop_map(|(ty, keys)| ModOp::AddKeyList { ty, keys }),
        (t(), keys()).prop_map(|(ty, keys)| ModOp::DeleteKeyList { ty, keys }),
        (t(), keys(), keys()).prop_map(|(ty, old, new)| ModOp::ModifyKeyList { ty, old, new }),
        (t(), domain(), prop::option::of(1u32..256), m()).prop_map(|(ty, domain, size, name)| {
            // Sizes are only printable on string/char domains.
            let size = if domain.admits_size() { size } else { None };
            ModOp::AddAttribute {
                ty,
                domain,
                size,
                name,
            }
        }),
        (t(), m()).prop_map(|(ty, name)| ModOp::DeleteAttribute { ty, name }),
        (t(), m(), t()).prop_map(|(ty, name, new_ty)| ModOp::ModifyAttribute { ty, name, new_ty }),
        (t(), m(), domain(), domain())
            .prop_map(|(ty, name, old, new)| { ModOp::ModifyAttributeType { ty, name, old, new } }),
        (
            t(),
            m(),
            prop::option::of(1u32..256),
            prop::option::of(1u32..256)
        )
            .prop_map(|(ty, name, old, new)| ModOp::ModifyAttributeSize {
                ty,
                name,
                old,
                new
            }),
        (t(), t(), cardinality(), m(), m(), names()).prop_map(
            |(ty, target, cardinality, path, inverse_path, order_by)| ModOp::AddRelationship {
                ty,
                target,
                cardinality,
                path,
                inverse_path,
                order_by
            }
        ),
        (t(), m()).prop_map(|(ty, path)| ModOp::DeleteRelationship { ty, path }),
        (t(), m(), t(), t()).prop_map(|(ty, path, old_target, new_target)| {
            ModOp::ModifyRelationshipTargetType {
                ty,
                path,
                old_target,
                new_target,
            }
        }),
        (t(), m(), cardinality(), cardinality()).prop_map(|(ty, path, old, new)| {
            ModOp::ModifyRelationshipCardinality { ty, path, old, new }
        }),
        (t(), m(), names(), names()).prop_map(|(ty, path, old, new)| {
            ModOp::ModifyRelationshipOrderBy { ty, path, old, new }
        }),
        (t(), domain(), m(), params(), names()).prop_map(
            |(ty, return_type, name, args, raises)| ModOp::AddOperation {
                ty,
                return_type,
                name,
                args,
                raises
            }
        ),
        (t(), m()).prop_map(|(ty, name)| ModOp::DeleteOperation { ty, name }),
        (t(), m(), t()).prop_map(|(ty, name, new_ty)| ModOp::ModifyOperation { ty, name, new_ty }),
        (t(), m(), domain(), domain()).prop_map(|(ty, name, old, new)| {
            ModOp::ModifyOperationReturnType { ty, name, old, new }
        }),
        (t(), m(), params(), params()).prop_map(|(ty, name, old, new)| {
            ModOp::ModifyOperationArgList { ty, name, old, new }
        }),
        (t(), m(), names(), names()).prop_map(|(ty, name, old, new)| {
            ModOp::ModifyOperationExceptionsRaised { ty, name, old, new }
        }),
        (t(), prop::option::of(collection()), t(), m(), m(), names()).prop_map(
            |(ty, collection, target, path, inverse_path, order_by)| {
                ModOp::AddPartOfRelationship {
                    ty,
                    collection,
                    target,
                    path,
                    inverse_path,
                    order_by,
                }
            }
        ),
        (t(), m()).prop_map(|(ty, path)| ModOp::DeletePartOfRelationship { ty, path }),
        (t(), m(), t(), t()).prop_map(|(ty, path, old_target, new_target)| {
            ModOp::ModifyPartOfTargetType {
                ty,
                path,
                old_target,
                new_target,
            }
        }),
        (t(), m(), collection(), collection()).prop_map(|(ty, path, old, new)| {
            ModOp::ModifyPartOfCardinality { ty, path, old, new }
        }),
        (t(), m(), names(), names())
            .prop_map(|(ty, path, old, new)| { ModOp::ModifyPartOfOrderBy { ty, path, old, new } }),
        (t(), prop::option::of(collection()), t(), m(), m(), names()).prop_map(
            |(ty, collection, target, path, inverse_path, order_by)| {
                ModOp::AddInstanceOfRelationship {
                    ty,
                    collection,
                    target,
                    path,
                    inverse_path,
                    order_by,
                }
            }
        ),
        (t(), m()).prop_map(|(ty, path)| ModOp::DeleteInstanceOfRelationship { ty, path }),
        (t(), m(), t(), t()).prop_map(|(ty, path, old_target, new_target)| {
            ModOp::ModifyInstanceOfTargetType {
                ty,
                path,
                old_target,
                new_target,
            }
        }),
        (t(), m(), collection(), collection()).prop_map(|(ty, path, old, new)| {
            ModOp::ModifyInstanceOfCardinality { ty, path, old, new }
        }),
        (t(), m(), names(), names()).prop_map(|(ty, path, old, new)| {
            ModOp::ModifyInstanceOfOrderBy { ty, path, old, new }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn print_parse_round_trip(op in mod_op()) {
        let printed = print_op(&op);
        let reparsed = parse_statement(&printed)
            .map_err(|e| TestCaseError::fail(format!("{printed}: {e}")))?;
        prop_assert_eq!(reparsed, op, "printed form: {}", printed);
    }
}
