//! Experiments T2, T3, and C1: the §3.5 completeness argument.
//!
//! * Tables 2–3: every ODL candidate has add and delete operations;
//!   modification covers everything except names.
//! * C1 (property): any target schema is reachable from any starting
//!   schema using the operation set — verified constructively by
//!   synthesizing an op script, replaying it through the full
//!   permission/constraint pipeline, and checking exact equality.

use shrink_wrap_schemas::core::ops::{coverage, synthesize::synthesize};
use shrink_wrap_schemas::core::Workspace;
use shrink_wrap_schemas::model::graph_to_schema;
use sws_bench::harness::apply_script;

#[test]
fn table2_every_candidate_addable_and_deletable() {
    for c in coverage::CANDIDATES {
        let add = coverage::add_op_for(c);
        let del = coverage::delete_op_for(c);
        assert!(add.name().starts_with("add_"), "{c:?}");
        assert!(del.name().starts_with("delete_"), "{c:?}");
        // The delete table is the add table with `add` -> `delete`.
        assert_eq!(del.name().replacen("delete_", "add_", 1), add.name());
    }
}

#[test]
fn table3_modify_covers_everything_but_names() {
    let (names, others): (Vec<_>, Vec<_>) = coverage::CANDIDATES.iter().partition(|c| c.is_name());
    assert_eq!(names.len(), 9);
    for c in names {
        assert!(
            coverage::modify_op_for(c).is_none(),
            "{c:?} must be immutable"
        );
    }
    for c in others {
        let m = coverage::modify_op_for(c).unwrap_or_else(|| panic!("{c:?} not modifiable"));
        assert!(m.name().starts_with("modify_"), "{c:?}");
    }
}

#[test]
fn extreme_case_teardown_and_rebuild() {
    // §3.5: "In the extreme case, the entire shrink wrap schema can be
    // deleted, and an entirely new (custom) schema can be added."
    let old = shrink_wrap_schemas::corpus::university::graph();
    let new = shrink_wrap_schemas::corpus::house::graph();
    let script = synthesize(&old, &new);
    let mut ws = Workspace::new(old);
    apply_script(&mut ws, &script).expect("extreme rebuild applies");
    assert_eq!(
        graph_to_schema(ws.working()).interfaces,
        graph_to_schema(&new).interfaces
    );
    // Everything was torn down: nothing of the university schema remains.
    assert!(ws.working().type_id("CourseOffering").is_none());
}

#[cfg(feature = "proptest")]
mod props {
    use super::*;
    use proptest::prelude::*;
    use shrink_wrap_schemas::corpus::synthetic::SyntheticSpec;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// C1: random schema pairs are mutually reachable.
        #[test]
        fn any_schema_reachable_from_any_other(
            n_old in 1usize..14,
            n_new in 1usize..14,
            seed_old in 0u64..1000,
            seed_new in 0u64..1000,
        ) {
            let old = SyntheticSpec::sized(n_old, seed_old).generate();
            let new = SyntheticSpec::sized(n_new, seed_new).generate();
            let script = synthesize(&old, &new);
            let mut ws = Workspace::new(old);
            apply_script(&mut ws, &script)
                .map_err(|(i, e)| TestCaseError::fail(format!("op {i}: {e}")))?;
            prop_assert_eq!(
                graph_to_schema(ws.working()).interfaces,
                graph_to_schema(&new).interfaces
            );
        }

        /// Synthesis is empty exactly on identical schemas.
        #[test]
        fn identity_synthesis_is_empty(n in 1usize..20, seed in 0u64..1000) {
            let g = SyntheticSpec::sized(n, seed).generate();
            prop_assert!(synthesize(&g, &g).is_empty());
        }
    }
}
