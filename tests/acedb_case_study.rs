//! Experiment F9–11: the §4 ACEDB case study.
//!
//! The paper's claim: "A shrink wrap schema based on the ACEDB schema could
//! have been constructed and each of the later physical mapping databases
//! could have used our mechanisms to create the custom schema for their
//! application." We verify it constructively and check the *shape* of the
//! result: a large shared type core, customization effort well below
//! from-scratch effort, and high reuse.

use shrink_wrap_schemas::corpus::genome;
use sws_bench::case_study;

#[test]
fn shared_core_matches_figures_9_to_11() {
    let shared = genome::shared_type_names();
    assert_eq!(shared.len(), 10);
    for name in [
        "Map", "Locus", "Clone", "Contig", "Sequence", "Paper", "Author",
    ] {
        assert!(shared.iter().any(|s| s == name), "missing {name}");
    }
}

#[test]
fn descendants_derive_exactly_and_cheaply() {
    let derivations = case_study::run();
    assert_eq!(derivations.len(), 2);
    for d in &derivations {
        // Who wins: reuse, by roughly 2.5-3x on ops vs from-scratch.
        assert!(
            d.effort_ratio() < 0.6,
            "{}: {:.2}",
            d.name,
            d.effort_ratio()
        );
        // Most of the shrink wrap carries over.
        assert!(
            d.reuse_fraction > 0.6,
            "{}: {:.2}",
            d.name,
            d.reuse_fraction
        );
        // The shared core dominates each descendant's type set.
        assert!(d.shared_types as f64 / d.target_types as f64 > 0.75);
    }
}

#[test]
fn strain_phenotype_correspondence() {
    // ACEDB's `Strain` and AAtDB's `Phenotype` are semantically equivalent
    // discipline terms; under name equivalence the derivation expresses
    // the swap as delete + add (the §5 limitation, reproduced).
    let acedb = genome::acedb();
    let aatdb = genome::aatdb();
    let script = shrink_wrap_schemas::core::ops::synthesize::synthesize(&acedb, &aatdb);
    let printed = shrink_wrap_schemas::core::oplang::print_script(&script);
    assert!(printed.contains("delete_type_definition(Strain)"));
    assert!(printed.contains("add_type_definition(Phenotype)"));
}

#[test]
fn derivation_scripts_round_trip_through_the_language() {
    // The customization scripts are ordinary modification-language text:
    // print them, re-parse them, and get the same operations back.
    let acedb = genome::acedb();
    for target in [genome::sacchdb(), genome::aatdb()] {
        let script = shrink_wrap_schemas::core::ops::synthesize::synthesize(&acedb, &target);
        let text = shrink_wrap_schemas::core::oplang::print_script(&script);
        let reparsed = shrink_wrap_schemas::core::oplang::parse_script(&text).expect("parses");
        assert_eq!(reparsed, script);
    }
}

#[test]
fn derived_sessions_persist_and_replay() {
    use shrink_wrap_schemas::prelude::*;
    use sws_bench::harness::apply_script;

    let acedb = genome::acedb();
    let script = shrink_wrap_schemas::core::ops::synthesize::synthesize(&acedb, &genome::sacchdb());
    let mut repo = Repository::ingest(acedb);
    {
        let ws = repo.workspace_mut();
        let mut staged = ws.clone();
        apply_script(&mut staged, &script).expect("applies");
        *ws = staged;
    }
    let dir = std::env::temp_dir().join(format!("sws_case_study_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    repo.save(&dir).expect("saves");
    let loaded = Repository::load(&dir).expect("replays");
    assert_eq!(loaded.custom_schema_odl(), repo.custom_schema_odl());
    std::fs::remove_dir_all(&dir).unwrap();
}
