//! Allocation attribution (the `alloc-stats` feature): with the counting
//! global allocator installed, every closed span carries `alloc.count` /
//! `alloc.bytes` fields, and the trace summary aggregates them per span
//! name — the baseline the arena/CSR refactor will be judged against.

#![cfg(feature = "alloc-stats")]

use shrink_wrap_schemas::core::{ConceptKind, ModOp, Workspace};
use shrink_wrap_schemas::corpus::university;
use sws_trace::{FieldValue, Recorder, TraceSummary};

#[test]
fn incremental_recheck_span_reports_allocation_counts() {
    let rec = Recorder::new();
    let _guard = rec.install_thread();

    let mut ws = Workspace::new(university::graph());
    ws.consistency(); // warm state: the next sync is incremental
    ws.apply(
        ConceptKind::WagonWheel,
        ModOp::AddAttribute {
            ty: "CourseOffering".into(),
            domain: shrink_wrap_schemas::odl::DomainType::String,
            size: Some(8),
            name: "wing".into(),
        },
    )
    .expect("applies");
    ws.consistency();

    let trace = rec.take();
    let close = trace
        .events
        .iter()
        .find(|e| {
            e.name == "core.consistency.incremental_sync"
                && matches!(e.kind, sws_trace::EventKind::SpanClose { .. })
        })
        .expect("incremental sync ran under the recorder");
    let field = |key: &str| {
        close
            .fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.clone())
    };
    let Some(FieldValue::U64(count)) = field("alloc.count") else {
        panic!("missing alloc.count on incremental_sync close: {close:?}");
    };
    let Some(FieldValue::U64(bytes)) = field("alloc.bytes") else {
        panic!("missing alloc.bytes on incremental_sync close: {close:?}");
    };
    // Syncing one dirty closure allocates (dirty sets, recheck buffers):
    // zero would mean the counter is not wired through.
    assert!(count > 0, "incremental sync should allocate; got 0");
    assert!(bytes >= count, "bytes ({bytes}) < count ({count})?");

    // And the summary attributes them per span name.
    let summary = TraceSummary::of(&trace);
    let row = summary
        .allocations
        .iter()
        .find(|a| a.name == "core.consistency.incremental_sync")
        .expect("summary aggregates the sync span's allocations");
    assert!(row.count >= count);
    assert!(row.spans >= 1);
    let rendered = summary.render();
    assert!(rendered.contains("allocations"), "{rendered}");
}
