//! Allocation attribution (the `alloc-stats` feature): with the counting
//! global allocator installed, every closed span carries `alloc.count` /
//! `alloc.bytes` fields, and the trace summary aggregates them per span
//! name.
//!
//! The headline assertion: the steady-state serial incremental recheck —
//! the `core.consistency.recheck` leaf span — performs **zero**
//! allocations. Interned symbols make every name comparison an integer
//! compare, the traversal scratch is warmed before the span opens, and a
//! clean type stores three empty (never-allocated) finding vectors. CI
//! runs this test so a regression that re-introduces allocation on the hot
//! path fails the build.

#![cfg(feature = "alloc-stats")]

use shrink_wrap_schemas::core::{ConceptKind, ModOp, Workspace};
use shrink_wrap_schemas::corpus::university;
use sws_trace::{FieldValue, Recorder, TraceSummary};

#[test]
fn incremental_recheck_span_is_allocation_free() {
    let rec = Recorder::new();
    let _guard = rec.install_thread();

    let mut ws = Workspace::new(university::graph());
    ws.consistency(); // warm state: the next sync is incremental
    ws.apply(
        ConceptKind::WagonWheel,
        ModOp::AddAttribute {
            ty: "CourseOffering".into(),
            domain: shrink_wrap_schemas::odl::DomainType::String,
            size: Some(8),
            name: "wing".into(),
        },
    )
    .expect("applies");
    ws.consistency();

    let trace = rec.take();
    let close_of = |name: &str| {
        trace
            .events
            .iter()
            .find(|e| e.name == name && matches!(e.kind, sws_trace::EventKind::SpanClose { .. }))
            .unwrap_or_else(|| panic!("`{name}` span ran under the recorder"))
    };
    let field = |ev: &sws_trace::Event, key: &str| {
        ev.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.clone())
    };

    // The enclosing incremental sync allocates (dirty sets, closure
    // expansion, recheck id list): zero would mean the counter is not
    // wired through.
    let sync = close_of("core.consistency.incremental_sync");
    let Some(FieldValue::U64(count)) = field(sync, "alloc.count") else {
        panic!("missing alloc.count on incremental_sync close: {sync:?}");
    };
    let Some(FieldValue::U64(bytes)) = field(sync, "alloc.bytes") else {
        panic!("missing alloc.bytes on incremental_sync close: {sync:?}");
    };
    assert!(count > 0, "incremental sync should allocate; got 0");
    assert!(bytes >= count, "bytes ({bytes}) < count ({count})?");

    // The leaf recheck span inside it is the steady-state hot path: with
    // interned symbols and a warm scratch it must not touch the allocator
    // at all.
    let recheck = close_of("core.consistency.recheck");
    let Some(FieldValue::U64(recheck_count)) = field(recheck, "alloc.count") else {
        panic!("missing alloc.count on recheck close: {recheck:?}");
    };
    let Some(FieldValue::U64(recheck_bytes)) = field(recheck, "alloc.bytes") else {
        panic!("missing alloc.bytes on recheck close: {recheck:?}");
    };
    assert_eq!(
        recheck_count, 0,
        "steady-state recheck allocated {recheck_count} times ({recheck_bytes} bytes)"
    );

    // And the summary attributes the sync's allocations per span name.
    let summary = TraceSummary::of(&trace);
    let row = summary
        .allocations
        .iter()
        .find(|a| a.name == "core.consistency.incremental_sync")
        .expect("summary aggregates the sync span's allocations");
    assert!(row.count >= count);
    assert!(row.spans >= 1);
    let rendered = summary.render();
    assert!(rendered.contains("allocations"), "{rendered}");
}
