//! Experiment T1: reproduce Table 1 — operations allowed per concept
//! schema type — and pin its exact reconstruction (see DESIGN.md §3 for
//! the reconstruction notes).

use shrink_wrap_schemas::core::ops::{OpCategory, OpKind, PermissionMatrix};
use shrink_wrap_schemas::prelude::ConceptKind;

#[test]
fn table1_row_counts() {
    let m = PermissionMatrix::new();
    // The wagon wheel carries the largest share (§3.4).
    assert_eq!(m.permitted_ops(ConceptKind::WagonWheel).len(), 25);
    assert_eq!(m.permitted_ops(ConceptKind::Generalization).len(), 8);
    assert_eq!(m.permitted_ops(ConceptKind::Aggregation).len(), 7);
    assert_eq!(m.permitted_ops(ConceptKind::InstanceOf).len(), 7);
}

#[test]
fn table1_exact_wagon_wheel_row() {
    let m = PermissionMatrix::new();
    let ww: Vec<&str> = m
        .permitted_ops(ConceptKind::WagonWheel)
        .into_iter()
        .map(|k| k.name())
        .collect();
    assert_eq!(
        ww,
        vec![
            "add_type_definition",
            "delete_type_definition",
            "add_extent_name",
            "delete_extent_name",
            "modify_extent_name",
            "add_key_list",
            "delete_key_list",
            "modify_key_list",
            "add_attribute",
            "delete_attribute",
            "modify_attribute_type",
            "modify_attribute_size",
            "add_relationship",
            "delete_relationship",
            "modify_relationship_cardinality",
            "modify_relationship_order_by",
            "add_operation",
            "delete_operation",
            "modify_operation_return_type",
            "modify_operation_arg_list",
            "modify_operation_exceptions_raised",
            "add_part_of_relationship",
            "delete_part_of_relationship",
            "add_instance_of_relationship",
            "delete_instance_of_relationship",
        ]
    );
}

#[test]
fn table1_exact_hierarchy_rows() {
    let m = PermissionMatrix::new();
    let names = |kind: ConceptKind| -> Vec<&str> {
        m.permitted_ops(kind)
            .into_iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        names(ConceptKind::Generalization),
        vec![
            "add_type_definition",
            "delete_type_definition",
            "add_supertype",
            "delete_supertype",
            "modify_supertype",
            "modify_attribute",
            "modify_relationship_target_type",
            "modify_operation",
        ]
    );
    assert_eq!(
        names(ConceptKind::Aggregation),
        vec![
            "add_type_definition",
            "delete_type_definition",
            "add_part_of_relationship",
            "delete_part_of_relationship",
            "modify_part_of_target_type",
            "modify_part_of_cardinality",
            "modify_part_of_order_by",
        ]
    );
    assert_eq!(
        names(ConceptKind::InstanceOf),
        vec![
            "add_type_definition",
            "delete_type_definition",
            "add_instance_of_relationship",
            "delete_instance_of_relationship",
            "modify_instance_of_target_type",
            "modify_instance_of_cardinality",
            "modify_instance_of_order_by",
        ]
    );
}

#[test]
fn table1_note_no_rename_operations() {
    // "Note: disallowed operations support name equivalence" — there is no
    // operation kind that renames a construct.
    for &op in OpKind::ALL {
        assert!(
            !op.name().ends_with("_name") || op.name().contains("extent"),
            "{op} looks like a rename"
        );
    }
}

#[test]
fn table1_every_category_reaches_every_context_it_should() {
    let m = PermissionMatrix::new();
    // Attribute/relationship/operation property edits: wagon wheel only.
    for op in [
        OpKind::ModifyAttributeType,
        OpKind::ModifyRelationshipCardinality,
        OpKind::ModifyOperationArgList,
    ] {
        assert_eq!(m.permitting_contexts(op), vec![ConceptKind::WagonWheel]);
    }
    // Hierarchy-link modifies: their own hierarchy only.
    assert_eq!(
        m.permitting_contexts(OpKind::ModifyPartOfTargetType),
        vec![ConceptKind::Aggregation]
    );
    assert_eq!(
        m.permitting_contexts(OpKind::ModifyInstanceOfTargetType),
        vec![ConceptKind::InstanceOf]
    );
    // Supertype surgery: generalization hierarchies only.
    assert_eq!(
        m.permitting_contexts(OpKind::ModifySupertype),
        vec![ConceptKind::Generalization]
    );
    // Hierarchy-link add/delete: the wagon wheel AND the owning hierarchy.
    assert_eq!(
        m.permitting_contexts(OpKind::AddPartOfRelationship),
        vec![ConceptKind::WagonWheel, ConceptKind::Aggregation]
    );
    assert_eq!(
        m.permitting_contexts(OpKind::DeleteInstanceOfRelationship),
        vec![ConceptKind::WagonWheel, ConceptKind::InstanceOf]
    );
    let _ = OpCategory::Attribute; // category module is part of the table
}
