//! Property test for the serve rebase protocol: two clients submit random
//! op scripts against one `DesignService` under a random interleaving, each
//! maintaining a local replica from nothing but protocol responses.
//!
//! Invariants under fuzz:
//! * an `accepted` response implies the op replays cleanly on a replica
//!   synced to the acknowledged `base_rev`,
//! * a `conflict` delta is exactly the accepted ops in `(base_rev, rev]`,
//!   contiguously numbered, and always rebases cleanly onto the stale
//!   replica (the server accepted every record in it),
//! * the `auto_rebasable` classification is honest both ways: when true,
//!   the retry at the head MUST be accepted; when false, the report names
//!   a non-commuting pair or the analyzer rejects the batch at the head,
//! * **zero false conflicts**: every `rejected` op also fails
//!   `analyze_ops` on a replica synced to the head — the server never
//!   turns away an op the executor would have taken,
//! * the accepted total order (the log since 0) replays serially to the
//!   exported schema, byte for byte, and so does every client replica.

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use shrink_wrap_schemas::corpus::university;
use shrink_wrap_schemas::odl::DomainType;
use shrink_wrap_schemas::repository::Repository;
use sws_analyze::analyze_ops;
use sws_core::{parse_statement, print_op, ConceptKind, ModOp};
use sws_designer::service::LogRecord;
use sws_designer::{DesignService, OpEnvelope, Request, Response, Session};

/// Names biased toward the university schema so ops collide for real.
fn type_name() -> impl Strategy<Value = String> {
    prop_oneof![
        4 => prop::sample::select(vec![
            "Person", "Student", "Employee", "Faculty", "Department",
            "Course", "CourseOffering", "Book", "TimeSlot",
        ])
        .prop_map(str::to_string),
        1 => "[A-Z][a-z]{2,5}".prop_map(|s| format!("Qq{s}")),
    ]
}

fn member_name() -> impl Strategy<Value = String> {
    prop_oneof![
        3 => prop::sample::select(vec![
            "name", "address", "student_id", "badge", "salary", "rank",
            "number", "title", "credits", "gpa",
        ])
        .prop_map(str::to_string),
        1 => "[a-z]{2,5}".prop_map(|s| format!("qq_{s}")),
    ]
}

fn domain() -> impl Strategy<Value = DomainType> {
    prop_oneof![
        Just(DomainType::Long),
        Just(DomainType::String),
        type_name().prop_map(DomainType::Named),
    ]
}

fn random_op() -> impl Strategy<Value = ModOp> {
    let t = type_name;
    let m = member_name;
    prop_oneof![
        t().prop_map(|ty| ModOp::AddTypeDefinition { ty }),
        t().prop_map(|ty| ModOp::DeleteTypeDefinition { ty }),
        (t(), t()).prop_map(|(ty, supertype)| ModOp::AddSupertype { ty, supertype }),
        (t(), t()).prop_map(|(ty, supertype)| ModOp::DeleteSupertype { ty, supertype }),
        (t(), domain(), m()).prop_map(|(ty, domain, name)| ModOp::AddAttribute {
            ty,
            domain,
            size: None,
            name
        }),
        (t(), m()).prop_map(|(ty, name)| ModOp::DeleteAttribute { ty, name }),
        (t(), m(), t()).prop_map(|(ty, name, new_ty)| ModOp::ModifyAttribute { ty, name, new_ty }),
    ]
}

fn contexts() -> impl Strategy<Value = ConceptKind> {
    prop::sample::select(ConceptKind::ALL.to_vec())
}

fn script() -> impl Strategy<Value = Vec<(ConceptKind, ModOp)>> {
    prop::collection::vec((contexts(), random_op()), 1..10)
}

/// One simulated client: a replica fed ONLY by its own accepted ops and
/// the deltas of its conflicts — never by peeking at the server.
struct Sim {
    name: &'static str,
    rev: u64,
    replica: Repository,
    accepted: u64,
    rejected: u64,
}

impl Sim {
    fn new(name: &'static str) -> Sim {
        Sim {
            name,
            rev: 0,
            replica: Repository::ingest_odl(university::SOURCE).expect("replica ingests"),
            accepted: 0,
            rejected: 0,
        }
    }

    fn apply_delta(&mut self, delta: &[LogRecord]) -> Result<(), TestCaseError> {
        for record in delta {
            prop_assert_eq!(record.seq, self.rev, "delta is contiguous from base_rev");
            let op = parse_statement(&record.statement)
                .map_err(|e| TestCaseError::fail(format!("logged op reparses: {e}")))?;
            self.replica
                .workspace_mut()
                .apply(record.context, op)
                .map_err(|e| {
                    TestCaseError::fail(format!(
                        "accepted `{}` does not rebase onto a synced replica: {e}",
                        record.statement
                    ))
                })?;
            self.rev += 1;
        }
        Ok(())
    }

    /// Does the single-op batch pass the static analyzer at the replica's
    /// current state? With the replica synced to the head, this is the
    /// analyzer's verdict "would the executor take it now".
    fn analyzer_passes(&self, context: ConceptKind, op: &ModOp) -> bool {
        let ws = self.replica.workspace();
        analyze_ops(ws.working(), ws.shrink_wrap(), &[(context, op.clone())]).passes()
    }

    fn submit(
        &mut self,
        service: &DesignService,
        context: ConceptKind,
        op: &ModOp,
    ) -> Result<(), TestCaseError> {
        // Set when a conflict was classified auto-rebasable: nothing else
        // runs between the delta sync and the retry, so the retry MUST land.
        let mut must_accept = false;
        loop {
            let response = service.handle(Request::Submit {
                session: self.name.to_string(),
                base_rev: self.rev,
                ops: vec![OpEnvelope {
                    context,
                    statement: print_op(op),
                }],
            });
            match response {
                Response::Accepted {
                    base_rev,
                    rev,
                    applied,
                    ..
                } => {
                    prop_assert_eq!(base_rev, self.rev);
                    prop_assert_eq!(rev, self.rev + 1);
                    prop_assert_eq!(applied, 1);
                    self.replica
                        .workspace_mut()
                        .apply(context, op.clone())
                        .map_err(|e| {
                            TestCaseError::fail(format!(
                                "server accepted `{}` but a synced replica rejects it: {e}",
                                print_op(op)
                            ))
                        })?;
                    self.rev = rev;
                    self.accepted += 1;
                    return Ok(());
                }
                Response::Conflict {
                    base_rev,
                    rev,
                    auto_rebasable,
                    delta,
                    conflicts,
                    ..
                } => {
                    prop_assert!(!must_accept, "auto_rebasable retry conflicted");
                    prop_assert_eq!(base_rev, self.rev, "conflict echoes the stale base_rev");
                    prop_assert!(rev > base_rev, "a conflict implies the head moved");
                    prop_assert_eq!(delta.len() as u64, rev - base_rev);
                    self.apply_delta(&delta)?;
                    prop_assert_eq!(self.rev, rev);
                    // Classification honesty, judged on the synced replica.
                    let head_passes = self.analyzer_passes(context, op);
                    if auto_rebasable {
                        prop_assert!(conflicts.is_empty());
                        prop_assert!(
                            head_passes,
                            "auto_rebasable, yet the analyzer rejects `{}` at the head",
                            print_op(op)
                        );
                        must_accept = true;
                    } else {
                        prop_assert!(
                            !conflicts.is_empty() || !head_passes,
                            "manual-rebase verdict for `{}` names no non-commuting pair \
                             and the analyzer passes it at the head",
                            print_op(op)
                        );
                    }
                }
                Response::Rejected {
                    rev, index, error, ..
                } => {
                    prop_assert!(!must_accept, "auto_rebasable retry was rejected: {error}");
                    prop_assert_eq!(rev, self.rev, "a rejection never moves the head");
                    prop_assert_eq!(index, 0);
                    // Zero false conflicts: the analyzer agrees the op is
                    // dead at the head the client is now synced to.
                    prop_assert!(
                        !self.analyzer_passes(context, op),
                        "server rejected `{}` ({error}) but analyze_ops passes it \
                         on a replica synced to the head",
                        print_op(op)
                    );
                    self.rejected += 1;
                    return Ok(());
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "unexpected response to submit: {other:?}"
                    )))
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_interleavings_obey_the_rebase_contract(
        script_a in script(),
        script_b in script(),
        choices in prop::collection::vec(prop::sample::select(vec![true, false]), 0..24),
    ) {
        let service = DesignService::new(
            Session::from_odl(university::SOURCE).expect("server schema"),
        );
        let mut a = Sim::new("alice");
        let mut b = Sim::new("bob");
        for sim in [&mut a, &mut b] {
            let opened = service.handle(Request::Open { session: sim.name.to_string() });
            prop_assert!(matches!(opened, Response::Opened { rev: 0, .. }));
        }

        // Drain both scripts under the random interleaving; once one side
        // is exhausted the rest of the choices fall through to the other.
        let mut qa = script_a.into_iter();
        let mut qb = script_b.into_iter();
        let mut choices = choices.into_iter();
        loop {
            let pick_a = choices.next().unwrap_or(true);
            let (sim, step) = if pick_a {
                let step = qa.next().map(|s| (s, &mut a)).or_else(|| qb.next().map(|s| (s, &mut b)));
                match step { Some((s, sim)) => (sim, s), None => break }
            } else {
                let step = qb.next().map(|s| (s, &mut b)).or_else(|| qa.next().map(|s| (s, &mut a)));
                match step { Some((s, sim)) => (sim, s), None => break }
            };
            let (context, op) = step;
            sim.submit(&service, context, &op)?;
        }

        // The accepted total order replays serially to the exported bytes.
        let head = match service.handle(Request::Export { session: "alice".to_string() }) {
            Response::Exported { rev, odl } => {
                prop_assert_eq!(rev, a.accepted + b.accepted);
                odl
            }
            other => return Err(TestCaseError::fail(format!("export failed: {other:?}"))),
        };
        let records = match service.handle(Request::Log { session: "alice".to_string(), since: 0 }) {
            Response::LogSlice { rev, ops, .. } => {
                prop_assert_eq!(rev, a.accepted + b.accepted);
                ops
            }
            other => return Err(TestCaseError::fail(format!("log failed: {other:?}"))),
        };
        let mut serial = Repository::ingest_odl(university::SOURCE).expect("serial replica");
        for record in &records {
            let op = parse_statement(&record.statement)
                .map_err(|e| TestCaseError::fail(format!("logged op reparses: {e}")))?;
            serial
                .workspace_mut()
                .apply(record.context, op)
                .map_err(|e| TestCaseError::fail(format!(
                    "serial replay of accepted `{}` failed: {e}", record.statement
                )))?;
        }
        prop_assert_eq!(serial.custom_schema_odl(), head.clone());

        // And each replica, topped up with the records it has not yet
        // incorporated, converges to the same bytes.
        for sim in [&mut a, &mut b] {
            let missing = records[sim.rev as usize..].to_vec();
            sim.apply_delta(&missing)?;
            prop_assert_eq!(
                sim.replica.custom_schema_odl(),
                head.clone(),
                "{}'s replica diverged from the server", sim.name
            );
        }
    }
}
