//! Experiments F3, F4, F5, F6, F7, F8: the paper's worked figures,
//! regenerated through the `sws-bench` harness (the same code the
//! `repro_fig*` binaries print).

use sws_bench::figures;

#[test]
fn f3_course_offering_wagon_wheel() {
    let (view, elements) = figures::fig3();
    // Focal point plus spokes: Course (instance-of), Syllabus, Book,
    // TimeSlot, Student, Faculty; attributes room/duration/term.
    assert!(view.starts_with("wagon wheel: CourseOffering"));
    for ty in [
        "Course", "Syllabus", "Book", "TimeSlot", "Student", "Faculty",
    ] {
        assert!(view.contains(&format!("type {ty}")), "{view}");
    }
    assert!(elements >= 14, "wagon wheel unexpectedly small: {elements}");
}

#[test]
fn f4_student_hierarchy() {
    let tree = figures::fig4();
    assert_eq!(
        tree,
        "Student\n    Graduate\n        Masters\n            NonThesisMasters\n        PhD\n    Undergraduate\n"
    );
}

#[test]
fn f5_house_explosion() {
    let tree = figures::fig5();
    assert!(tree.starts_with("House\n"));
    for part in [
        "Structure",
        "Roof",
        "Foundation",
        "FinishElement",
        "Shingle",
        "Window",
    ] {
        assert!(tree.contains(part), "{tree}");
    }
}

#[test]
fn f6_software_chain() {
    assert_eq!(
        figures::fig6(),
        "Application\n    Version\n        CompiledVersion\n            InstalledVersion\n"
    );
}

#[test]
fn f7_elaboration_and_simplification() {
    let (ws, elaborated, simplified) = figures::fig7();
    // Elaboration: the schedule aggregation arrived in the wagon wheel.
    assert!(elaborated.contains("type Schedule"));
    assert!(elaborated.contains("part-of Schedule::offerings -> CourseOffering::schedule"));
    // Simplification: time slot and room gone.
    assert!(!simplified.contains("TimeSlot"));
    assert!(!simplified.contains("room"));
    // The working schema still passes the consistency checks without
    // errors (warnings about the deletions are fine).
    let report =
        shrink_wrap_schemas::core::consistency::check_consistency(ws.working(), ws.shrink_wrap());
    assert_eq!(report.errors().count(), 0, "{}", report.render());
    // And the whole session replays from its log.
    let mut replayed = shrink_wrap_schemas::core::Workspace::new(ws.shrink_wrap().clone());
    replayed
        .replay(ws.log().iter().map(|r| (r.context, r.op.clone())))
        .expect("log replays");
    assert_eq!(
        shrink_wrap_schemas::model::graph_to_schema(replayed.working()),
        shrink_wrap_schemas::model::graph_to_schema(ws.working())
    );
}

#[test]
fn f8_paper_odl_listing() {
    let (before, after, ws) = figures::fig8();
    // The paper's first listing.
    assert!(before.contains("relationship set<Employee> has inverse Employee::works_in_a"));
    assert!(before.contains("relationship Department works_in_a inverse Department::has;"));
    // The paper's second listing.
    assert!(after.contains("relationship set<Person> has inverse Person::works_in_a"));
    assert!(after.contains("relationship Department works_in_a inverse Department::has;"));
    // The mapping records the relationship as moved, not deleted/re-added.
    let mapping = shrink_wrap_schemas::core::Mapping::derive(&ws);
    let summary = mapping.summary();
    assert_eq!(summary.moved, 1);
    assert_eq!(summary.deleted, 0);
    assert_eq!(summary.added, 0);
}
