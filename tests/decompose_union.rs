//! Experiment C2: the §3.3.1 union invariant — "the union of all the
//! initial concept schemas gives the original shrink wrap schema" — on the
//! whole corpus and on random schemas.

use shrink_wrap_schemas::core::decompose;
use shrink_wrap_schemas::model::SchemaGraph;
use std::collections::BTreeSet;

fn assert_union_covers(g: &SchemaGraph) {
    let d = decompose(g);
    let mut types = BTreeSet::new();
    let mut attrs = BTreeSet::new();
    let mut rels = BTreeSet::new();
    let mut ops = BTreeSet::new();
    let mut links = BTreeSet::new();
    let mut edges = BTreeSet::new();
    for cs in d.all() {
        types.extend(cs.types.iter().copied());
        attrs.extend(cs.attrs.iter().copied());
        rels.extend(cs.rels.iter().copied());
        ops.extend(cs.ops.iter().copied());
        links.extend(cs.links.iter().copied());
        edges.extend(cs.gen_edges.iter().copied());
    }
    assert_eq!(types.len(), g.type_count(), "types not covered");
    assert_eq!(attrs.len(), g.attrs().count(), "attributes not covered");
    assert_eq!(rels.len(), g.rels().count(), "relationships not covered");
    assert_eq!(ops.len(), g.ops().count(), "operations not covered");
    assert_eq!(links.len(), g.links().count(), "links not covered");
    let expected_edges: usize = g.types().map(|(_, n)| n.supertypes.len()).sum();
    assert_eq!(
        edges.len(),
        expected_edges,
        "generalization edges not covered"
    );
}

#[test]
fn union_invariant_on_the_corpus() {
    for (name, g) in shrink_wrap_schemas::corpus::all_named() {
        assert_union_covers(&g);
        // At least one wagon wheel per object type (§3.3.1).
        let d = decompose(&g);
        assert_eq!(d.wagon_wheels.len(), g.type_count(), "{name}");
    }
}

#[test]
fn hierarchy_concept_schemas_are_rooted() {
    for (_, g) in shrink_wrap_schemas::corpus::all_named() {
        let d = decompose(&g);
        for cs in d.aggregations.iter().chain(&d.instance_ofs) {
            // The focal type is a root: a parent in the hierarchy kind, a
            // child in none.
            assert!(cs.types.contains(&cs.focal));
        }
        for cs in &d.generalizations {
            assert!(cs.types.contains(&cs.focal));
            assert!(cs.gen_edges.len() >= cs.types.len() - 1);
        }
    }
}

#[cfg(feature = "proptest")]
mod props {
    use super::*;
    use proptest::prelude::*;
    use shrink_wrap_schemas::corpus::synthetic::SyntheticSpec;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn union_invariant_on_random_schemas(n in 1usize..40, seed in 0u64..10_000) {
            let g = SyntheticSpec::sized(n, seed).generate();
            assert_union_covers(&g);
        }

        /// Wagon wheels are views: every element is live and incident to the
        /// focal point.
        #[test]
        fn wagon_wheels_are_distance_one(n in 1usize..25, seed in 0u64..10_000) {
            let g = SyntheticSpec::sized(n, seed).generate();
            for ww in decompose(&g).wagon_wheels {
                for &a in &ww.attrs {
                    prop_assert_eq!(g.attr(a).owner, ww.focal);
                }
                for &o in &ww.ops {
                    prop_assert_eq!(g.op(o).owner, ww.focal);
                }
                for &r in &ww.rels {
                    let rel = g.rel(r);
                    prop_assert!(
                        rel.ends[0].owner == ww.focal || rel.ends[1].owner == ww.focal
                    );
                }
                for &l in &ww.links {
                    let link = g.link(l);
                    prop_assert!(link.parent == ww.focal || link.child == ww.focal);
                }
                for &(sub, sup) in &ww.gen_edges {
                    prop_assert!(sub == ww.focal || sup == ww.focal);
                }
            }
        }
    }
}
