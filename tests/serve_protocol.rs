//! Golden wire-protocol fixtures for `swsd serve`: scripted JSONL
//! conversations with every request type — including malformed frames,
//! unknown sessions, stale-`base_rev` conflicts, and the delta horizon —
//! pinned byte-for-byte under `tests/fixtures/serve/`. Key order,
//! message wording, numeric encoding, and the trailing SplitMix64
//! checksum are all load-bearing: clients parse these lines.
//!
//! To re-bless after an intentional protocol change:
//! `SWS_BLESS=1 cargo test --test serve_protocol`.

use std::path::{Path, PathBuf};

use sws_designer::crash::checksum_valid;
use sws_designer::{protocol, DesignService, Session};
use sws_repository::io::MemIo;

const SCHEMA: &str = "\
interface Person { attribute string name; }
interface Employee : Person { attribute long badge; }
";

/// Build the service a named conversation runs against. Everything is
/// deterministic: fixed schema, in-memory storage, no clocks.
fn service_for(name: &str) -> DesignService {
    let mut session = Session::from_odl(SCHEMA).expect("fixture schema");
    match name {
        "checkpoint" => {
            // An attached (in-memory) session directory so `checkpoint`
            // has somewhere to commit generations.
            session.set_io(Box::new(MemIo::new()));
            session.save(Path::new("/mem/golden")).expect("save");
        }
        "horizon" => {
            // Two ops issued before the service starts: revs 0 and 1 are
            // behind the service's delta horizon.
            session
                .issue_str("add_type_definition(PreExisting)")
                .expect("pre-op");
            session
                .issue_str("add_attribute(PreExisting, long, weight)")
                .expect("pre-op");
        }
        _ => {}
    }
    DesignService::new(session)
}

/// `(fixture name, request lines)` — one fixture file per conversation.
fn conversations() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (
            "lifecycle",
            vec![
                r#"{"type":"ping"}"#,
                r#"{"type":"open","session":"alice"}"#,
                r#"{"type":"open","session":"alice"}"#,
                r#"{"type":"open","session":"bob"}"#,
                r#"{"type":"ping"}"#,
                r#"{"type":"shutdown"}"#,
            ],
        ),
        (
            "submit",
            vec![
                r#"{"type":"open","session":"alice"}"#,
                r#"{"type":"submit","session":"alice","base_rev":0,"ops":[{"stmt":"add_type_definition(Project)"},{"stmt":"add_attribute(Project, string(16), code)"}]}"#,
                r#"{"type":"report","session":"alice"}"#,
                r#"{"type":"export","session":"alice"}"#,
                r#"{"type":"log","session":"alice","since":0}"#,
                r#"{"type":"log","session":"alice","since":1}"#,
                r#"{"type":"lint","session":"alice","ops":[{"stmt":"add_attribute(Project, long, headcount)"}]}"#,
                r#"{"type":"lint","session":"alice","ops":[{"stmt":"delete_type_definition(Ghost)"}]}"#,
                r#"{"ops":[{"context":"generalization","stmt":"modify_attribute(Employee, badge, Person)"}],"session":"alice","base_rev":2,"type":"submit"}"#,
            ],
        ),
        (
            "conflict",
            vec![
                r#"{"type":"open","session":"alice"}"#,
                r#"{"type":"open","session":"bob"}"#,
                r#"{"type":"submit","session":"alice","base_rev":0,"ops":[{"stmt":"add_type_definition(Lab)"}]}"#,
                r#"{"type":"submit","session":"bob","base_rev":0,"ops":[{"stmt":"add_type_definition(Annex)"}]}"#,
                r#"{"type":"submit","session":"bob","base_rev":0,"ops":[{"stmt":"delete_type_definition(Lab)"}]}"#,
                r#"{"type":"submit","session":"bob","base_rev":1,"ops":[{"stmt":"add_type_definition(Annex)"}]}"#,
                r#"{"type":"submit","session":"alice","base_rev":9,"ops":[{"stmt":"add_type_definition(Late)"}]}"#,
                r#"{"type":"submit","session":"alice","base_rev":2,"ops":[{"stmt":"add_attribute(Ghost, long, x)"}]}"#,
                r#"{"type":"submit","session":"alice","base_rev":2,"ops":[{"stmt":"add_type_definition(Ok)"},{"stmt":"add_attribute(Ghost, long, x)"}]}"#,
            ],
        ),
        (
            "errors",
            vec![
                "not json at all",
                r#"{"type":"warp"}"#,
                r#"{"type":"open"}"#,
                r#"{"type":"submit","session":"alice","base_rev":-1,"ops":[]}"#,
                r#"{"type":"submit","session":"alice","base_rev":0,"ops":[{"stmt":"x","context":"sideways"}]}"#,
                r#"{"type":"submit","session":"ghost","base_rev":0,"ops":[{"stmt":"add_type_definition(X)"}]}"#,
                r#"{"type":"report","session":"ghost"}"#,
                r#"{"type":"export","session":"ghost"}"#,
                r#"{"type":"log","session":"ghost"}"#,
                r#"{"type":"lint","session":"ghost","ops":[]}"#,
                r#"{"type":"checkpoint","session":"ghost"}"#,
                r#"{"type":"submit","session":"alice","base_rev":0,"ops":[{"stmt":"frobnicate(X)"}]}"#,
            ],
        ),
        (
            "checkpoint",
            vec![
                r#"{"type":"open","session":"alice"}"#,
                r#"{"type":"submit","session":"alice","base_rev":0,"ops":[{"stmt":"add_type_definition(Widget)"},{"stmt":"add_type_definition(Gadget)"}]}"#,
                r#"{"type":"checkpoint","session":"alice"}"#,
                r#"{"type":"ping"}"#,
            ],
        ),
        (
            "horizon",
            vec![
                r#"{"type":"open","session":"late"}"#,
                r#"{"type":"submit","session":"late","base_rev":0,"ops":[{"stmt":"add_type_definition(X)"}]}"#,
                r#"{"type":"log","session":"late","since":0}"#,
                r#"{"type":"submit","session":"late","base_rev":2,"ops":[{"stmt":"add_type_definition(X)"}]}"#,
            ],
        ),
    ]
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/serve")
}

#[test]
fn every_request_type_has_byte_stable_responses() {
    let dir = fixtures_dir();
    let bless = std::env::var_os("SWS_BLESS").is_some();
    if bless {
        std::fs::create_dir_all(&dir).expect("fixtures dir");
    }
    let mut failures = Vec::new();
    for (name, requests) in conversations() {
        let service = service_for(name);
        let mut transcript = String::new();
        for request in requests {
            let (_, rendered) = protocol::respond(&service, request);
            assert!(
                checksum_valid(&rendered),
                "{name}: response not self-checksummed: {rendered}"
            );
            assert!(!rendered.contains('\n'), "{name}: multi-line response");
            transcript.push_str("> ");
            transcript.push_str(request);
            transcript.push('\n');
            transcript.push_str("< ");
            transcript.push_str(&rendered);
            transcript.push('\n');
        }
        let path = dir.join(format!("{name}.txt"));
        if bless {
            std::fs::write(&path, &transcript).expect("bless fixture");
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: cannot read {}: {e}", path.display()));
        if golden != transcript {
            let diff: Vec<String> = golden
                .lines()
                .zip(transcript.lines())
                .filter(|(g, a)| g != a)
                .map(|(g, a)| format!("  golden: {g}\n  actual: {a}"))
                .collect();
            failures.push(format!("{name}:\n{}", diff.join("\n")));
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatches (SWS_BLESS=1 to re-bless):\n{}",
        failures.join("\n")
    );
}

/// The conversation scripts above must collectively exercise every
/// response tag the protocol can produce — a new variant without a
/// fixture fails here, not in a code-review comment.
#[test]
fn fixtures_cover_every_response_tag() {
    let mut seen = std::collections::BTreeSet::new();
    for (name, requests) in conversations() {
        let service = service_for(name);
        for request in requests {
            let (response, _) = protocol::respond(&service, request);
            seen.insert(response.tag());
        }
    }
    for tag in [
        "opened",
        "accepted",
        "conflict",
        "rejected",
        "linted",
        "reported",
        "exported",
        "log",
        "checkpointed",
        "pong",
        "bye",
        "error",
    ] {
        assert!(seen.contains(tag), "no fixture produces `{tag}`");
    }
}
