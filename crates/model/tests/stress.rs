//! Stress and lifecycle tests for the schema graph: ID stability under
//! churn, tombstone semantics, and consistency after heavy mutation.

use sws_model::{check_well_formed, graph_to_schema, schema_to_graph, RemoveTypeMode, SchemaGraph};
use sws_odl::{Cardinality, CollectionKind, DomainType, HierKind, Key, Operation};

#[test]
fn ids_stay_valid_across_unrelated_removals() {
    let mut g = SchemaGraph::new("t");
    let a = g.add_type("A").unwrap();
    let b = g.add_type("B").unwrap();
    let c = g.add_type("C").unwrap();
    let attr_a = g.add_attribute(a, "x", DomainType::Long, None).unwrap();
    let rel_ab = g
        .add_relationship(
            a,
            "r",
            Cardinality::One,
            vec![],
            b,
            "inv",
            Cardinality::One,
            vec![],
        )
        .unwrap();
    // Removing C must not disturb A/B handles.
    g.remove_type(c, RemoveTypeMode::default()).unwrap();
    assert_eq!(g.attr(attr_a).name, "x");
    assert_eq!(g.rel(rel_ab).ends[0].path, "r");
    assert_eq!(g.type_name(a), "A");
    // Dead handles answer None, not garbage.
    assert!(g.try_ty(c).is_none());
}

#[test]
fn name_reuse_after_deletion_gets_fresh_identity() {
    let mut g = SchemaGraph::new("t");
    let first = g.add_type("Phoenix").unwrap();
    g.add_attribute(first, "age", DomainType::Long, None)
        .unwrap();
    g.remove_type(first, RemoveTypeMode::default()).unwrap();
    let second = g.add_type("Phoenix").unwrap();
    assert_ne!(first, second);
    // The reborn type is empty: no attribute leakage from the tombstone.
    assert!(g.ty(second).attrs.is_empty());
    assert!(g.find_attr(second, "age").is_none());
}

#[test]
fn heavy_churn_keeps_the_graph_well_formed() {
    let mut g = SchemaGraph::new("churn");
    // Build a 60-type web.
    let mut ids = Vec::new();
    for i in 0..60 {
        let t = g.add_type(&format!("T{i}")).unwrap();
        g.add_attribute(t, &format!("a{i}"), DomainType::String, Some(16))
            .unwrap();
        g.add_key(t, Key::single(format!("a{i}"))).unwrap();
        if i > 0 && i % 3 == 0 {
            g.add_supertype(t, ids[i - 1]).unwrap();
        }
        ids.push(t);
    }
    for i in 0..40 {
        let a = ids[i];
        let b = ids[i + 10];
        g.add_relationship(
            a,
            &format!("r{i}"),
            Cardinality::Many(CollectionKind::Set),
            vec![],
            b,
            &format!("r{i}_inv"),
            Cardinality::One,
            vec![],
        )
        .unwrap();
        if i % 4 == 0 {
            g.add_link(
                HierKind::PartOf,
                a,
                &format!("p{i}"),
                CollectionKind::Set,
                vec![],
                ids[i + 15],
                &format!("p{i}_inv"),
            )
            .unwrap();
        }
    }
    assert!(check_well_formed(&g).is_empty());

    // Tear out every third type; everything incident must cascade.
    for i in (0..60).step_by(3) {
        g.remove_type(ids[i], RemoveTypeMode::RewireSubtypes)
            .unwrap();
    }
    assert_eq!(g.type_count(), 40);
    let issues = check_well_formed(&g);
    assert!(issues.is_empty(), "{issues:?}");

    // Everything that survived still round-trips through the AST.
    let ast = graph_to_schema(&g);
    let relowered = schema_to_graph(&ast).unwrap();
    assert_eq!(graph_to_schema(&relowered), ast);
}

#[test]
fn clone_is_independent() {
    let mut g = SchemaGraph::new("orig");
    let a = g.add_type("A").unwrap();
    let snapshot = g.clone();
    g.add_attribute(a, "x", DomainType::Long, None).unwrap();
    g.remove_type(a, RemoveTypeMode::default()).unwrap();
    // The snapshot still has a live, attribute-free A.
    assert!(snapshot.try_ty(a).is_some());
    assert!(snapshot.find_attr(a, "x").is_none());
    assert!(g.try_ty(a).is_none());
}

#[test]
fn operations_with_same_name_across_types_are_independent() {
    let mut g = SchemaGraph::new("t");
    let mut ids = Vec::new();
    for i in 0..20 {
        let t = g.add_type(&format!("T{i}")).unwrap();
        g.add_operation(t, Operation::nullary("describe", DomainType::String))
            .unwrap();
        ids.push(t);
    }
    // Remove half the operations; the others are untouched.
    for (i, &t) in ids.iter().enumerate() {
        if i % 2 == 0 {
            let op = g.find_op(t, "describe").unwrap();
            g.remove_operation(op).unwrap();
        }
    }
    for (i, &t) in ids.iter().enumerate() {
        assert_eq!(g.find_op(t, "describe").is_some(), i % 2 == 1);
    }
}

#[test]
fn thousand_type_graph_builds_quickly_and_round_trips() {
    let mut g = SchemaGraph::new("big");
    let mut prev = None;
    for i in 0..1000 {
        let t = g.add_type(&format!("T{i}")).unwrap();
        g.add_attribute(t, &format!("a{i}"), DomainType::Long, None)
            .unwrap();
        if let Some(p) = prev {
            g.add_supertype(t, p).unwrap();
        }
        if i % 10 == 0 {
            prev = Some(t);
        }
    }
    assert_eq!(g.type_count(), 1000);
    assert_eq!(g.construct_count(), 1000 + 1000 + 999);
    let ast = graph_to_schema(&g);
    assert_eq!(ast.interfaces.len(), 1000);
    let relowered = schema_to_graph(&ast).unwrap();
    assert_eq!(relowered.type_count(), 1000);
}
