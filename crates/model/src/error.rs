//! Mutation errors raised by [`crate::SchemaGraph`].

use crate::ids::{AttrId, LinkId, OpId, RelId, TypeId};
use std::fmt;

/// Why a graph mutation was refused. The graph defends its own invariants;
/// richer, designer-facing precondition diagnostics live in
/// `sws-core::constraints`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A type with this name already exists.
    DuplicateTypeName(String),
    /// No (live) type has this name.
    UnknownTypeName(String),
    /// The ID does not refer to a live type.
    DeadType(TypeId),
    /// The ID does not refer to a live attribute.
    DeadAttr(AttrId),
    /// The ID does not refer to a live relationship.
    DeadRel(RelId),
    /// The ID does not refer to a live operation.
    DeadOp(OpId),
    /// The ID does not refer to a live link.
    DeadLink(LinkId),
    /// The member name is already used in the owning type.
    DuplicateMember { owner: TypeId, member: String },
    /// The extent name is already used by another type.
    DuplicateExtent(String),
    /// The supertype edge already exists.
    DuplicateSupertype { sub: TypeId, sup: TypeId },
    /// The supertype edge does not exist.
    NoSuchSupertype { sub: TypeId, sup: TypeId },
    /// Adding this supertype edge would create a generalization cycle.
    SupertypeCycle { sub: TypeId, sup: TypeId },
    /// Adding this link would create a part-of / instance-of cycle.
    HierarchyCycle { parent: TypeId, child: TypeId },
    /// No member with this name/path on the given type.
    NoSuchMember { owner: TypeId, member: String },
    /// A type cannot be its own supertype (or link to itself in a hierarchy).
    SelfReference(TypeId),
    /// The key with this definition does not exist on the type.
    NoSuchKey { owner: TypeId, key: String },
    /// The key already exists on the type.
    DuplicateKey { owner: TypeId, key: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateTypeName(n) => write!(f, "type `{n}` already exists"),
            ModelError::UnknownTypeName(n) => write!(f, "no type named `{n}`"),
            ModelError::DeadType(id) => write!(f, "type {id} does not exist"),
            ModelError::DeadAttr(id) => write!(f, "attribute {id} does not exist"),
            ModelError::DeadRel(id) => write!(f, "relationship {id} does not exist"),
            ModelError::DeadOp(id) => write!(f, "operation {id} does not exist"),
            ModelError::DeadLink(id) => write!(f, "link {id} does not exist"),
            ModelError::DuplicateMember { owner, member } => {
                write!(f, "member `{member}` already exists on {owner}")
            }
            ModelError::DuplicateExtent(n) => write!(f, "extent `{n}` already in use"),
            ModelError::DuplicateSupertype { sub, sup } => {
                write!(f, "{sub} already has supertype {sup}")
            }
            ModelError::NoSuchSupertype { sub, sup } => {
                write!(f, "{sub} has no supertype {sup}")
            }
            ModelError::SupertypeCycle { sub, sup } => {
                write!(f, "making {sup} a supertype of {sub} would create a cycle")
            }
            ModelError::HierarchyCycle { parent, child } => {
                write!(
                    f,
                    "linking {parent} above {child} would create a hierarchy cycle"
                )
            }
            ModelError::NoSuchMember { owner, member } => {
                write!(f, "no member `{member}` on {owner}")
            }
            ModelError::SelfReference(id) => {
                write!(f, "{id} cannot reference itself here")
            }
            ModelError::NoSuchKey { owner, key } => write!(f, "no key `{key}` on {owner}"),
            ModelError::DuplicateKey { owner, key } => {
                write!(f, "key `{key}` already exists on {owner}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = ModelError::DuplicateTypeName("Person".into());
        assert_eq!(e.to_string(), "type `Person` already exists");
        let e = ModelError::DuplicateMember {
            owner: TypeId(2),
            member: "x".into(),
        };
        assert_eq!(e.to_string(), "member `x` already exists on t2");
    }
}
