//! The schema graph: typed arenas plus invariant-preserving mutators.
//!
//! Arena slots are tombstoned on removal and never reused, so IDs remain
//! stable across a whole design session — op logs, mappings, and
//! concept-schema views can reference them safely.
//!
//! Mutators that remove things return a [`CascadeReport`] describing every
//! secondary change they performed (relationships dropped with a type, key
//! entries pruned with an attribute, …). `sws-core`'s propagation layer
//! turns these reports into the designer-facing *impact reports* of the
//! paper (activity 9).

use crate::error::ModelError;
use crate::ids::{AttrId, LinkId, OpId, RelId, TypeId};
use crate::intern::{SymKey, Symbol};
use std::collections::HashMap;
use sws_odl::{Cardinality, CollectionKind, DomainType, HierKind, Key, Operation, Param};

/// One object type (interface definition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeNode {
    /// Type name (interned), unique among live types.
    pub name: Symbol,
    /// Abstract types have no direct instances (used for synthesized roots).
    pub is_abstract: bool,
    /// Extent name, if declared; unique among live types.
    pub extent: Option<Symbol>,
    /// Key list (interned attribute names).
    pub keys: Vec<SymKey>,
    /// Direct supertypes.
    pub supertypes: Vec<TypeId>,
    /// Direct subtypes (derived; maintained by the graph).
    pub subtypes: Vec<TypeId>,
    /// Attributes owned by this type.
    pub attrs: Vec<AttrId>,
    /// Relationship ends owned by this type, as `(relationship, end index)`.
    pub rel_ends: Vec<(RelId, u8)>,
    /// Operations owned by this type.
    pub ops: Vec<OpId>,
    /// Hierarchy links in which this type is the parent (whole / generic).
    pub parent_links: Vec<LinkId>,
    /// Hierarchy links in which this type is the child (part / instance).
    pub child_links: Vec<LinkId>,
    pub(crate) alive: bool,
}

impl TypeNode {
    /// A new, live, empty type node. States that build nodes outside a
    /// graph (the static analyzer's overlay) start from this.
    pub fn fresh(name: Symbol) -> TypeNode {
        TypeNode {
            name,
            is_abstract: false,
            extent: None,
            keys: Vec::new(),
            supertypes: Vec::new(),
            subtypes: Vec::new(),
            attrs: Vec::new(),
            rel_ends: Vec::new(),
            ops: Vec::new(),
            parent_links: Vec::new(),
            child_links: Vec::new(),
            alive: true,
        }
    }
}

/// An attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrNode {
    /// Owning type.
    pub owner: TypeId,
    /// Attribute name (interned).
    pub name: Symbol,
    /// Domain type.
    pub ty: DomainType,
    /// Optional size constraint.
    pub size: Option<u32>,
    pub(crate) alive: bool,
}

impl AttrNode {
    /// A new, live attribute node (see [`TypeNode::fresh`]).
    pub fn fresh(owner: TypeId, name: Symbol, ty: DomainType, size: Option<u32>) -> AttrNode {
        AttrNode {
            owner,
            name,
            ty,
            size,
            alive: true,
        }
    }
}

/// One end of a relationship.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelEnd {
    /// The type owning this end (the *target type* of the opposite end).
    pub owner: TypeId,
    /// Traversal path name (interned).
    pub path: Symbol,
    /// One-way cardinality of this end.
    pub cardinality: Cardinality,
    /// Order-by attribute list (attributes of the opposite end's owner).
    pub order_by: Vec<Symbol>,
}

/// A relationship: two ends sharing one ID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelNode {
    /// The two ends. `ends[0]` is the side that was stated first.
    pub ends: [RelEnd; 2],
    pub(crate) alive: bool,
}

impl RelNode {
    /// A new, live relationship node (see [`TypeNode::fresh`]).
    pub fn fresh(ends: [RelEnd; 2]) -> RelNode {
        RelNode { ends, alive: true }
    }

    /// The end at `idx` (0 or 1).
    pub fn end(&self, idx: u8) -> &RelEnd {
        &self.ends[idx as usize]
    }

    /// The end opposite `idx`.
    pub fn other(&self, idx: u8) -> &RelEnd {
        &self.ends[1 - idx as usize]
    }
}

/// An operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpNode {
    /// Owning type.
    pub owner: TypeId,
    /// The operation name, interned (denormalized from `op.name` so the
    /// hot member-name compares never touch the `String`).
    pub name: Symbol,
    /// The full signature (name, return type, args, raises).
    pub op: Operation,
    pub(crate) alive: bool,
}

impl OpNode {
    /// A new, live operation node (see [`TypeNode::fresh`]). The interned
    /// name is derived from the signature, like [`SchemaGraph::add_operation`]
    /// does.
    pub fn fresh(owner: TypeId, op: Operation) -> OpNode {
        OpNode {
            owner,
            name: Symbol::intern(&op.name),
            op,
            alive: true,
        }
    }
}

/// A part-of or instance-of link. The parent side (whole / generic entity)
/// is collection-valued; the child side (component / instance entity) is
/// single-valued — the implicit 1:N cardinality of the paper's extensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkNode {
    /// Part-of or instance-of.
    pub kind: HierKind,
    /// Parent (whole / generic) type.
    pub parent: TypeId,
    /// Traversal path on the parent side (e.g. `walls`), interned.
    pub parent_path: Symbol,
    /// Collection kind of the parent side.
    pub collection: CollectionKind,
    /// Order-by list for the parent side (attributes of the child type).
    pub order_by: Vec<Symbol>,
    /// Child (component / instance) type.
    pub child: TypeId,
    /// Traversal path on the child side (e.g. `wall_of`), interned.
    pub child_path: Symbol,
    pub(crate) alive: bool,
}

impl LinkNode {
    /// A new, live link node (see [`TypeNode::fresh`]).
    pub fn fresh(
        kind: HierKind,
        parent: TypeId,
        parent_path: Symbol,
        collection: CollectionKind,
        order_by: Vec<Symbol>,
        child: TypeId,
        child_path: Symbol,
    ) -> LinkNode {
        LinkNode {
            kind,
            parent,
            parent_path,
            collection,
            order_by,
            child,
            child_path,
            alive: true,
        }
    }
}

/// Which side of a [`LinkNode`] a lookup landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSide {
    /// The parent (whole / generic) side.
    Parent,
    /// The child (component / instance) side.
    Child,
}

/// What to do with the subtypes of a removed type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RemoveTypeMode {
    /// Re-wire each subtype to the removed type's supertypes, preserving
    /// inheritance paths (our default propagation rule).
    #[default]
    RewireSubtypes,
    /// Detach subtypes, leaving them rootless.
    DetachSubtypes,
}

/// Every secondary change performed by a cascading removal. All entries use
/// names (not IDs) so they stay meaningful after the referents die; the
/// names are interned symbols, so recording a cascade never copies strings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CascadeReport {
    /// Attributes removed: `(type, attribute)`.
    pub removed_attrs: Vec<(Symbol, Symbol)>,
    /// Operations removed: `(type, operation)`.
    pub removed_ops: Vec<(Symbol, Symbol)>,
    /// Relationships removed: `(type_a, path_a, type_b, path_b)`.
    pub removed_rels: Vec<(Symbol, Symbol, Symbol, Symbol)>,
    /// Hierarchy links removed: `(kind, parent, parent_path, child, child_path)`.
    pub removed_links: Vec<(HierKind, Symbol, Symbol, Symbol, Symbol)>,
    /// Supertype edges removed: `(subtype, supertype)`.
    pub removed_supertype_edges: Vec<(Symbol, Symbol)>,
    /// Subtypes re-wired to a new supertype: `(subtype, new_supertype)`.
    pub rewired_subtypes: Vec<(Symbol, Symbol)>,
    /// Subtypes left detached: type names.
    pub detached_subtypes: Vec<Symbol>,
    /// Keys pruned because an attribute vanished: `(type, rendered key)`.
    pub keys_pruned: Vec<(Symbol, String)>,
    /// Order-by entries pruned: `(type, path, attribute)`.
    pub order_by_pruned: Vec<(Symbol, Symbol, Symbol)>,
}

impl CascadeReport {
    /// True if nothing cascaded.
    pub fn is_empty(&self) -> bool {
        self.removed_attrs.is_empty()
            && self.removed_ops.is_empty()
            && self.removed_rels.is_empty()
            && self.removed_links.is_empty()
            && self.removed_supertype_edges.is_empty()
            && self.rewired_subtypes.is_empty()
            && self.detached_subtypes.is_empty()
            && self.keys_pruned.is_empty()
            && self.order_by_pruned.is_empty()
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: CascadeReport) {
        self.removed_attrs.extend(other.removed_attrs);
        self.removed_ops.extend(other.removed_ops);
        self.removed_rels.extend(other.removed_rels);
        self.removed_links.extend(other.removed_links);
        self.removed_supertype_edges
            .extend(other.removed_supertype_edges);
        self.rewired_subtypes.extend(other.rewired_subtypes);
        self.detached_subtypes.extend(other.detached_subtypes);
        self.keys_pruned.extend(other.keys_pruned);
        self.order_by_pruned.extend(other.order_by_pruned);
    }
}

/// Live/dead slot counts per arena; see [`SchemaGraph::arena_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    pub types_live: usize,
    pub types_dead: usize,
    pub attrs_live: usize,
    pub attrs_dead: usize,
    pub rels_live: usize,
    pub rels_dead: usize,
    pub ops_live: usize,
    pub ops_dead: usize,
    pub links_live: usize,
    pub links_dead: usize,
}

/// A recorded set of inverse mutations, sufficient to revert a graph to the
/// state it had when [`SchemaGraph::begin_undo`] was called.
///
/// The journal uses *first-touch before-images*: the first time a mutator
/// touches an arena slot while a journal is active, the slot's previous
/// contents are saved. Slots created after `begin_undo` need no image — the
/// arenas are append-only, so truncating back to the recorded base lengths
/// removes them. Because arena slots are tombstoned and never reused,
/// reverting a patch restores the *exact* previous arena state, IDs included.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UndoPatch {
    base_types: usize,
    base_attrs: usize,
    base_rels: usize,
    base_ops: usize,
    base_links: usize,
    types: Vec<(usize, TypeNode)>,
    attrs: Vec<(usize, AttrNode)>,
    rels: Vec<(usize, RelNode)>,
    ops: Vec<(usize, OpNode)>,
    links: Vec<(usize, LinkNode)>,
    by_name: Vec<(Symbol, Option<TypeId>)>,
}

impl UndoPatch {
    /// Number of before-images recorded (a rough size measure; does not
    /// count slots created after `begin_undo`, which revert by truncation).
    pub fn touched(&self) -> usize {
        self.types.len()
            + self.attrs.len()
            + self.rels.len()
            + self.ops.len()
            + self.links.len()
            + self.by_name.len()
    }
}

/// The schema graph. See the module docs.
#[derive(Debug, Clone)]
pub struct SchemaGraph {
    name: String,
    types: Vec<TypeNode>,
    attrs: Vec<AttrNode>,
    rels: Vec<RelNode>,
    ops: Vec<OpNode>,
    links: Vec<LinkNode>,
    by_name: HashMap<Symbol, TypeId>,
    /// Count of live (non-tombstoned) type slots, maintained incrementally
    /// so `type_count` is O(1) on the checking hot paths.
    live_types: usize,
    /// Monotonic mutation counter; bumped by every mutating method. Query
    /// caches key their entries on it and invalidate wholesale when it moves.
    generation: u64,
    journal: Option<UndoPatch>,
}

impl SchemaGraph {
    /// Create an empty graph with the given schema name.
    pub fn new(name: impl Into<String>) -> Self {
        SchemaGraph {
            name: name.into(),
            types: Vec::new(),
            attrs: Vec::new(),
            rels: Vec::new(),
            ops: Vec::new(),
            links: Vec::new(),
            by_name: HashMap::new(),
            live_types: 0,
            generation: 0,
            journal: None,
        }
    }

    /// The schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current mutation generation. Every mutating method bumps this,
    /// so equal generations on the *same* graph value imply identical
    /// structure (a clone starts at the parent's generation but diverges
    /// independently — never share one cache across two graphs).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn bump(&mut self) {
        self.generation += 1;
    }

    // ------------------------------------------------------------------
    // Undo journal
    // ------------------------------------------------------------------

    /// Start recording inverse mutations. Every subsequent mutator call logs
    /// first-touch before-images until [`Self::commit_undo`] or
    /// [`Self::rollback_undo`]. Journals do not nest.
    pub fn begin_undo(&mut self) {
        debug_assert!(
            self.journal.is_none(),
            "nested undo journals are not supported"
        );
        self.journal = Some(UndoPatch {
            base_types: self.types.len(),
            base_attrs: self.attrs.len(),
            base_rels: self.rels.len(),
            base_ops: self.ops.len(),
            base_links: self.links.len(),
            ..UndoPatch::default()
        });
    }

    /// Stop recording and return the patch that reverts everything mutated
    /// since [`Self::begin_undo`]. The mutations themselves are kept.
    pub fn commit_undo(&mut self) -> UndoPatch {
        self.journal.take().expect("commit_undo without begin_undo")
    }

    /// Abort the journal: revert every mutation made since
    /// [`Self::begin_undo`] and stop recording.
    pub fn rollback_undo(&mut self) {
        let patch = self
            .journal
            .take()
            .expect("rollback_undo without begin_undo");
        self.revert(&patch);
    }

    /// Apply a committed [`UndoPatch`], reverting the graph to the state it
    /// had at the matching `begin_undo`. Patches must be reverted in strict
    /// reverse order of the mutations they journal.
    pub fn revert(&mut self, patch: &UndoPatch) {
        debug_assert!(self.journal.is_none(), "revert during an active journal");
        // Slots created after begin_undo are at the arena tails: drop them.
        self.types.truncate(patch.base_types);
        self.attrs.truncate(patch.base_attrs);
        self.rels.truncate(patch.base_rels);
        self.ops.truncate(patch.base_ops);
        self.links.truncate(patch.base_links);
        // Restore before-images (all indices are below the base lengths).
        for (i, node) in &patch.types {
            self.types[*i] = node.clone();
        }
        for (i, node) in &patch.attrs {
            self.attrs[*i] = node.clone();
        }
        for (i, node) in &patch.rels {
            self.rels[*i] = node.clone();
        }
        for (i, node) in &patch.ops {
            self.ops[*i] = node.clone();
        }
        for (i, node) in &patch.links {
            self.links[*i] = node.clone();
        }
        for (name, prev) in &patch.by_name {
            match prev {
                Some(id) => {
                    self.by_name.insert(*name, *id);
                }
                None => {
                    self.by_name.remove(name);
                }
            }
        }
        // The truncation/restore above can both revive and re-kill slots;
        // recount rather than track each transition.
        self.live_types = self.types.iter().filter(|n| n.alive).count();
        self.bump();
    }

    fn touch_type(&mut self, id: TypeId) {
        if let Some(j) = &mut self.journal {
            let i = id.index();
            if i < j.base_types && !j.types.iter().any(|(k, _)| *k == i) {
                j.types.push((i, self.types[i].clone()));
            }
        }
    }

    fn touch_attr(&mut self, id: AttrId) {
        if let Some(j) = &mut self.journal {
            let i = id.index();
            if i < j.base_attrs && !j.attrs.iter().any(|(k, _)| *k == i) {
                j.attrs.push((i, self.attrs[i].clone()));
            }
        }
    }

    fn touch_rel(&mut self, id: RelId) {
        if let Some(j) = &mut self.journal {
            let i = id.index();
            if i < j.base_rels && !j.rels.iter().any(|(k, _)| *k == i) {
                j.rels.push((i, self.rels[i].clone()));
            }
        }
    }

    fn touch_op(&mut self, id: OpId) {
        if let Some(j) = &mut self.journal {
            let i = id.index();
            if i < j.base_ops && !j.ops.iter().any(|(k, _)| *k == i) {
                j.ops.push((i, self.ops[i].clone()));
            }
        }
    }

    fn touch_link(&mut self, id: LinkId) {
        if let Some(j) = &mut self.journal {
            let i = id.index();
            if i < j.base_links && !j.links.iter().any(|(k, _)| *k == i) {
                j.links.push((i, self.links[i].clone()));
            }
        }
    }

    fn touch_name(&mut self, name: Symbol) {
        if let Some(j) = &mut self.journal {
            if !j.by_name.iter().any(|(n, _)| *n == name) {
                let prev = self.by_name.get(&name).copied();
                j.by_name.push((name, prev));
            }
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The type node for `id`. Panics if `id` is dead (use [`Self::try_ty`]
    /// when the ID may be stale).
    pub fn ty(&self, id: TypeId) -> &TypeNode {
        let node = &self.types[id.index()];
        assert!(node.alive, "access to dead type {id}");
        node
    }

    /// The type node for `id`, or `None` if dead.
    pub fn try_ty(&self, id: TypeId) -> Option<&TypeNode> {
        self.types.get(id.index()).filter(|n| n.alive)
    }

    /// Look up a live type by name. A name the interner has never seen
    /// cannot be in `by_name`, so the miss path is one read-locked hash
    /// probe with no allocation.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        let sym = Symbol::try_lookup(name)?;
        self.by_name.get(&sym).copied()
    }

    /// Look up a live type by interned name (the hot-path form: one `u32`
    /// hash probe, no interner access).
    pub fn type_id_sym(&self, name: Symbol) -> Option<TypeId> {
        self.by_name.get(&name).copied()
    }

    /// Look up a live type by name, erroring otherwise.
    pub fn require_type(&self, name: &str) -> Result<TypeId, ModelError> {
        self.type_id(name)
            .ok_or_else(|| ModelError::UnknownTypeName(name.to_string()))
    }

    /// The name of type `id` (panics if dead).
    pub fn type_name(&self, id: TypeId) -> &'static str {
        self.ty(id).name.as_str()
    }

    /// Iterate over live types in insertion order.
    pub fn types(&self) -> impl Iterator<Item = (TypeId, &TypeNode)> {
        self.types
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| (TypeId(i as u32), n))
    }

    /// Number of live types. O(1): maintained by the mutators.
    pub fn type_count(&self) -> usize {
        self.live_types
    }

    /// Total type arena slots, live and tombstoned. Traversal scratch
    /// (visited epochs, closure buffers) sizes itself to this.
    pub fn type_slots(&self) -> usize {
        self.types.len()
    }

    /// Total link arena slots, live and tombstoned.
    pub fn link_slots(&self) -> usize {
        self.links.len()
    }

    /// The attribute node for `id` (panics if dead).
    pub fn attr(&self, id: AttrId) -> &AttrNode {
        let node = &self.attrs[id.index()];
        assert!(node.alive, "access to dead attribute {id}");
        node
    }

    /// The attribute node for `id`, or `None` if dead.
    pub fn try_attr(&self, id: AttrId) -> Option<&AttrNode> {
        self.attrs.get(id.index()).filter(|n| n.alive)
    }

    /// The relationship node for `id` (panics if dead).
    pub fn rel(&self, id: RelId) -> &RelNode {
        let node = &self.rels[id.index()];
        assert!(node.alive, "access to dead relationship {id}");
        node
    }

    /// The relationship node for `id`, or `None` if dead.
    pub fn try_rel(&self, id: RelId) -> Option<&RelNode> {
        self.rels.get(id.index()).filter(|n| n.alive)
    }

    /// The operation node for `id` (panics if dead).
    pub fn op(&self, id: OpId) -> &OpNode {
        let node = &self.ops[id.index()];
        assert!(node.alive, "access to dead operation {id}");
        node
    }

    /// The operation node for `id`, or `None` if dead.
    pub fn try_op(&self, id: OpId) -> Option<&OpNode> {
        self.ops.get(id.index()).filter(|n| n.alive)
    }

    /// The link node for `id` (panics if dead).
    pub fn link(&self, id: LinkId) -> &LinkNode {
        let node = &self.links[id.index()];
        assert!(node.alive, "access to dead link {id}");
        node
    }

    /// The link node for `id`, or `None` if dead.
    pub fn try_link(&self, id: LinkId) -> Option<&LinkNode> {
        self.links.get(id.index()).filter(|n| n.alive)
    }

    /// Find an attribute by owner and name.
    pub fn find_attr(&self, owner: TypeId, name: &str) -> Option<AttrId> {
        self.ty(owner)
            .attrs
            .iter()
            .copied()
            .find(|&a| self.attr(a).name == name)
    }

    /// Find a relationship end by owner and traversal path name.
    pub fn find_rel_end(&self, owner: TypeId, path: &str) -> Option<(RelId, u8)> {
        self.ty(owner)
            .rel_ends
            .iter()
            .copied()
            .find(|&(r, e)| self.rel(r).end(e).path == path)
    }

    /// Find an operation by owner and name.
    pub fn find_op(&self, owner: TypeId, name: &str) -> Option<OpId> {
        self.ty(owner)
            .ops
            .iter()
            .copied()
            .find(|&o| self.op(o).name == name)
    }

    /// Find a hierarchy link of `kind` by owner and traversal path name,
    /// reporting which side of the link the path belongs to.
    pub fn find_link(
        &self,
        kind: HierKind,
        owner: TypeId,
        path: &str,
    ) -> Option<(LinkId, LinkSide)> {
        let node = self.ty(owner);
        for &l in &node.parent_links {
            let link = self.link(l);
            if link.kind == kind && link.parent_path == path {
                return Some((l, LinkSide::Parent));
            }
        }
        for &l in &node.child_links {
            let link = self.link(l);
            if link.kind == kind && link.child_path == path {
                return Some((l, LinkSide::Child));
            }
        }
        None
    }

    /// True if `name` is already used by any member of `owner` (attribute,
    /// relationship path, operation, or hierarchy-link path).
    pub fn member_exists(&self, owner: TypeId, name: &str) -> bool {
        self.find_attr(owner, name).is_some()
            || self.find_rel_end(owner, name).is_some()
            || self.find_op(owner, name).is_some()
            || self.find_link(HierKind::PartOf, owner, name).is_some()
            || self.find_link(HierKind::InstanceOf, owner, name).is_some()
    }

    fn check_member_free(&self, owner: TypeId, name: &str) -> Result<(), ModelError> {
        if self.member_exists(owner, name) {
            Err(ModelError::DuplicateMember {
                owner,
                member: name.to_string(),
            })
        } else {
            Ok(())
        }
    }

    /// Iterate over live relationships.
    pub fn rels(&self) -> impl Iterator<Item = (RelId, &RelNode)> {
        self.rels
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| (RelId(i as u32), n))
    }

    /// Iterate over live links.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &LinkNode)> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| (LinkId(i as u32), n))
    }

    /// Iterate over live attributes.
    pub fn attrs(&self) -> impl Iterator<Item = (AttrId, &AttrNode)> {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| (AttrId(i as u32), n))
    }

    /// Iterate over live operations.
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &OpNode)> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| (OpId(i as u32), n))
    }

    /// Total count of live constructs (types + supertype edges + attributes
    /// + relationships + operations + links).
    pub fn construct_count(&self) -> usize {
        let supertype_edges: usize = self.types().map(|(_, n)| n.supertypes.len()).sum();
        self.type_count()
            + supertype_edges
            + self.attrs().count()
            + self.rels().count()
            + self.ops().count()
            + self.links().count()
    }

    // ------------------------------------------------------------------
    // Type mutators
    // ------------------------------------------------------------------

    /// Add a new object type.
    pub fn add_type(&mut self, name: &str) -> Result<TypeId, ModelError> {
        let sym = Symbol::intern(name);
        if self.by_name.contains_key(&sym) {
            return Err(ModelError::DuplicateTypeName(name.to_string()));
        }
        self.bump();
        self.touch_name(sym);
        let id = TypeId(self.types.len() as u32);
        self.types.push(TypeNode {
            name: sym,
            is_abstract: false,
            extent: None,
            keys: Vec::new(),
            supertypes: Vec::new(),
            subtypes: Vec::new(),
            attrs: Vec::new(),
            rel_ends: Vec::new(),
            ops: Vec::new(),
            parent_links: Vec::new(),
            child_links: Vec::new(),
            alive: true,
        });
        self.by_name.insert(sym, id);
        self.live_types += 1;
        Ok(id)
    }

    /// Mark a type abstract (or concrete).
    pub fn set_abstract(&mut self, id: TypeId, is_abstract: bool) -> Result<(), ModelError> {
        self.check_live(id)?;
        self.bump();
        self.touch_type(id);
        self.type_mut(id)?.is_abstract = is_abstract;
        Ok(())
    }

    /// Set or clear the extent name of a type.
    pub fn set_extent(&mut self, id: TypeId, extent: Option<String>) -> Result<(), ModelError> {
        let extent_sym = extent.as_deref().map(Symbol::intern);
        if let Some(sym) = extent_sym {
            let clash = self
                .types()
                .any(|(other, node)| other != id && node.extent == Some(sym));
            if clash {
                return Err(ModelError::DuplicateExtent(sym.to_string()));
            }
        }
        self.check_live(id)?;
        self.bump();
        self.touch_type(id);
        self.type_mut(id)?.extent = extent_sym;
        Ok(())
    }

    /// Add a key to a type's key list.
    pub fn add_key(&mut self, id: TypeId, key: Key) -> Result<(), ModelError> {
        let skey = SymKey::from_key(&key);
        if self.ty(id).keys.contains(&skey) {
            return Err(ModelError::DuplicateKey {
                owner: id,
                key: key.to_string(),
            });
        }
        self.check_live(id)?;
        self.bump();
        self.touch_type(id);
        self.type_mut(id)?.keys.push(skey);
        Ok(())
    }

    /// Remove a key from a type's key list.
    pub fn remove_key(&mut self, id: TypeId, key: &Key) -> Result<(), ModelError> {
        self.check_live(id)?;
        if !self.ty(id).keys.iter().any(|k| k == key) {
            return Err(ModelError::NoSuchKey {
                owner: id,
                key: key.to_string(),
            });
        }
        self.bump();
        self.touch_type(id);
        self.type_mut(id)?.keys.retain(|k| k != key);
        Ok(())
    }

    /// Remove a type and everything incident to it. See [`RemoveTypeMode`]
    /// for subtype handling.
    pub fn remove_type(
        &mut self,
        id: TypeId,
        mode: RemoveTypeMode,
    ) -> Result<CascadeReport, ModelError> {
        self.check_live(id)?;
        self.bump();
        let mut report = CascadeReport::default();
        let name = self.ty(id).name;

        // Relationships with an end here.
        let incident_rels: Vec<RelId> = self
            .rels()
            .filter(|(_, r)| r.ends[0].owner == id || r.ends[1].owner == id)
            .map(|(rid, _)| rid)
            .collect();
        for rid in incident_rels {
            report.merge(self.remove_relationship(rid)?);
        }

        // Hierarchy links touching this type.
        let incident_links: Vec<LinkId> = self
            .links()
            .filter(|(_, l)| l.parent == id || l.child == id)
            .map(|(lid, _)| lid)
            .collect();
        for lid in incident_links {
            report.merge(self.remove_link(lid)?);
        }

        // Members.
        for a in self.ty(id).attrs.clone() {
            let attr = self.attr(a);
            report.removed_attrs.push((name, attr.name));
            self.touch_attr(a);
            self.attrs[a.index()].alive = false;
        }
        for o in self.ty(id).ops.clone() {
            let op = self.op(o);
            report.removed_ops.push((name, op.name));
            self.touch_op(o);
            self.ops[o.index()].alive = false;
        }

        // Supertype edges up.
        let supers = self.ty(id).supertypes.clone();
        for sup in &supers {
            let sup_name = self.ty(*sup).name;
            report.removed_supertype_edges.push((name, sup_name));
            self.touch_type(*sup);
            self.types[sup.index()].subtypes.retain(|&s| s != id);
        }

        // Subtype edges down: rewire or detach.
        let subs = self.ty(id).subtypes.clone();
        for sub in subs {
            let sub_name = self.ty(sub).name;
            report.removed_supertype_edges.push((sub_name, name));
            self.touch_type(sub);
            self.types[sub.index()].supertypes.retain(|&s| s != id);
            match mode {
                RemoveTypeMode::RewireSubtypes => {
                    let mut rewired = false;
                    for sup in &supers {
                        if !self.types[sub.index()].supertypes.contains(sup) {
                            self.types[sub.index()].supertypes.push(*sup);
                            self.types[sup.index()].subtypes.push(sub);
                            report.rewired_subtypes.push((sub_name, self.ty(*sup).name));
                            rewired = true;
                        }
                    }
                    if !rewired && supers.is_empty() {
                        report.detached_subtypes.push(sub_name);
                    }
                }
                RemoveTypeMode::DetachSubtypes => {
                    report.detached_subtypes.push(sub_name);
                }
            }
        }

        self.touch_type(id);
        self.touch_name(name);
        let node = &mut self.types[id.index()];
        node.alive = false;
        node.attrs.clear();
        node.ops.clear();
        node.rel_ends.clear();
        node.parent_links.clear();
        node.child_links.clear();
        node.supertypes.clear();
        node.subtypes.clear();
        self.by_name.remove(&name);
        self.live_types -= 1;
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Supertype mutators
    // ------------------------------------------------------------------

    /// Add a supertype edge `sub ISA sup`.
    pub fn add_supertype(&mut self, sub: TypeId, sup: TypeId) -> Result<(), ModelError> {
        self.check_live(sub)?;
        self.check_live(sup)?;
        if sub == sup {
            return Err(ModelError::SelfReference(sub));
        }
        if self.ty(sub).supertypes.contains(&sup) {
            return Err(ModelError::DuplicateSupertype { sub, sup });
        }
        if self.gen_reachable(sub, sup) {
            // `sub` is already an ancestor of `sup`: adding the edge closes a cycle.
            return Err(ModelError::SupertypeCycle { sub, sup });
        }
        self.bump();
        self.touch_type(sub);
        self.touch_type(sup);
        self.types[sub.index()].supertypes.push(sup);
        self.types[sup.index()].subtypes.push(sub);
        Ok(())
    }

    /// Remove the supertype edge `sub ISA sup`.
    pub fn remove_supertype(&mut self, sub: TypeId, sup: TypeId) -> Result<(), ModelError> {
        self.check_live(sub)?;
        self.check_live(sup)?;
        if !self.ty(sub).supertypes.contains(&sup) {
            return Err(ModelError::NoSuchSupertype { sub, sup });
        }
        self.bump();
        self.touch_type(sub);
        self.touch_type(sup);
        self.types[sub.index()].supertypes.retain(|&s| s != sup);
        self.types[sup.index()].subtypes.retain(|&s| s != sub);
        Ok(())
    }

    /// True if `ancestor` is reachable from `start` via supertype edges
    /// (excluding `start` itself unless a cycle exists).
    pub(crate) fn gen_reachable(&self, ancestor: TypeId, start: TypeId) -> bool {
        let mut stack = vec![start];
        let mut seen = vec![false; self.types.len()];
        while let Some(t) = stack.pop() {
            if seen[t.index()] {
                continue;
            }
            seen[t.index()] = true;
            for &sup in &self.ty(t).supertypes {
                if sup == ancestor {
                    return true;
                }
                stack.push(sup);
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Attribute mutators
    // ------------------------------------------------------------------

    /// Add an attribute.
    pub fn add_attribute(
        &mut self,
        owner: TypeId,
        name: &str,
        ty: DomainType,
        size: Option<u32>,
    ) -> Result<AttrId, ModelError> {
        self.check_live(owner)?;
        self.check_member_free(owner, name)?;
        self.bump();
        self.touch_type(owner);
        let id = AttrId(self.attrs.len() as u32);
        self.attrs.push(AttrNode {
            owner,
            name: Symbol::intern(name),
            ty,
            size,
            alive: true,
        });
        self.types[owner.index()].attrs.push(id);
        Ok(id)
    }

    /// Remove an attribute, pruning keys and order-by lists that name it.
    pub fn remove_attribute(&mut self, id: AttrId) -> Result<CascadeReport, ModelError> {
        let node = self
            .attrs
            .get(id.index())
            .filter(|n| n.alive)
            .ok_or(ModelError::DeadAttr(id))?;
        let owner = node.owner;
        let name = node.name;
        self.bump();
        let mut report = CascadeReport::default();
        self.prune_attr_references(owner, name, &mut report);
        self.touch_attr(id);
        self.touch_type(owner);
        self.attrs[id.index()].alive = false;
        self.types[owner.index()].attrs.retain(|&a| a != id);
        Ok(report)
    }

    /// Move an attribute to a different owner (used by the generalization-
    /// hierarchy `modify_attribute` operation). Keys and order-by lists that
    /// referenced the attribute on the old owner are pruned and reported.
    pub fn move_attribute(
        &mut self,
        id: AttrId,
        new_owner: TypeId,
    ) -> Result<CascadeReport, ModelError> {
        let node = self
            .attrs
            .get(id.index())
            .filter(|n| n.alive)
            .ok_or(ModelError::DeadAttr(id))?;
        let old_owner = node.owner;
        let name = node.name;
        self.check_live(new_owner)?;
        if old_owner == new_owner {
            return Ok(CascadeReport::default());
        }
        self.check_member_free(new_owner, name.as_str())?;
        self.bump();
        let mut report = CascadeReport::default();
        self.prune_attr_references(old_owner, name, &mut report);
        self.touch_type(old_owner);
        self.touch_type(new_owner);
        self.touch_attr(id);
        self.types[old_owner.index()].attrs.retain(|&a| a != id);
        self.types[new_owner.index()].attrs.push(id);
        self.attrs[id.index()].owner = new_owner;
        Ok(report)
    }

    /// Change an attribute's domain type.
    pub fn set_attr_type(&mut self, id: AttrId, ty: DomainType) -> Result<(), ModelError> {
        if self.try_attr(id).is_none() {
            return Err(ModelError::DeadAttr(id));
        }
        self.bump();
        self.touch_attr(id);
        self.attrs[id.index()].ty = ty;
        Ok(())
    }

    /// Change an attribute's size constraint.
    pub fn set_attr_size(&mut self, id: AttrId, size: Option<u32>) -> Result<(), ModelError> {
        if self.try_attr(id).is_none() {
            return Err(ModelError::DeadAttr(id));
        }
        self.bump();
        self.touch_attr(id);
        self.attrs[id.index()].size = size;
        Ok(())
    }

    /// Remove references to attribute `name` of type `owner` from keys of
    /// `owner` and from order-by lists whose target type is `owner`.
    fn prune_attr_references(&mut self, owner: TypeId, name: Symbol, report: &mut CascadeReport) {
        let owner_name = self.ty(owner).name;
        // Keys of the owner.
        self.touch_type(owner);
        let node = &mut self.types[owner.index()];
        let mut pruned_keys = Vec::new();
        node.keys.retain(|k| {
            if k.0.contains(&name) {
                pruned_keys.push(k.to_string());
                false
            } else {
                true
            }
        });
        for k in pruned_keys {
            report.keys_pruned.push((owner_name, k));
        }
        // Order-by lists of relationship ends whose *target* is `owner`,
        // i.e. ends opposite to ends owned by `owner`.
        for r in 0..self.rels.len() {
            if !self.rels[r].alive {
                continue;
            }
            for e in 0..2 {
                if self.rels[r].ends[1 - e].owner == owner
                    && self.rels[r].ends[e].order_by.contains(&name)
                {
                    let end_owner = self.ty(self.rels[r].ends[e].owner).name;
                    let path = self.rels[r].ends[e].path;
                    self.touch_rel(RelId(r as u32));
                    self.rels[r].ends[e].order_by.retain(|&a| a != name);
                    report.order_by_pruned.push((end_owner, path, name));
                }
            }
        }
        // Order-by lists of links whose child type is `owner`.
        for l in 0..self.links.len() {
            if !self.links[l].alive {
                continue;
            }
            if self.links[l].child == owner && self.links[l].order_by.contains(&name) {
                let parent_name = self.ty(self.links[l].parent).name;
                let path = self.links[l].parent_path;
                self.touch_link(LinkId(l as u32));
                self.links[l].order_by.retain(|&a| a != name);
                report.order_by_pruned.push((parent_name, path, name));
            }
        }
    }

    // ------------------------------------------------------------------
    // Relationship mutators
    // ------------------------------------------------------------------

    /// Add a relationship between `a_owner` and `b_owner`. Both traversal
    /// paths must be free member names on their owners.
    #[allow(clippy::too_many_arguments)]
    pub fn add_relationship(
        &mut self,
        a_owner: TypeId,
        a_path: &str,
        a_cardinality: Cardinality,
        a_order_by: Vec<String>,
        b_owner: TypeId,
        b_path: &str,
        b_cardinality: Cardinality,
        b_order_by: Vec<String>,
    ) -> Result<RelId, ModelError> {
        self.check_live(a_owner)?;
        self.check_live(b_owner)?;
        self.check_member_free(a_owner, a_path)?;
        if a_owner == b_owner && a_path == b_path {
            return Err(ModelError::DuplicateMember {
                owner: b_owner,
                member: b_path.to_string(),
            });
        }
        self.check_member_free(b_owner, b_path)?;
        self.bump();
        self.touch_type(a_owner);
        self.touch_type(b_owner);
        let id = RelId(self.rels.len() as u32);
        self.rels.push(RelNode {
            ends: [
                RelEnd {
                    owner: a_owner,
                    path: Symbol::intern(a_path),
                    cardinality: a_cardinality,
                    order_by: a_order_by.iter().map(|s| Symbol::intern(s)).collect(),
                },
                RelEnd {
                    owner: b_owner,
                    path: Symbol::intern(b_path),
                    cardinality: b_cardinality,
                    order_by: b_order_by.iter().map(|s| Symbol::intern(s)).collect(),
                },
            ],
            alive: true,
        });
        self.types[a_owner.index()].rel_ends.push((id, 0));
        self.types[b_owner.index()].rel_ends.push((id, 1));
        Ok(id)
    }

    /// Remove a relationship (both ends).
    pub fn remove_relationship(&mut self, id: RelId) -> Result<CascadeReport, ModelError> {
        let node = self
            .rels
            .get(id.index())
            .filter(|n| n.alive)
            .ok_or(ModelError::DeadRel(id))?;
        let a = node.ends[0].clone();
        let b = node.ends[1].clone();
        self.bump();
        let mut report = CascadeReport::default();
        report
            .removed_rels
            .push((self.ty(a.owner).name, a.path, self.ty(b.owner).name, b.path));
        self.touch_rel(id);
        self.touch_type(a.owner);
        self.touch_type(b.owner);
        self.types[a.owner.index()]
            .rel_ends
            .retain(|&(r, _)| r != id);
        self.types[b.owner.index()]
            .rel_ends
            .retain(|&(r, _)| r != id);
        self.rels[id.index()].alive = false;
        Ok(report)
    }

    /// Move one end of a relationship to a new owning type (the
    /// `modify_relationship_target_type` operation: the end defined on one
    /// object type moves up or down its generalization hierarchy).
    pub fn retarget_rel_end(
        &mut self,
        id: RelId,
        end: u8,
        new_owner: TypeId,
    ) -> Result<(), ModelError> {
        let node = self
            .rels
            .get(id.index())
            .filter(|n| n.alive)
            .ok_or(ModelError::DeadRel(id))?;
        let path = node.ends[end as usize].path;
        let old_owner = node.ends[end as usize].owner;
        self.check_live(new_owner)?;
        if old_owner == new_owner {
            return Ok(());
        }
        self.check_member_free(new_owner, path.as_str())?;
        self.bump();
        self.touch_type(old_owner);
        self.touch_type(new_owner);
        self.touch_rel(id);
        self.types[old_owner.index()]
            .rel_ends
            .retain(|&(r, e)| !(r == id && e == end));
        self.types[new_owner.index()].rel_ends.push((id, end));
        self.rels[id.index()].ends[end as usize].owner = new_owner;
        Ok(())
    }

    /// Change the one-way cardinality of a relationship end.
    pub fn set_rel_cardinality(
        &mut self,
        id: RelId,
        end: u8,
        cardinality: Cardinality,
    ) -> Result<(), ModelError> {
        if self.try_rel(id).is_none() {
            return Err(ModelError::DeadRel(id));
        }
        self.bump();
        self.touch_rel(id);
        self.rels[id.index()].ends[end as usize].cardinality = cardinality;
        Ok(())
    }

    /// Replace the order-by list of a relationship end.
    pub fn set_rel_order_by(
        &mut self,
        id: RelId,
        end: u8,
        order_by: Vec<String>,
    ) -> Result<(), ModelError> {
        if self.try_rel(id).is_none() {
            return Err(ModelError::DeadRel(id));
        }
        self.bump();
        self.touch_rel(id);
        self.rels[id.index()].ends[end as usize].order_by =
            order_by.iter().map(|s| Symbol::intern(s)).collect();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Operation mutators
    // ------------------------------------------------------------------

    /// Add an operation. Operation names may override same-named operations
    /// of ancestors, but must be unique among the owner's own members.
    pub fn add_operation(&mut self, owner: TypeId, op: Operation) -> Result<OpId, ModelError> {
        self.check_live(owner)?;
        self.check_member_free(owner, &op.name)?;
        self.bump();
        self.touch_type(owner);
        let id = OpId(self.ops.len() as u32);
        let name = Symbol::intern(&op.name);
        self.ops.push(OpNode {
            owner,
            name,
            op,
            alive: true,
        });
        self.types[owner.index()].ops.push(id);
        Ok(id)
    }

    /// Remove an operation.
    pub fn remove_operation(&mut self, id: OpId) -> Result<CascadeReport, ModelError> {
        let node = self
            .ops
            .get(id.index())
            .filter(|n| n.alive)
            .ok_or(ModelError::DeadOp(id))?;
        let owner = node.owner;
        let op_name = node.name;
        self.bump();
        let mut report = CascadeReport::default();
        report.removed_ops.push((self.ty(owner).name, op_name));
        self.touch_type(owner);
        self.touch_op(id);
        self.types[owner.index()].ops.retain(|&o| o != id);
        self.ops[id.index()].alive = false;
        Ok(report)
    }

    /// Move an operation to a new owner (generalization-hierarchy
    /// `modify_operation`).
    pub fn move_operation(&mut self, id: OpId, new_owner: TypeId) -> Result<(), ModelError> {
        let node = self
            .ops
            .get(id.index())
            .filter(|n| n.alive)
            .ok_or(ModelError::DeadOp(id))?;
        let old_owner = node.owner;
        let name = node.name;
        self.check_live(new_owner)?;
        if old_owner == new_owner {
            return Ok(());
        }
        self.check_member_free(new_owner, name.as_str())?;
        self.bump();
        self.touch_type(old_owner);
        self.touch_type(new_owner);
        self.touch_op(id);
        self.types[old_owner.index()].ops.retain(|&o| o != id);
        self.types[new_owner.index()].ops.push(id);
        self.ops[id.index()].owner = new_owner;
        Ok(())
    }

    /// Change an operation's return type.
    pub fn set_op_return(&mut self, id: OpId, return_type: DomainType) -> Result<(), ModelError> {
        if self.try_op(id).is_none() {
            return Err(ModelError::DeadOp(id));
        }
        self.bump();
        self.touch_op(id);
        self.ops[id.index()].op.return_type = return_type;
        Ok(())
    }

    /// Replace an operation's argument list.
    pub fn set_op_args(&mut self, id: OpId, args: Vec<Param>) -> Result<(), ModelError> {
        if self.try_op(id).is_none() {
            return Err(ModelError::DeadOp(id));
        }
        self.bump();
        self.touch_op(id);
        self.ops[id.index()].op.args = args;
        Ok(())
    }

    /// Replace an operation's raised-exception list.
    pub fn set_op_raises(&mut self, id: OpId, raises: Vec<String>) -> Result<(), ModelError> {
        if self.try_op(id).is_none() {
            return Err(ModelError::DeadOp(id));
        }
        self.bump();
        self.touch_op(id);
        self.ops[id.index()].op.raises = raises;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Hierarchy-link mutators (part-of, instance-of)
    // ------------------------------------------------------------------

    /// Add a part-of or instance-of link. The parent (whole / generic) side
    /// is collection-valued; the child side single-valued (implicit 1:N).
    #[allow(clippy::too_many_arguments)]
    pub fn add_link(
        &mut self,
        kind: HierKind,
        parent: TypeId,
        parent_path: &str,
        collection: CollectionKind,
        order_by: Vec<String>,
        child: TypeId,
        child_path: &str,
    ) -> Result<LinkId, ModelError> {
        self.check_live(parent)?;
        self.check_live(child)?;
        if parent == child {
            return Err(ModelError::SelfReference(parent));
        }
        if self.hier_reachable(kind, child, parent) {
            // `child` is already above `parent`: the new edge closes a cycle.
            return Err(ModelError::HierarchyCycle { parent, child });
        }
        self.check_member_free(parent, parent_path)?;
        self.check_member_free(child, child_path)?;
        self.bump();
        self.touch_type(parent);
        self.touch_type(child);
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkNode {
            kind,
            parent,
            parent_path: Symbol::intern(parent_path),
            collection,
            order_by: order_by.iter().map(|s| Symbol::intern(s)).collect(),
            child,
            child_path: Symbol::intern(child_path),
            alive: true,
        });
        self.types[parent.index()].parent_links.push(id);
        self.types[child.index()].child_links.push(id);
        Ok(id)
    }

    /// True if `above` is reachable upward from `start` (child → parent)
    /// in the `kind` hierarchy, or equal to it.
    pub(crate) fn hier_reachable(&self, kind: HierKind, above: TypeId, start: TypeId) -> bool {
        if above == start {
            return true;
        }
        let mut stack = vec![start];
        let mut seen = vec![false; self.types.len()];
        while let Some(t) = stack.pop() {
            if seen[t.index()] {
                continue;
            }
            seen[t.index()] = true;
            for &l in &self.ty(t).child_links {
                let link = self.link(l);
                if link.kind != kind {
                    continue;
                }
                if link.parent == above {
                    return true;
                }
                stack.push(link.parent);
            }
        }
        false
    }

    /// Remove a hierarchy link (both ends).
    pub fn remove_link(&mut self, id: LinkId) -> Result<CascadeReport, ModelError> {
        let node = self
            .links
            .get(id.index())
            .filter(|n| n.alive)
            .ok_or(ModelError::DeadLink(id))?;
        let (kind, parent, child) = (node.kind, node.parent, node.child);
        let (ppath, cpath) = (node.parent_path, node.child_path);
        self.bump();
        let mut report = CascadeReport::default();
        report.removed_links.push((
            kind,
            self.ty(parent).name,
            ppath,
            self.ty(child).name,
            cpath,
        ));
        self.touch_link(id);
        self.touch_type(parent);
        self.touch_type(child);
        self.types[parent.index()].parent_links.retain(|&l| l != id);
        self.types[child.index()].child_links.retain(|&l| l != id);
        self.links[id.index()].alive = false;
        Ok(report)
    }

    /// Move one side of a hierarchy link to a new type (the
    /// `modify_part_of_target_type` / `modify_instance_of_target_type`
    /// operations).
    pub fn retarget_link_end(
        &mut self,
        id: LinkId,
        side: LinkSide,
        new_type: TypeId,
    ) -> Result<(), ModelError> {
        let node = self
            .links
            .get(id.index())
            .filter(|n| n.alive)
            .ok_or(ModelError::DeadLink(id))?;
        let kind = node.kind;
        let (old_type, path, other_type) = match side {
            LinkSide::Parent => (node.parent, node.parent_path, node.child),
            LinkSide::Child => (node.child, node.child_path, node.parent),
        };
        self.check_live(new_type)?;
        if old_type == new_type {
            return Ok(());
        }
        if new_type == other_type {
            return Err(ModelError::SelfReference(new_type));
        }
        self.check_member_free(new_type, path.as_str())?;
        // Cycle check with the link itself ignored: the move creates the
        // edge (p → c); it closes a cycle iff c is already an ancestor of p.
        let (p, c) = match side {
            LinkSide::Parent => (new_type, other_type),
            LinkSide::Child => (other_type, new_type),
        };
        if self.hier_reachable_excluding(kind, id, c, p) {
            return Err(ModelError::HierarchyCycle {
                parent: p,
                child: c,
            });
        }
        self.bump();
        self.touch_type(old_type);
        self.touch_type(new_type);
        self.touch_link(id);
        match side {
            LinkSide::Parent => {
                self.types[old_type.index()]
                    .parent_links
                    .retain(|&l| l != id);
                self.types[new_type.index()].parent_links.push(id);
                self.links[id.index()].parent = new_type;
            }
            LinkSide::Child => {
                self.types[old_type.index()]
                    .child_links
                    .retain(|&l| l != id);
                self.types[new_type.index()].child_links.push(id);
                self.links[id.index()].child = new_type;
            }
        }
        Ok(())
    }

    /// Like [`Self::hier_reachable`], ignoring link `skip`.
    fn hier_reachable_excluding(
        &self,
        kind: HierKind,
        skip: LinkId,
        above: TypeId,
        start: TypeId,
    ) -> bool {
        if above == start {
            return true;
        }
        let mut stack = vec![start];
        let mut seen = vec![false; self.types.len()];
        while let Some(t) = stack.pop() {
            if seen[t.index()] {
                continue;
            }
            seen[t.index()] = true;
            for &l in &self.ty(t).child_links {
                if l == skip {
                    continue;
                }
                let link = self.link(l);
                if link.kind != kind {
                    continue;
                }
                if link.parent == above {
                    return true;
                }
                stack.push(link.parent);
            }
        }
        false
    }

    /// Change the collection kind of a link's parent side (the grammar
    /// allows cardinality modification only on the to-parts /
    /// to-instance-entities end).
    pub fn set_link_collection(
        &mut self,
        id: LinkId,
        collection: CollectionKind,
    ) -> Result<(), ModelError> {
        if self.try_link(id).is_none() {
            return Err(ModelError::DeadLink(id));
        }
        self.bump();
        self.touch_link(id);
        self.links[id.index()].collection = collection;
        Ok(())
    }

    /// Replace the order-by list of a link's parent side.
    pub fn set_link_order_by(
        &mut self,
        id: LinkId,
        order_by: Vec<String>,
    ) -> Result<(), ModelError> {
        if self.try_link(id).is_none() {
            return Err(ModelError::DeadLink(id));
        }
        self.bump();
        self.touch_link(id);
        self.links[id.index()].order_by = order_by.iter().map(|s| Symbol::intern(s)).collect();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Test-only malformation helpers
    // ------------------------------------------------------------------

    /// Force a supertype edge WITHOUT the cycle check, producing a malformed
    /// graph. Used by tests that exercise traversal guards on cyclic input
    /// (mid-edit states can be arbitrarily ill-formed).
    #[cfg(test)]
    pub(crate) fn force_supertype_edge(&mut self, sub: TypeId, sup: TypeId) {
        self.bump();
        self.touch_type(sub);
        self.touch_type(sup);
        self.types[sub.index()].supertypes.push(sup);
        self.types[sup.index()].subtypes.push(sub);
    }

    /// Force a hierarchy link WITHOUT the cycle check (see
    /// [`Self::force_supertype_edge`]).
    #[cfg(test)]
    pub(crate) fn force_link(
        &mut self,
        kind: HierKind,
        parent: TypeId,
        parent_path: &str,
        child: TypeId,
        child_path: &str,
    ) -> LinkId {
        self.bump();
        self.touch_type(parent);
        self.touch_type(child);
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkNode {
            kind,
            parent,
            parent_path: Symbol::intern(parent_path),
            collection: CollectionKind::Set,
            order_by: Vec::new(),
            child,
            child_path: Symbol::intern(child_path),
            alive: true,
        });
        self.types[parent.index()].parent_links.push(id);
        self.types[child.index()].child_links.push(id);
        id
    }

    // ------------------------------------------------------------------
    // Arena occupancy (tombstone observability)
    // ------------------------------------------------------------------

    /// Live/dead slot counts for every arena. Dead slots are tombstones:
    /// removal never frees a slot (IDs stay stable for undo), so long edit
    /// sessions grow the arenas monotonically. The ratio of dead to total
    /// slots is the signal that a compaction pass would pay off.
    pub fn arena_stats(&self) -> ArenaStats {
        let live = |n: usize, l: usize| (l, n - l);
        let (types_live, types_dead) = live(self.types.len(), self.live_types);
        let attrs_live = self.attrs.iter().filter(|n| n.alive).count();
        let rels_live = self.rels.iter().filter(|n| n.alive).count();
        let ops_live = self.ops.iter().filter(|n| n.alive).count();
        let links_live = self.links.iter().filter(|n| n.alive).count();
        ArenaStats {
            types_live,
            types_dead,
            attrs_live,
            attrs_dead: self.attrs.len() - attrs_live,
            rels_live,
            rels_dead: self.rels.len() - rels_live,
            ops_live,
            ops_dead: self.ops.len() - ops_live,
            links_live,
            links_dead: self.links.len() - links_live,
        }
    }

    /// Emit the arena occupancy as trace counters
    /// (`model.graph.<arena>.live` / `.dead`). Counters accumulate, so call
    /// this once per report, not per sync.
    pub fn emit_arena_counters(&self) {
        let s = self.arena_stats();
        for (name, v) in [
            ("model.graph.types.live", s.types_live),
            ("model.graph.types.dead", s.types_dead),
            ("model.graph.attrs.live", s.attrs_live),
            ("model.graph.attrs.dead", s.attrs_dead),
            ("model.graph.rels.live", s.rels_live),
            ("model.graph.rels.dead", s.rels_dead),
            ("model.graph.ops.live", s.ops_live),
            ("model.graph.ops.dead", s.ops_dead),
            ("model.graph.links.live", s.links_live),
            ("model.graph.links.dead", s.links_dead),
        ] {
            sws_trace::counter(name, v as u64);
        }
    }

    // ------------------------------------------------------------------

    fn check_live(&self, id: TypeId) -> Result<(), ModelError> {
        match self.types.get(id.index()) {
            Some(node) if node.alive => Ok(()),
            _ => Err(ModelError::DeadType(id)),
        }
    }

    fn type_mut(&mut self, id: TypeId) -> Result<&mut TypeNode, ModelError> {
        match self.types.get_mut(id.index()) {
            Some(node) if node.alive => Ok(node),
            _ => Err(ModelError::DeadType(id)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> SchemaGraph {
        SchemaGraph::new("test")
    }

    #[test]
    fn add_and_lookup_types() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        assert_eq!(g.type_id("A"), Some(a));
        assert_eq!(g.type_name(a), "A");
        assert_eq!(g.type_count(), 1);
        assert_eq!(
            g.add_type("A").unwrap_err(),
            ModelError::DuplicateTypeName("A".into())
        );
    }

    #[test]
    fn remove_type_frees_name_but_not_slot() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        g.remove_type(a, RemoveTypeMode::default()).unwrap();
        assert_eq!(g.type_id("A"), None);
        assert!(g.try_ty(a).is_none());
        // Name reusable; slot not reused.
        let a2 = g.add_type("A").unwrap();
        assert_ne!(a, a2);
    }

    #[test]
    fn extent_uniqueness() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.set_extent(a, Some("things".into())).unwrap();
        assert_eq!(
            g.set_extent(b, Some("things".into())).unwrap_err(),
            ModelError::DuplicateExtent("things".into())
        );
        // Resetting one's own extent to the same name is fine.
        g.set_extent(a, Some("things".into())).unwrap();
        g.set_extent(a, None).unwrap();
        g.set_extent(b, Some("things".into())).unwrap();
    }

    #[test]
    fn keys_add_remove() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        g.add_key(a, Key::single("id")).unwrap();
        assert!(matches!(
            g.add_key(a, Key::single("id")),
            Err(ModelError::DuplicateKey { .. })
        ));
        g.remove_key(a, &Key::single("id")).unwrap();
        assert!(matches!(
            g.remove_key(a, &Key::single("id")),
            Err(ModelError::NoSuchKey { .. })
        ));
    }

    #[test]
    fn supertype_cycle_rejected() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        let c = g.add_type("C").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_supertype(c, b).unwrap();
        assert!(matches!(
            g.add_supertype(a, c),
            Err(ModelError::SupertypeCycle { .. })
        ));
        assert!(matches!(
            g.add_supertype(a, a),
            Err(ModelError::SelfReference(_))
        ));
    }

    #[test]
    fn subtypes_maintained() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        assert_eq!(g.ty(a).subtypes, vec![b]);
        g.remove_supertype(b, a).unwrap();
        assert!(g.ty(a).subtypes.is_empty());
    }

    #[test]
    fn attribute_uniqueness_across_member_kinds() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_relationship(
            a,
            "x",
            Cardinality::One,
            vec![],
            b,
            "a_of",
            Cardinality::One,
            vec![],
        )
        .unwrap();
        // Attribute clashing with relationship path.
        assert!(matches!(
            g.add_attribute(a, "x", DomainType::Long, None),
            Err(ModelError::DuplicateMember { .. })
        ));
    }

    #[test]
    fn remove_attribute_prunes_keys_and_order_by() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        let name = g
            .add_attribute(b, "name", DomainType::String, Some(32))
            .unwrap();
        g.add_key(b, Key::single("name")).unwrap();
        g.add_relationship(
            a,
            "bs",
            Cardinality::Many(CollectionKind::Set),
            vec!["name".into()],
            b,
            "a_of",
            Cardinality::One,
            vec![],
        )
        .unwrap();
        let report = g.remove_attribute(name).unwrap();
        assert_eq!(
            report.keys_pruned,
            vec![(Symbol::intern("B"), "name".to_string())]
        );
        assert_eq!(
            report.order_by_pruned,
            vec![(
                Symbol::intern("A"),
                Symbol::intern("bs"),
                Symbol::intern("name")
            )]
        );
        assert!(g.ty(b).keys.is_empty());
        let (rid, e) = g.find_rel_end(a, "bs").unwrap();
        assert!(g.rel(rid).end(e).order_by.is_empty());
    }

    #[test]
    fn move_attribute_between_types() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        let x = g.add_attribute(a, "x", DomainType::Long, None).unwrap();
        g.move_attribute(x, b).unwrap();
        assert_eq!(g.attr(x).owner, b);
        assert!(g.find_attr(a, "x").is_none());
        assert_eq!(g.find_attr(b, "x"), Some(x));
    }

    #[test]
    fn move_attribute_name_clash_rejected() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        let x = g.add_attribute(a, "x", DomainType::Long, None).unwrap();
        g.add_attribute(b, "x", DomainType::String, None).unwrap();
        assert!(matches!(
            g.move_attribute(x, b),
            Err(ModelError::DuplicateMember { .. })
        ));
    }

    #[test]
    fn relationship_round_trip() {
        let mut g = graph();
        let d = g.add_type("Department").unwrap();
        let e = g.add_type("Employee").unwrap();
        let r = g
            .add_relationship(
                d,
                "has",
                Cardinality::Many(CollectionKind::Set),
                vec![],
                e,
                "works_in_a",
                Cardinality::One,
                vec![],
            )
            .unwrap();
        assert_eq!(g.find_rel_end(d, "has"), Some((r, 0)));
        assert_eq!(g.find_rel_end(e, "works_in_a"), Some((r, 1)));
        let report = g.remove_relationship(r).unwrap();
        assert_eq!(report.removed_rels.len(), 1);
        assert!(g.find_rel_end(d, "has").is_none());
    }

    #[test]
    fn self_relationship_allowed_with_distinct_paths() {
        let mut g = graph();
        let p = g.add_type("Person").unwrap();
        let r = g
            .add_relationship(
                p,
                "mentors",
                Cardinality::Many(CollectionKind::Set),
                vec![],
                p,
                "mentored_by",
                Cardinality::One,
                vec![],
            )
            .unwrap();
        assert_eq!(g.find_rel_end(p, "mentors"), Some((r, 0)));
        assert_eq!(g.find_rel_end(p, "mentored_by"), Some((r, 1)));
        // Same path twice on the same type is rejected.
        assert!(g
            .add_relationship(
                p,
                "peer",
                Cardinality::One,
                vec![],
                p,
                "peer",
                Cardinality::One,
                vec![]
            )
            .is_err());
    }

    #[test]
    fn retarget_rel_end_moves_path() {
        // The paper's Fig. 8: works_in_a moves from Employee to Person.
        let mut g = graph();
        let dept = g.add_type("Department").unwrap();
        let person = g.add_type("Person").unwrap();
        let emp = g.add_type("Employee").unwrap();
        g.add_supertype(emp, person).unwrap();
        let r = g
            .add_relationship(
                dept,
                "has",
                Cardinality::Many(CollectionKind::Set),
                vec![],
                emp,
                "works_in_a",
                Cardinality::One,
                vec![],
            )
            .unwrap();
        g.retarget_rel_end(r, 1, person).unwrap();
        assert!(g.find_rel_end(emp, "works_in_a").is_none());
        assert_eq!(g.find_rel_end(person, "works_in_a"), Some((r, 1)));
        // Department's side still targets the relationship; its target type
        // is now Person.
        let (rid, e) = g.find_rel_end(dept, "has").unwrap();
        assert_eq!(g.rel(rid).other(e).owner, person);
    }

    #[test]
    fn remove_type_cascades() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        let c = g.add_type("C").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_supertype(c, b).unwrap();
        g.add_attribute(b, "x", DomainType::Long, None).unwrap();
        g.add_operation(b, Operation::nullary("f", DomainType::Void))
            .unwrap();
        g.add_relationship(
            b,
            "r",
            Cardinality::One,
            vec![],
            a,
            "inv",
            Cardinality::One,
            vec![],
        )
        .unwrap();
        g.add_link(
            HierKind::PartOf,
            b,
            "parts",
            CollectionKind::Set,
            vec![],
            c,
            "whole",
        )
        .unwrap();
        let report = g.remove_type(b, RemoveTypeMode::RewireSubtypes).unwrap();
        assert_eq!(
            report.removed_attrs,
            vec![(Symbol::intern("B"), Symbol::intern("x"))]
        );
        assert_eq!(
            report.removed_ops,
            vec![(Symbol::intern("B"), Symbol::intern("f"))]
        );
        assert_eq!(report.removed_rels.len(), 1);
        assert_eq!(report.removed_links.len(), 1);
        // C was rewired to A.
        assert_eq!(
            report.rewired_subtypes,
            vec![(Symbol::intern("C"), Symbol::intern("A"))]
        );
        assert_eq!(g.ty(c).supertypes, vec![a]);
        assert_eq!(g.ty(a).subtypes, vec![c]);
    }

    #[test]
    fn remove_type_detach_mode() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        let c = g.add_type("C").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_supertype(c, b).unwrap();
        let report = g.remove_type(b, RemoveTypeMode::DetachSubtypes).unwrap();
        assert_eq!(report.detached_subtypes, vec!["C".to_string()]);
        assert!(g.ty(c).supertypes.is_empty());
    }

    #[test]
    fn link_cycle_rejected() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        let c = g.add_type("C").unwrap();
        g.add_link(
            HierKind::PartOf,
            a,
            "bs",
            CollectionKind::Set,
            vec![],
            b,
            "a_of",
        )
        .unwrap();
        g.add_link(
            HierKind::PartOf,
            b,
            "cs",
            CollectionKind::Set,
            vec![],
            c,
            "b_of",
        )
        .unwrap();
        assert!(matches!(
            g.add_link(
                HierKind::PartOf,
                c,
                "as",
                CollectionKind::Set,
                vec![],
                a,
                "c_of"
            ),
            Err(ModelError::HierarchyCycle { .. })
        ));
        // But an instance-of link C→A is a different hierarchy: allowed.
        g.add_link(
            HierKind::InstanceOf,
            c,
            "as",
            CollectionKind::Set,
            vec![],
            a,
            "c_of",
        )
        .unwrap();
    }

    #[test]
    fn retarget_link_end() {
        let mut g = graph();
        let house = g.add_type("House").unwrap();
        let wall = g.add_type("Wall").unwrap();
        let brick_wall = g.add_type("BrickWall").unwrap();
        g.add_supertype(brick_wall, wall).unwrap();
        let l = g
            .add_link(
                HierKind::PartOf,
                house,
                "walls",
                CollectionKind::Set,
                vec![],
                wall,
                "house",
            )
            .unwrap();
        g.retarget_link_end(l, LinkSide::Child, brick_wall).unwrap();
        assert_eq!(g.link(l).child, brick_wall);
        assert!(g.find_link(HierKind::PartOf, wall, "house").is_none());
        assert_eq!(
            g.find_link(HierKind::PartOf, brick_wall, "house"),
            Some((l, LinkSide::Child))
        );
    }

    #[test]
    fn retarget_link_end_cycle_rejected() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        let c = g.add_type("C").unwrap();
        g.add_link(
            HierKind::PartOf,
            a,
            "bs",
            CollectionKind::Set,
            vec![],
            b,
            "a_of",
        )
        .unwrap();
        let l2 = g
            .add_link(
                HierKind::PartOf,
                b,
                "cs",
                CollectionKind::Set,
                vec![],
                c,
                "b_of",
            )
            .unwrap();
        // Moving the parent of l2 from B to C would make C its own parent.
        assert!(g.retarget_link_end(l2, LinkSide::Parent, c).is_err());
        // Moving the child of l2 from C to A would create A→B→A.
        assert!(g.retarget_link_end(l2, LinkSide::Child, a).is_err());
    }

    #[test]
    fn operation_override_allowed_in_subtype() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_operation(a, Operation::nullary("f", DomainType::Void))
            .unwrap();
        // Same name on the subtype: an override, allowed.
        g.add_operation(b, Operation::nullary("f", DomainType::Long))
            .unwrap();
        // Same name twice on the same type: rejected.
        assert!(g
            .add_operation(b, Operation::nullary("f", DomainType::Void))
            .is_err());
    }

    #[test]
    fn construct_count() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_attribute(a, "x", DomainType::Long, None).unwrap();
        g.add_relationship(
            a,
            "r",
            Cardinality::One,
            vec![],
            b,
            "i",
            Cardinality::One,
            vec![],
        )
        .unwrap();
        // 2 types + 1 supertype edge + 1 attr + 1 rel = 5
        assert_eq!(g.construct_count(), 5);
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut g = graph();
        let g0 = g.generation();
        let a = g.add_type("A").unwrap();
        assert!(g.generation() > g0);
        let g1 = g.generation();
        g.add_attribute(a, "x", DomainType::Long, None).unwrap();
        assert!(g.generation() > g1);
        let g2 = g.generation();
        // Failed mutations do not bump.
        assert!(g.add_type("A").is_err());
        assert_eq!(g.generation(), g2);
        g.remove_type(a, RemoveTypeMode::default()).unwrap();
        assert!(g.generation() > g2);
    }

    #[test]
    fn undo_rollback_restores_exact_state() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_attribute(a, "x", DomainType::Long, None).unwrap();
        g.add_key(a, Key::single("x")).unwrap();
        let oracle = g.clone();

        g.begin_undo();
        g.add_type("C").unwrap();
        g.add_attribute(b, "y", DomainType::String, None).unwrap();
        g.remove_type(a, RemoveTypeMode::RewireSubtypes).unwrap();
        g.rollback_undo();

        assert!(crate::diff::diff_graphs(&oracle, &g).is_empty());
        // IDs are restored exactly, not just structure.
        assert_eq!(g.type_id("A"), Some(a));
        assert_eq!(g.ty(a).keys, vec![Key::single("x")]);
        assert_eq!(g.ty(a).subtypes, vec![b]);
        assert_eq!(g.type_id("C"), None);
    }

    #[test]
    fn undo_commit_then_revert() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let oracle = g.clone();

        g.begin_undo();
        g.add_attribute(a, "x", DomainType::Long, None).unwrap();
        let p1 = g.commit_undo();
        g.begin_undo();
        g.remove_type(a, RemoveTypeMode::default()).unwrap();
        let p2 = g.commit_undo();
        assert!(p2.touched() > 0);

        // Mutations are kept by commit; reverting in reverse order undoes
        // them one transaction at a time.
        assert_eq!(g.type_id("A"), None);
        g.revert(&p2);
        assert_eq!(g.type_id("A"), Some(a));
        assert!(g.find_attr(a, "x").is_some());
        g.revert(&p1);
        assert!(g.find_attr(a, "x").is_none());
        assert!(crate::diff::diff_graphs(&oracle, &g).is_empty());
    }

    #[test]
    fn undo_revert_bumps_generation() {
        let mut g = graph();
        g.begin_undo();
        g.add_type("A").unwrap();
        let before = g.generation();
        g.rollback_undo();
        assert!(g.generation() > before);
    }

    #[test]
    fn move_operation() {
        let mut g = graph();
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        let f = g
            .add_operation(a, Operation::nullary("f", DomainType::Void))
            .unwrap();
        g.move_operation(f, b).unwrap();
        assert_eq!(g.op(f).owner, b);
        assert!(g.find_op(a, "f").is_none());
        assert_eq!(g.find_op(b, "f"), Some(f));
    }
}
