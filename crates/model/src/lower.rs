//! Conversion between `sws_odl::Schema` ASTs and [`SchemaGraph`]s.
//!
//! * [`schema_to_graph`] resolves names, pairs up the two declared sides of
//!   each relationship / hierarchy link, and builds the graph. The input is
//!   expected to be clean per `sws_odl::validate_schema`; lowering reports
//!   the first structural problem it meets as a [`LowerError`].
//! * [`graph_to_schema`] produces the **canonical AST**: interfaces and
//!   members sorted by name. Two graphs describe the same schema iff their
//!   canonical ASTs are equal — the repository persists this form.

use crate::error::ModelError;
use crate::graph::SchemaGraph;
use std::fmt;
use sws_odl::{Attribute, Cardinality, HierKind, HierLink, Interface, Relationship, Schema};

/// Why lowering an AST to a graph failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A supertype or target name did not resolve.
    UnknownType { interface: String, name: String },
    /// A relationship/link side had no matching declaration on its target.
    Unpaired { interface: String, path: String },
    /// The two sides of a relationship disagree about each other.
    MismatchedInverse { interface: String, path: String },
    /// A part-of / instance-of pair is not 1:N.
    BadLinkCardinality {
        kind: HierKind,
        interface: String,
        path: String,
    },
    /// The graph refused a mutation (duplicate names etc.).
    Model(ModelError),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnknownType { interface, name } => {
                write!(f, "`{interface}` references unknown type `{name}`")
            }
            LowerError::Unpaired { interface, path } => {
                write!(
                    f,
                    "`{interface}::{path}` has no matching inverse declaration"
                )
            }
            LowerError::MismatchedInverse { interface, path } => {
                write!(f, "`{interface}::{path}` and its inverse disagree")
            }
            LowerError::BadLinkCardinality {
                kind,
                interface,
                path,
            } => {
                write!(f, "{kind} link `{interface}::{path}` is not 1:N")
            }
            LowerError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<ModelError> for LowerError {
    fn from(e: ModelError) -> Self {
        LowerError::Model(e)
    }
}

/// Build a [`SchemaGraph`] from an AST.
pub fn schema_to_graph(schema: &Schema) -> Result<SchemaGraph, LowerError> {
    let mut g = SchemaGraph::new(&schema.name);

    // Pass 1: types.
    for iface in &schema.interfaces {
        let id = g.add_type(&iface.name)?;
        g.set_abstract(id, iface.is_abstract)?;
    }

    // Pass 2: type properties and single-owner members.
    for iface in &schema.interfaces {
        let id = g.require_type(&iface.name)?;
        if let Some(extent) = &iface.extent {
            g.set_extent(id, Some(extent.clone()))?;
        }
        for key in &iface.keys {
            g.add_key(id, key.clone())?;
        }
        for attr in &iface.attributes {
            g.add_attribute(id, &attr.name, attr.ty.clone(), attr.size)?;
        }
        for op in &iface.operations {
            g.add_operation(id, op.clone())?;
        }
    }

    // Pass 3: supertypes.
    for iface in &schema.interfaces {
        let id = g.require_type(&iface.name).expect("added in pass 1");
        for sup in &iface.supertypes {
            let sup_id = g.type_id(sup).ok_or_else(|| LowerError::UnknownType {
                interface: iface.name.clone(),
                name: sup.clone(),
            })?;
            g.add_supertype(id, sup_id)?;
        }
    }

    // Pass 4: relationships, pairing the two declared sides.
    for iface in &schema.interfaces {
        for rel in &iface.relationships {
            let pair = pair_relationship(schema, iface, rel)?;
            let Some(back) = pair else { continue };
            // Lower once per pair: when this side is the canonical first.
            if !is_first_side(&iface.name, &rel.path, &rel.target, &rel.inverse_path) {
                continue;
            }
            let a = g.require_type(&iface.name)?;
            let b = g
                .type_id(&rel.target)
                .ok_or_else(|| LowerError::UnknownType {
                    interface: iface.name.clone(),
                    name: rel.target.clone(),
                })?;
            g.add_relationship(
                a,
                &rel.path,
                rel.cardinality,
                rel.order_by.clone(),
                b,
                &back.path,
                back.cardinality,
                back.order_by.clone(),
            )?;
        }
    }

    // Pass 5: hierarchy links.
    for iface in &schema.interfaces {
        for (kind, links) in [
            (HierKind::PartOf, &iface.part_ofs),
            (HierKind::InstanceOf, &iface.instance_ofs),
        ] {
            for link in links {
                let back = pair_link(schema, kind, iface, link)?;
                let Some(back) = back else { continue };
                if !is_first_side(&iface.name, &link.path, &link.target, &link.inverse_path) {
                    continue;
                }
                // Exactly one side must be collection-valued (the parent).
                let (parent_iface, parent_link, child_iface, child_link) =
                    match (link.cardinality, back.cardinality) {
                        (Cardinality::Many(_), Cardinality::One) => {
                            (&iface.name, link, &link.target, &back)
                        }
                        (Cardinality::One, Cardinality::Many(_)) => {
                            (&link.target, &back, &iface.name, link)
                        }
                        _ => {
                            return Err(LowerError::BadLinkCardinality {
                                kind,
                                interface: iface.name.clone(),
                                path: link.path.clone(),
                            })
                        }
                    };
                let collection = match parent_link.cardinality {
                    Cardinality::Many(k) => k,
                    Cardinality::One => unreachable!(),
                };
                let p = g.require_type(parent_iface)?;
                let c = g.require_type(child_iface)?;
                g.add_link(
                    kind,
                    p,
                    &parent_link.path,
                    collection,
                    parent_link.order_by.clone(),
                    c,
                    &child_link.path,
                )?;
            }
        }
    }

    Ok(g)
}

/// Determine which of the two declared sides lowers the pair, breaking ties
/// deterministically (self-relationships tie-break on path).
fn is_first_side(my_type: &str, my_path: &str, other_type: &str, other_path: &str) -> bool {
    (my_type, my_path) <= (other_type, other_path)
}

fn pair_relationship<'a>(
    schema: &'a Schema,
    iface: &Interface,
    rel: &Relationship,
) -> Result<Option<&'a Relationship>, LowerError> {
    let target = schema
        .interface(&rel.target)
        .ok_or_else(|| LowerError::UnknownType {
            interface: iface.name.clone(),
            name: rel.target.clone(),
        })?;
    let back = target
        .relationship(&rel.inverse_path)
        .ok_or_else(|| LowerError::Unpaired {
            interface: iface.name.clone(),
            path: rel.path.clone(),
        })?;
    if back.target != iface.name || back.inverse_path != rel.path {
        return Err(LowerError::MismatchedInverse {
            interface: iface.name.clone(),
            path: rel.path.clone(),
        });
    }
    Ok(Some(back))
}

fn pair_link(
    schema: &Schema,
    kind: HierKind,
    iface: &Interface,
    link: &HierLink,
) -> Result<Option<HierLink>, LowerError> {
    let target = schema
        .interface(&link.target)
        .ok_or_else(|| LowerError::UnknownType {
            interface: iface.name.clone(),
            name: link.target.clone(),
        })?;
    let back = match kind {
        HierKind::PartOf => target.part_of(&link.inverse_path),
        HierKind::InstanceOf => target.instance_of(&link.inverse_path),
    };
    let back = back.ok_or_else(|| LowerError::Unpaired {
        interface: iface.name.clone(),
        path: link.path.clone(),
    })?;
    if back.target != iface.name || back.inverse_path != link.path {
        return Err(LowerError::MismatchedInverse {
            interface: iface.name.clone(),
            path: link.path.clone(),
        });
    }
    Ok(Some(back.clone()))
}

/// Produce the canonical AST for a graph (see module docs).
pub fn graph_to_schema(g: &SchemaGraph) -> Schema {
    let mut schema = Schema::new(g.name());
    let mut interfaces: Vec<Interface> = Vec::with_capacity(g.type_count());

    for (_, node) in g.types() {
        let mut iface = Interface::new(node.name.to_string());
        iface.is_abstract = node.is_abstract;
        iface.extent = node.extent.map(|e| e.to_string());
        iface.keys = node.keys.iter().map(|k| k.to_key()).collect();
        iface.keys.sort_by_key(|k| k.to_string());
        iface.supertypes = node
            .supertypes
            .iter()
            .map(|&s| g.type_name(s).to_string())
            .collect();
        iface.supertypes.sort();

        iface.attributes = node
            .attrs
            .iter()
            .map(|&a| {
                let attr = g.attr(a);
                Attribute {
                    name: attr.name.to_string(),
                    ty: attr.ty.clone(),
                    size: attr.size,
                }
            })
            .collect();
        iface.attributes.sort_by(|a, b| a.name.cmp(&b.name));

        iface.operations = node.ops.iter().map(|&o| g.op(o).op.clone()).collect();
        iface.operations.sort_by(|a, b| a.name.cmp(&b.name));

        iface.relationships = node
            .rel_ends
            .iter()
            .map(|&(r, e)| {
                let rel = g.rel(r);
                let mine = rel.end(e);
                let other = rel.other(e);
                Relationship {
                    path: mine.path.to_string(),
                    target: g.type_name(other.owner).to_string(),
                    cardinality: mine.cardinality,
                    inverse_path: other.path.to_string(),
                    order_by: mine.order_by.iter().map(|s| s.to_string()).collect(),
                }
            })
            .collect();
        iface.relationships.sort_by(|a, b| a.path.cmp(&b.path));

        let hier = |kind: HierKind| -> Vec<HierLink> {
            let mut out = Vec::new();
            for &l in &node.parent_links {
                let link = g.link(l);
                if link.kind != kind {
                    continue;
                }
                out.push(HierLink {
                    path: link.parent_path.to_string(),
                    target: g.type_name(link.child).to_string(),
                    cardinality: Cardinality::Many(link.collection),
                    inverse_path: link.child_path.to_string(),
                    order_by: link.order_by.iter().map(|s| s.to_string()).collect(),
                });
            }
            for &l in &node.child_links {
                let link = g.link(l);
                if link.kind != kind {
                    continue;
                }
                out.push(HierLink {
                    path: link.child_path.to_string(),
                    target: g.type_name(link.parent).to_string(),
                    cardinality: Cardinality::One,
                    inverse_path: link.parent_path.to_string(),
                    order_by: Vec::new(),
                });
            }
            out.sort_by(|a, b| a.path.cmp(&b.path));
            out
        };
        iface.part_ofs = hier(HierKind::PartOf);
        iface.instance_ofs = hier(HierKind::InstanceOf);

        interfaces.push(iface);
    }

    interfaces.sort_by(|a, b| a.name.cmp(&b.name));
    schema.interfaces = interfaces;
    schema
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_odl::parse_schema;

    const UNI: &str = r#"
    schema Uni {
        interface Person {
            extent people;
            attribute string(32) name;
            keys name;
        }
        interface Employee : Person {
            relationship Department works_in_a inverse Department::has;
        }
        interface Department {
            attribute string name;
            relationship set<Employee> has inverse Employee::works_in_a order_by (name);
            part_of set<Office> offices inverse Office::department;
        }
        interface Office {
            attribute long number;
            part_of Department department inverse Department::offices;
        }
        interface Application {
            instance_of set<Version> versions inverse Version::application;
        }
        interface Version {
            instance_of Application application inverse Application::versions;
        }
    }"#;

    #[test]
    fn lower_and_raise_round_trip() {
        let ast = parse_schema(UNI).unwrap();
        let g = schema_to_graph(&ast).unwrap();
        assert_eq!(g.type_count(), 6);
        let canonical = graph_to_schema(&g);
        // Lower the canonical form again: must be a fixed point.
        let g2 = schema_to_graph(&canonical).unwrap();
        assert_eq!(graph_to_schema(&g2), canonical);
    }

    #[test]
    fn relationship_paired_once() {
        let ast = parse_schema(UNI).unwrap();
        let g = schema_to_graph(&ast).unwrap();
        assert_eq!(g.rels().count(), 1);
        assert_eq!(g.links().count(), 2);
        let dept = g.type_id("Department").unwrap();
        let (rid, e) = g.find_rel_end(dept, "has").unwrap();
        assert_eq!(g.rel(rid).end(e).order_by, vec!["name".to_string()]);
    }

    #[test]
    fn unpaired_relationship_rejected() {
        let src = r#"
        interface A { relationship B r inverse B::x; }
        interface B { }"#;
        let ast = parse_schema(src).unwrap();
        assert!(matches!(
            schema_to_graph(&ast),
            Err(LowerError::Unpaired { .. })
        ));
    }

    #[test]
    fn mismatched_inverse_rejected() {
        let src = r#"
        interface A { relationship B r inverse B::x; relationship B r2 inverse B::x; }
        interface B { relationship A x inverse A::r; }"#;
        let ast = parse_schema(src).unwrap();
        assert!(matches!(
            schema_to_graph(&ast),
            Err(LowerError::MismatchedInverse { .. })
        ));
    }

    #[test]
    fn non_1n_link_rejected() {
        let src = r#"
        interface A { part_of set<B> bs inverse B::as_; }
        interface B { part_of set<A> as_ inverse A::bs; }"#;
        let ast = parse_schema(src).unwrap();
        assert!(matches!(
            schema_to_graph(&ast),
            Err(LowerError::BadLinkCardinality { .. })
        ));
    }

    #[test]
    fn unknown_supertype_rejected() {
        let ast = parse_schema("interface A : Ghost { }").unwrap();
        assert!(matches!(
            schema_to_graph(&ast),
            Err(LowerError::UnknownType { .. })
        ));
    }

    #[test]
    fn self_relationship_lowers_once() {
        let src = r#"
        interface Person {
            relationship set<Person> mentors inverse Person::mentored_by;
            relationship Person mentored_by inverse Person::mentors;
        }"#;
        let ast = parse_schema(src).unwrap();
        let g = schema_to_graph(&ast).unwrap();
        assert_eq!(g.rels().count(), 1);
        let canonical = graph_to_schema(&g);
        let g2 = schema_to_graph(&canonical).unwrap();
        assert_eq!(graph_to_schema(&g2), canonical);
    }

    #[test]
    fn canonical_form_is_sorted() {
        let ast = parse_schema(UNI).unwrap();
        let g = schema_to_graph(&ast).unwrap();
        let canonical = graph_to_schema(&g);
        let names: Vec<&str> = canonical
            .interfaces
            .iter()
            .map(|i| i.name.as_str())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn instance_of_child_side_has_one_cardinality() {
        let ast = parse_schema(UNI).unwrap();
        let g = schema_to_graph(&ast).unwrap();
        let canonical = graph_to_schema(&g);
        let version = canonical.interface("Version").unwrap();
        assert_eq!(version.instance_ofs[0].cardinality, Cardinality::One);
        let app = canonical.interface("Application").unwrap();
        assert!(app.instance_ofs[0].cardinality.is_many());
    }
}
