//! Newtype IDs addressing the arenas of a [`crate::SchemaGraph`].
//!
//! IDs are plain `u32` indices. They are stable for the lifetime of the
//! element (arena slots are tombstoned, never reused), so ops logs, mappings,
//! and concept-schema views can hold them safely across mutations.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies an object type (interface definition).
    TypeId,
    "t"
);
define_id!(
    /// Identifies an attribute.
    AttrId,
    "a"
);
define_id!(
    /// Identifies a relationship (both ends share one ID).
    RelId,
    "r"
);
define_id!(
    /// Identifies an operation.
    OpId,
    "o"
);
define_id!(
    /// Identifies a part-of or instance-of link (both ends share one ID).
    LinkId,
    "l"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(TypeId(3).to_string(), "t3");
        assert_eq!(AttrId(0).to_string(), "a0");
        assert_eq!(RelId(7).to_string(), "r7");
        assert_eq!(OpId(1).to_string(), "o1");
        assert_eq!(LinkId(9).to_string(), "l9");
        assert_eq!(LinkId(9).index(), 9);
    }

    #[test]
    fn ordering() {
        assert!(TypeId(1) < TypeId(2));
    }
}
