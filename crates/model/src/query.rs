//! Hierarchy queries over a [`SchemaGraph`]: generalization ancestry,
//! part-of / instance-of structure, roots, components, and the
//! *semantic-stability* predicate the paper's move operations require.

use crate::graph::SchemaGraph;
use crate::ids::{LinkId, TypeId};
use crate::intern::Symbol;
use std::collections::{BTreeSet, VecDeque};
use sws_odl::HierKind;

/// All strict ancestors of `t` via supertype edges, in BFS order.
/// (Delegates to the generic traversal in [`crate::view`]; the checker and
/// the static analyzer run the same BFS over their own views.)
pub fn ancestors(g: &SchemaGraph, t: TypeId) -> Vec<TypeId> {
    crate::view::ancestors_of(g, t)
}

/// All strict descendants of `t` via subtype edges, in BFS order.
pub fn descendants(g: &SchemaGraph, t: TypeId) -> Vec<TypeId> {
    crate::view::descendants_of(g, t)
}

/// True if `a` is a strict ancestor of `b`.
pub fn is_ancestor(g: &SchemaGraph, a: TypeId, b: TypeId) -> bool {
    ancestors(g, b).contains(&a)
}

/// The paper's *semantic stability* predicate (§3.2): information may move
/// between `a` and `b` only if they lie on one generalization path — i.e.
/// one is an ancestor of the other (or they are the same type).
pub fn on_same_generalization_path(g: &SchemaGraph, a: TypeId, b: TypeId) -> bool {
    a == b || is_ancestor(g, a, b) || is_ancestor(g, b, a)
}

/// Types with at least one subtype and no supertype: the roots of
/// generalization hierarchies.
pub fn generalization_roots(g: &SchemaGraph) -> Vec<TypeId> {
    g.types()
        .filter(|(_, n)| n.supertypes.is_empty() && !n.subtypes.is_empty())
        .map(|(id, _)| id)
        .collect()
}

/// Connected components of the generalization (ISA) edge graph, each as a
/// sorted set of member types. Components with a single type (no edges) are
/// omitted.
pub fn generalization_components(g: &SchemaGraph) -> Vec<Vec<TypeId>> {
    let mut seen = BTreeSet::new();
    let mut components = Vec::new();
    for (start, node) in g.types() {
        if seen.contains(&start) || (node.supertypes.is_empty() && node.subtypes.is_empty()) {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::from([start]);
        while let Some(t) = queue.pop_front() {
            if !seen.insert(t) {
                continue;
            }
            component.push(t);
            let n = g.ty(t);
            queue.extend(n.supertypes.iter().copied());
            queue.extend(n.subtypes.iter().copied());
        }
        component.sort();
        components.push(component);
    }
    components
}

/// Roots of one generalization component: members with no supertype.
pub fn component_roots(g: &SchemaGraph, component: &[TypeId]) -> Vec<TypeId> {
    component
        .iter()
        .copied()
        .filter(|&t| g.ty(t).supertypes.is_empty())
        .collect()
}

/// Direct hierarchy parents of `t` in the `kind` hierarchy, with the links.
pub fn hier_parents(g: &SchemaGraph, kind: HierKind, t: TypeId) -> Vec<(LinkId, TypeId)> {
    g.ty(t)
        .child_links
        .iter()
        .filter_map(|&l| {
            let link = g.link(l);
            (link.kind == kind).then_some((l, link.parent))
        })
        .collect()
}

/// Direct hierarchy children of `t` in the `kind` hierarchy, with the links.
pub fn hier_children(g: &SchemaGraph, kind: HierKind, t: TypeId) -> Vec<(LinkId, TypeId)> {
    g.ty(t)
        .parent_links
        .iter()
        .filter_map(|&l| {
            let link = g.link(l);
            (link.kind == kind).then_some((l, link.child))
        })
        .collect()
}

/// Roots of the `kind` hierarchy: types that are a parent in some link of
/// that kind but a child in none.
pub fn hier_roots(g: &SchemaGraph, kind: HierKind) -> Vec<TypeId> {
    g.types()
        .filter(|(id, _)| {
            !hier_children(g, kind, *id).is_empty() && hier_parents(g, kind, *id).is_empty()
        })
        .map(|(id, _)| id)
        .collect()
}

/// All types reachable downward from `root` in the `kind` hierarchy
/// (including `root`), with the links traversed, in BFS order.
pub fn hier_closure(g: &SchemaGraph, kind: HierKind, root: TypeId) -> (Vec<TypeId>, Vec<LinkId>) {
    let mut types = Vec::new();
    let mut links = Vec::new();
    let mut seen = BTreeSet::new();
    let mut seen_links = BTreeSet::new();
    let mut queue = VecDeque::from([root]);
    while let Some(t) = queue.pop_front() {
        if !seen.insert(t) {
            continue;
        }
        types.push(t);
        for (l, child) in hier_children(g, kind, t) {
            if seen_links.insert(l) {
                links.push(l);
            }
            queue.push_back(child);
        }
    }
    (types, links)
}

/// The member (attribute / relationship-path / operation / link-path) names
/// visible on `t`, i.e. its own members plus everything inherited from
/// ancestors. Returns `(name, defining type)` pairs; for overridden
/// operations only the nearest definition is kept.
pub fn visible_members(g: &SchemaGraph, t: TypeId) -> Vec<(Symbol, TypeId)> {
    crate::view::visible_members_of(g, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SchemaGraph;
    use sws_odl::{Cardinality, CollectionKind, DomainType};

    /// Student hierarchy from Fig. 4 of the paper.
    fn student_graph() -> (SchemaGraph, Vec<TypeId>) {
        let mut g = SchemaGraph::new("uni");
        let student = g.add_type("Student").unwrap();
        let undergrad = g.add_type("Undergraduate").unwrap();
        let grad = g.add_type("Graduate").unwrap();
        let masters = g.add_type("Masters").unwrap();
        let phd = g.add_type("PhD").unwrap();
        let non_thesis = g.add_type("NonThesisMasters").unwrap();
        g.add_supertype(undergrad, student).unwrap();
        g.add_supertype(grad, student).unwrap();
        g.add_supertype(masters, grad).unwrap();
        g.add_supertype(phd, grad).unwrap();
        g.add_supertype(non_thesis, masters).unwrap();
        (g, vec![student, undergrad, grad, masters, phd, non_thesis])
    }

    #[test]
    fn ancestors_and_descendants() {
        let (g, t) = student_graph();
        let [student, _undergrad, grad, masters, _phd, non_thesis] =
            [t[0], t[1], t[2], t[3], t[4], t[5]];
        assert_eq!(ancestors(&g, non_thesis), vec![masters, grad, student]);
        assert!(descendants(&g, student).len() == 5);
        assert!(is_ancestor(&g, student, non_thesis));
        assert!(!is_ancestor(&g, non_thesis, student));
    }

    #[test]
    fn semantic_stability_predicate() {
        let (g, t) = student_graph();
        let [_, undergrad, grad, masters, ..] = [t[0], t[1], t[2], t[3], t[4], t[5]];
        assert!(on_same_generalization_path(&g, grad, masters));
        assert!(on_same_generalization_path(&g, masters, grad));
        assert!(on_same_generalization_path(&g, grad, grad));
        // Siblings are NOT on one path.
        assert!(!on_same_generalization_path(&g, undergrad, grad));
    }

    #[test]
    fn roots_and_components() {
        let (mut g, t) = student_graph();
        let student = t[0];
        // A second, separate hierarchy plus an isolated type.
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_type("Loner").unwrap();
        let roots = generalization_roots(&g);
        assert!(roots.contains(&student) && roots.contains(&a));
        assert_eq!(roots.len(), 2);
        let components = generalization_components(&g);
        assert_eq!(components.len(), 2);
        assert!(components.iter().any(|c| c.len() == 6));
        assert!(components.iter().any(|c| c.len() == 2));
        for c in &components {
            assert_eq!(component_roots(&g, c).len(), 1);
        }
    }

    #[test]
    fn hierarchy_queries() {
        let mut g = SchemaGraph::new("house");
        let house = g.add_type("House").unwrap();
        let roof = g.add_type("Roof").unwrap();
        let shingle = g.add_type("Shingle").unwrap();
        let l1 = g
            .add_link(
                HierKind::PartOf,
                house,
                "roofs",
                CollectionKind::Set,
                vec![],
                roof,
                "house",
            )
            .unwrap();
        let l2 = g
            .add_link(
                HierKind::PartOf,
                roof,
                "shingles",
                CollectionKind::Set,
                vec![],
                shingle,
                "roof",
            )
            .unwrap();
        assert_eq!(hier_parents(&g, HierKind::PartOf, roof), vec![(l1, house)]);
        assert_eq!(
            hier_children(&g, HierKind::PartOf, roof),
            vec![(l2, shingle)]
        );
        assert_eq!(hier_roots(&g, HierKind::PartOf), vec![house]);
        let (types, links) = hier_closure(&g, HierKind::PartOf, house);
        assert_eq!(types, vec![house, roof, shingle]);
        assert_eq!(links, vec![l1, l2]);
        assert!(hier_roots(&g, HierKind::InstanceOf).is_empty());
    }

    #[test]
    fn visible_members_inherit_and_override() {
        let (mut g, t) = student_graph();
        let [student, _, grad, ..] = [t[0], t[1], t[2], t[3], t[4], t[5]];
        g.add_attribute(student, "name", DomainType::String, None)
            .unwrap();
        g.add_operation(
            student,
            sws_odl::Operation::nullary("enroll", DomainType::Void),
        )
        .unwrap();
        g.add_operation(
            grad,
            sws_odl::Operation::nullary("enroll", DomainType::Long),
        )
        .unwrap();
        let members = visible_members(&g, grad);
        // `enroll` resolves to the grad override; `name` is inherited.
        assert!(members.contains(&(Symbol::intern("enroll"), grad)));
        assert!(members.contains(&(Symbol::intern("name"), student)));
        assert_eq!(members.iter().filter(|(n, _)| n == "enroll").count(), 1);
    }

    /// A deliberately malformed graph: A → B → C → A generalization cycle
    /// (forced past the mutators' cycle check). Mid-edit states can be
    /// arbitrarily ill-formed, so every traversal must terminate on it.
    fn cyclic_gen_graph() -> (SchemaGraph, TypeId, TypeId, TypeId) {
        let mut g = SchemaGraph::new("cyclic");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        let c = g.add_type("C").unwrap();
        g.add_supertype(a, b).unwrap();
        g.add_supertype(b, c).unwrap();
        g.force_supertype_edge(c, a); // closes the cycle
        (g, a, b, c)
    }

    #[test]
    fn ancestors_terminate_on_generalization_cycle() {
        let (g, a, b, c) = cyclic_gen_graph();
        // Every member of the cycle is an ancestor of every member,
        // including itself; the visited set must stop the walk.
        for t in [a, b, c] {
            let anc = ancestors(&g, t);
            assert_eq!(anc.len(), 3, "each cycle member visited exactly once");
            assert!(anc.contains(&t), "cycle makes a type its own ancestor");
        }
        assert!(is_ancestor(&g, a, a));
    }

    #[test]
    fn descendants_terminate_on_generalization_cycle() {
        let (g, a, b, c) = cyclic_gen_graph();
        for t in [a, b, c] {
            let desc = descendants(&g, t);
            assert_eq!(desc.len(), 3);
            assert!(desc.contains(&t));
        }
    }

    #[test]
    fn components_and_visible_members_terminate_on_cycle() {
        let (mut g, a, _, _) = cyclic_gen_graph();
        g.add_attribute(a, "x", DomainType::Long, None).unwrap();
        let components = generalization_components(&g);
        assert_eq!(components.len(), 1);
        assert_eq!(components[0].len(), 3);
        // `x` is found exactly once even though every type "inherits" from
        // every other around the cycle.
        let members = visible_members(&g, a);
        assert_eq!(members.iter().filter(|(n, _)| n == "x").count(), 1);
    }

    #[test]
    fn hier_closure_terminates_on_link_cycle() {
        let mut g = SchemaGraph::new("cyclic");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_link(
            HierKind::PartOf,
            a,
            "bs",
            CollectionKind::Set,
            vec![],
            b,
            "a_of",
        )
        .unwrap();
        let back = g.force_link(HierKind::PartOf, b, "as_", a, "b_of");
        let (types, links) = hier_closure(&g, HierKind::PartOf, a);
        assert_eq!(types, vec![a, b]);
        assert_eq!(links.len(), 2);
        assert!(links.contains(&back));
        // Parent walks terminate too (wf's cycle detection relies on this).
        assert_eq!(hier_parents(&g, HierKind::PartOf, a), vec![(back, b)]);
    }

    #[test]
    fn visible_members_include_paths() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_relationship(
            a,
            "r",
            Cardinality::One,
            vec![],
            b,
            "inv",
            Cardinality::One,
            vec![],
        )
        .unwrap();
        let members = visible_members(&g, a);
        assert!(members.contains(&(Symbol::intern("r"), a)));
    }
}
