//! Global string interner: [`Symbol`] is a `u32` handle to a deduplicated,
//! process-lifetime string.
//!
//! Every name the schema graph stores — type names, attribute/operation
//! names, relationship and hierarchy-link paths, key components, `order_by`
//! entries, extents — is interned once and carried as a `Symbol`. Name
//! equality on the hot paths (well-formedness, consistency, diff closure
//! expansion) is then a single integer compare, and nodes that used to own
//! heap `String`s become `Copy`-cheap.
//!
//! Design constraints, in order:
//!
//! * **Append-only, never shrinks.** A `Symbol` minted once stays valid for
//!   the life of the process, so undo-log replay and `Workspace::reset` can
//!   restore before-images by value without re-interning. The backing
//!   strings are leaked (`Box::leak`); the interner is a bounded leak by
//!   construction — one entry per distinct name ever seen.
//! * **`Eq`/`Hash` by id, `Ord` by string.** Equality of interned strings
//!   coincides with id equality, so the fast compare is sound. Ordering
//!   delegates to the string so name-sorted output (canonical ODL, reports,
//!   `BTreeSet` iteration) is unchanged by interning order.
//! * **Lock-light.** Lookups take a read lock; only the first sighting of a
//!   name takes the write lock. `as_str` returns `&'static str`, so
//!   resolved names can outlive any lock scope.

use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{OnceLock, RwLock};

/// An interned string handle. See the module docs for the invariants.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Intern `s`, returning the existing handle if it was seen before.
    pub fn intern(s: &str) -> Symbol {
        let lock = interner();
        if let Some(&id) = lock.read().expect("interner lock poisoned").map.get(s) {
            return Symbol(id);
        }
        let mut w = lock.write().expect("interner lock poisoned");
        // Double-checked: another thread may have interned it between locks.
        if let Some(&id) = w.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(w.strings.len()).expect("interner overflow");
        w.strings.push(leaked);
        w.map.insert(leaked, id);
        Symbol(id)
    }

    /// The handle for `s` if it was ever interned, without inserting.
    /// A name that was never interned cannot name any graph construct, so
    /// `None` doubles as a fast negative existence answer.
    pub fn try_lookup(s: &str) -> Option<Symbol> {
        interner()
            .read()
            .expect("interner lock poisoned")
            .map
            .get(s)
            .map(|&id| Symbol(id))
    }

    /// The interned string. `&'static` because the interner never frees.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner lock poisoned").strings[self.0 as usize]
    }

    /// The raw handle value (stable for the process lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Number of distinct strings interned so far. Monotonic; the
    /// symbol-stability property tests assert it never decreases across
    /// undo/reset replay.
    pub fn interner_len() -> usize {
        interner()
            .read()
            .expect("interner lock poisoned")
            .strings
            .len()
    }
}

impl Deref for Symbol {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

// Ordering by string keeps every name-sorted surface (canonical ODL,
// BTreeSet iteration) independent of interning order. Consistent with
// `Eq`-by-id because the interner deduplicates.
impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.as_str()
    }
}

/// A key with interned attribute names: the graph-side form of
/// [`sws_odl::Key`]. Prints identically to `Key` (single-attribute keys
/// bare, compound keys as `(a, b)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymKey(pub Vec<Symbol>);

impl SymKey {
    /// Intern an AST key.
    pub fn from_key(key: &sws_odl::Key) -> SymKey {
        SymKey(key.0.iter().map(|a| Symbol::intern(a)).collect())
    }

    /// Resolve back to the AST form.
    pub fn to_key(&self) -> sws_odl::Key {
        sws_odl::Key(self.0.iter().map(|s| s.as_str().to_string()).collect())
    }
}

impl fmt::Display for SymKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.len() == 1 {
            f.write_str(self.0[0].as_str())
        } else {
            write!(f, "(")?;
            for (i, s) in self.0.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                f.write_str(s.as_str())?;
            }
            write!(f, ")")
        }
    }
}

impl PartialEq<sws_odl::Key> for SymKey {
    fn eq(&self, other: &sws_odl::Key) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(s, o)| s == o)
    }
}

impl From<&sws_odl::Key> for SymKey {
    fn from(key: &sws_odl::Key) -> SymKey {
        SymKey::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let a = Symbol::intern("intern-test-dedup");
        let b = Symbol::intern("intern-test-dedup");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
        assert_eq!(a.as_str(), "intern-test-dedup");
    }

    #[test]
    fn distinct_strings_distinct_handles() {
        let a = Symbol::intern("intern-test-a");
        let b = Symbol::intern("intern-test-b");
        assert_ne!(a, b);
        assert_ne!(a.index(), b.index());
    }

    #[test]
    fn ordering_is_by_string_not_by_handle() {
        // Intern in reverse lexicographic order: handle order disagrees
        // with name order, Ord must follow the names.
        let z = Symbol::intern("intern-test-zzz");
        let a = Symbol::intern("intern-test-aaa");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn try_lookup_does_not_insert() {
        let before = Symbol::interner_len();
        assert_eq!(Symbol::try_lookup("intern-test-never-inserted-xyzzy"), None);
        assert_eq!(Symbol::interner_len(), before);
        let s = Symbol::intern("intern-test-lookup-hit");
        assert_eq!(Symbol::try_lookup("intern-test-lookup-hit"), Some(s));
    }

    #[test]
    fn str_comparisons_and_deref() {
        let s = Symbol::intern("intern-test-deref");
        assert_eq!(s, "intern-test-deref");
        assert_eq!("intern-test-deref", s);
        assert_eq!(s, "intern-test-deref".to_string());
        assert_eq!(s.len(), "intern-test-deref".len());
        assert_eq!(s.to_string(), "intern-test-deref");
        assert_eq!(format!("{s}"), "intern-test-deref");
        assert_eq!(format!("{s:?}"), "\"intern-test-deref\"");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..64)
                        .map(|j| Symbol::intern(&format!("intern-race-{}", (i + j) % 16)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for row in &all {
            for s in row {
                assert_eq!(*s, Symbol::intern(s.as_str()));
            }
        }
    }

    #[test]
    fn sym_key_round_trips_and_displays_like_key() {
        let single = sws_odl::Key::single("name");
        let compound = sws_odl::Key::compound(["a", "b"]);
        let s1 = SymKey::from_key(&single);
        let s2 = SymKey::from_key(&compound);
        assert_eq!(s1.to_string(), single.to_string());
        assert_eq!(s2.to_string(), compound.to_string());
        assert_eq!(s1.to_key(), single);
        assert_eq!(s2.to_key(), compound);
        assert_eq!(s1, single);
        assert_eq!(s2, compound);
        assert!(s2 != single);
    }
}
