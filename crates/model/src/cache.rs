//! Generation-stamped memoization of the hot [`crate::query`] traversals.
//!
//! A [`QueryCache`] memoizes `ancestors`, `descendants`, `hier_closure`,
//! `generalization_components`, and `visible_members` keyed by their
//! arguments, stamped with the graph's [`SchemaGraph::generation`]. Every
//! mutating method on the graph bumps the generation, so the cache
//! invalidates *wholesale* on the first lookup after any mutation — there is
//! no fine-grained dependency tracking to get wrong, and a cache can never
//! serve stale results for the graph it is paired with.
//!
//! The cache uses interior mutability (`Cell`/`RefCell`) so read-only code
//! paths (precondition constraints, advice, interop) can share one
//! `&QueryCache` without threading `&mut` everywhere. It is intentionally
//! **not `Sync`** (and the compiler enforces it — see the compile-fail
//! doctest on [`QueryCache`]): the unsynchronized `Cell`/`RefCell`
//! interior means a cache shared across scoped worker threads would race
//! on the generation stamp and could serve an entry from a previous
//! generation. It *is* `Send` (memo entries are `Arc`, so a whole
//! `Workspace` can move between threads or live inside a `Mutex` — the
//! design service serializes on exactly that), but a `&QueryCache` never
//! crosses a thread boundary. The parallel consistency checker therefore
//! does not use `QueryCache` at all: it builds one frozen, `Send + Sync`
//! [`ClosureIndex`](crate::ClosureIndex) per sync and shares it by
//! reference across all workers, each paired with a worker-local
//! [`WfScratch`](crate::WfScratch).
//!
//! **Pair one cache with one graph.** A cloned graph starts at its parent's
//! generation but diverges independently, so a cache shared across two
//! graphs could confuse their states. (`Workspace` in `sws-core` keeps one
//! cache for the working schema and one for the shrink wrap schema.)
//!
//! Hits and misses are exposed both as local counters ([`QueryCache::hits`]
//! / [`QueryCache::misses`]) and as sws-trace counters
//! (`model.query_cache.hits`, `model.query_cache.misses`,
//! `model.query_cache.invalidations`).

use crate::graph::SchemaGraph;
use crate::ids::{LinkId, TypeId};
use crate::intern::Symbol;
use crate::query;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;
use sws_odl::HierKind;

/// One memo table: key → shared, immutable result.
type Memo<K, V> = RefCell<HashMap<K, Arc<V>>>;

/// Memoizes hot hierarchy traversals for one [`SchemaGraph`]. See the
/// module docs.
///
/// A `QueryCache` may *move* between threads (`Send`) but can never be
/// *shared* across them — `Sync` is denied by its interior, and the
/// compiler enforces it:
///
/// ```
/// fn require_send<T: Send>() {}
/// require_send::<sws_model::QueryCache>(); // Arc memo entries: Send
/// ```
///
/// ```compile_fail,E0277
/// fn require_sync<T: Sync>() {}
/// require_sync::<sws_model::QueryCache>(); // Cell/RefCell interior: not Sync
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryCache {
    generation: Cell<u64>,
    ancestors: Memo<TypeId, Vec<TypeId>>,
    descendants: Memo<TypeId, Vec<TypeId>>,
    hier_closures: Memo<(HierKind, TypeId), (Vec<TypeId>, Vec<LinkId>)>,
    components: RefCell<Option<Arc<Vec<Vec<TypeId>>>>>,
    visible: Memo<TypeId, Vec<(Symbol, TypeId)>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl QueryCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        QueryCache::default()
    }

    /// Drop every entry whose generation stamp no longer matches `g`.
    fn sync(&self, g: &SchemaGraph) {
        if self.generation.get() != g.generation() {
            self.generation.set(g.generation());
            self.ancestors.borrow_mut().clear();
            self.descendants.borrow_mut().clear();
            self.hier_closures.borrow_mut().clear();
            *self.components.borrow_mut() = None;
            self.visible.borrow_mut().clear();
            sws_trace::counter("model.query_cache.invalidations", 1);
        }
    }

    fn hit(&self) {
        self.hits.set(self.hits.get() + 1);
        sws_trace::counter("model.query_cache.hits", 1);
    }

    fn miss(&self) {
        self.misses.set(self.misses.get() + 1);
        sws_trace::counter("model.query_cache.misses", 1);
    }

    /// Cached [`query::ancestors`].
    pub fn ancestors(&self, g: &SchemaGraph, t: TypeId) -> Arc<Vec<TypeId>> {
        self.sync(g);
        if let Some(v) = self.ancestors.borrow().get(&t) {
            self.hit();
            return Arc::clone(v);
        }
        self.miss();
        let v = Arc::new(query::ancestors(g, t));
        self.ancestors.borrow_mut().insert(t, Arc::clone(&v));
        v
    }

    /// Cached [`query::descendants`].
    pub fn descendants(&self, g: &SchemaGraph, t: TypeId) -> Arc<Vec<TypeId>> {
        self.sync(g);
        if let Some(v) = self.descendants.borrow().get(&t) {
            self.hit();
            return Arc::clone(v);
        }
        self.miss();
        let v = Arc::new(query::descendants(g, t));
        self.descendants.borrow_mut().insert(t, Arc::clone(&v));
        v
    }

    /// Cached [`query::hier_closure`].
    pub fn hier_closure(
        &self,
        g: &SchemaGraph,
        kind: HierKind,
        root: TypeId,
    ) -> Arc<(Vec<TypeId>, Vec<LinkId>)> {
        self.sync(g);
        if let Some(v) = self.hier_closures.borrow().get(&(kind, root)) {
            self.hit();
            return Arc::clone(v);
        }
        self.miss();
        let v = Arc::new(query::hier_closure(g, kind, root));
        self.hier_closures
            .borrow_mut()
            .insert((kind, root), Arc::clone(&v));
        v
    }

    /// Cached [`query::generalization_components`].
    pub fn generalization_components(&self, g: &SchemaGraph) -> Arc<Vec<Vec<TypeId>>> {
        self.sync(g);
        if let Some(v) = self.components.borrow().as_ref() {
            self.hit();
            return Arc::clone(v);
        }
        self.miss();
        let v = Arc::new(query::generalization_components(g));
        *self.components.borrow_mut() = Some(Arc::clone(&v));
        v
    }

    /// Cached [`query::visible_members`].
    pub fn visible_members(&self, g: &SchemaGraph, t: TypeId) -> Arc<Vec<(Symbol, TypeId)>> {
        self.sync(g);
        if let Some(v) = self.visible.borrow().get(&t) {
            self.hit();
            return Arc::clone(v);
        }
        self.miss();
        let v = Arc::new(query::visible_members(g, t));
        self.visible.borrow_mut().insert(t, Arc::clone(&v));
        v
    }

    /// [`query::is_ancestor`] answered from the cached ancestor set.
    pub fn is_ancestor(&self, g: &SchemaGraph, a: TypeId, b: TypeId) -> bool {
        self.ancestors(g, b).contains(&a)
    }

    /// [`query::on_same_generalization_path`] answered from cached ancestor
    /// sets.
    pub fn on_same_generalization_path(&self, g: &SchemaGraph, a: TypeId, b: TypeId) -> bool {
        a == b || self.is_ancestor(g, a, b) || self.is_ancestor(g, b, a)
    }

    /// The graph generation the cached entries are stamped with. After any
    /// lookup this equals the paired graph's
    /// [`generation`](SchemaGraph::generation); the stale-generation
    /// regression tests assert it.
    pub fn generation(&self) -> u64 {
        self.generation.get()
    }

    /// Lifetime hit count (monotonic, survives invalidation).
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lifetime miss count (monotonic, survives invalidation).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (SchemaGraph, TypeId, TypeId, TypeId) {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        let c = g.add_type("C").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_supertype(c, b).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn repeated_lookups_hit() {
        let (g, a, _, c) = chain();
        let qc = QueryCache::new();
        assert_eq!(*qc.ancestors(&g, c), query::ancestors(&g, c));
        assert_eq!(qc.misses(), 1);
        assert_eq!(*qc.ancestors(&g, c), query::ancestors(&g, c));
        assert_eq!(qc.hits(), 1);
        assert!(qc.is_ancestor(&g, a, c));
        assert_eq!(qc.hits(), 2);
    }

    #[test]
    fn mutation_invalidates_wholesale() {
        let (mut g, a, b, c) = chain();
        let qc = QueryCache::new();
        assert_eq!(qc.ancestors(&g, c).len(), 2);
        g.remove_supertype(c, b).unwrap();
        // Same cache, new generation: the stale entry must not be served.
        assert_eq!(qc.ancestors(&g, c).len(), 0);
        assert_eq!(*qc.descendants(&g, a), query::descendants(&g, a));
        assert_eq!(qc.hits(), 0);
    }

    #[test]
    fn concurrent_readers_never_observe_stale_generation() {
        // The parallel checker's sharing pattern: the graph is shared
        // read-only across scoped threads, each worker builds its own
        // cache. Mutate the graph between fan-outs; every worker's cache
        // must stamp itself with the *current* generation on first lookup
        // and serve results identical to an uncached traversal.
        let (mut g, a, b, c) = chain();
        for round in 0..3u64 {
            if round == 1 {
                g.remove_supertype(c, b).unwrap();
            } else if round == 2 {
                g.add_supertype(c, b).unwrap();
            }
            let generation = g.generation();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let g = &g;
                        scope.spawn(move || {
                            let qc = QueryCache::new();
                            let anc = qc.ancestors(g, c).as_ref().clone();
                            let desc = qc.descendants(g, a).as_ref().clone();
                            // Repeat lookups: hits must serve the same
                            // generation's entries.
                            assert_eq!(*qc.ancestors(g, c), anc);
                            assert!(qc.hits() >= 1);
                            (qc.generation(), anc, desc)
                        })
                    })
                    .collect();
                for h in handles {
                    let (gen_seen, anc, desc) = h.join().unwrap();
                    assert_eq!(gen_seen, generation, "stale generation stamp");
                    assert_eq!(anc, query::ancestors(&g, c));
                    assert_eq!(desc, query::descendants(&g, a));
                }
            });
        }
    }

    #[test]
    fn all_traversals_match_uncached() {
        let (mut g, a, _, c) = chain();
        let d = g.add_type("D").unwrap();
        g.add_link(
            sws_odl::HierKind::PartOf,
            a,
            "ds",
            sws_odl::CollectionKind::Set,
            vec![],
            d,
            "a_of",
        )
        .unwrap();
        g.add_attribute(a, "x", sws_odl::DomainType::Long, None)
            .unwrap();
        let qc = QueryCache::new();
        assert_eq!(*qc.descendants(&g, a), query::descendants(&g, a));
        assert_eq!(
            *qc.hier_closure(&g, HierKind::PartOf, a),
            query::hier_closure(&g, HierKind::PartOf, a)
        );
        assert_eq!(
            *qc.generalization_components(&g),
            query::generalization_components(&g)
        );
        assert_eq!(*qc.visible_members(&g, c), query::visible_members(&g, c));
        assert_eq!(
            qc.on_same_generalization_path(&g, a, c),
            query::on_same_generalization_path(&g, a, c)
        );
    }
}
