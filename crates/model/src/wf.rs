//! Graph-level well-formedness checking.
//!
//! These are the structural consistency checks the interactive designer runs
//! after modifications to "discover problems in the user schema" (paper §1.2)
//! — the ones expressible on the graph alone. Cross-concept-schema
//! interaction checks live in `sws-core::consistency` on top of these.

use crate::cache::QueryCache;
use crate::graph::SchemaGraph;
use crate::ids::TypeId;
use crate::query;
use std::collections::BTreeSet;
use std::fmt;
use sws_odl::HierKind;

/// One well-formedness finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WfIssue {
    /// A non-operation member shadows a member inherited from an ancestor
    /// (operations may override operations; everything else may not shadow).
    InheritedMemberConflict {
        ty: String,
        member: String,
        ancestor: String,
    },
    /// A key references an attribute not visible on the type.
    KeyAttributeMissing {
        ty: String,
        key: String,
        attribute: String,
    },
    /// An order-by list references an attribute not visible on the target.
    OrderByAttributeMissing {
        ty: String,
        path: String,
        target: String,
        attribute: String,
    },
    /// An attribute domain references a type that is not in the schema.
    DanglingAttrDomain {
        ty: String,
        attribute: String,
        referenced: String,
    },
    /// An operation signature references a type that is not in the schema.
    DanglingOpType {
        ty: String,
        operation: String,
        referenced: String,
    },
    /// A generalization cycle (defensive; mutators prevent this).
    GeneralizationCycle { ty: String },
    /// A part-of / instance-of cycle (defensive; mutators prevent this).
    HierarchyCycle { kind: HierKind, ty: String },
}

impl fmt::Display for WfIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WfIssue::InheritedMemberConflict { ty, member, ancestor } => write!(
                f,
                "member `{ty}::{member}` conflicts with a member inherited from `{ancestor}`"
            ),
            WfIssue::KeyAttributeMissing { ty, key, attribute } => write!(
                f,
                "key `{key}` of `{ty}` references attribute `{attribute}`, which is not visible"
            ),
            WfIssue::OrderByAttributeMissing { ty, path, target, attribute } => write!(
                f,
                "`{ty}::{path}` orders by `{attribute}`, which is not visible on `{target}`"
            ),
            WfIssue::DanglingAttrDomain { ty, attribute, referenced } => write!(
                f,
                "attribute `{ty}::{attribute}` references `{referenced}`, which is not in the schema"
            ),
            WfIssue::DanglingOpType { ty, operation, referenced } => write!(
                f,
                "operation `{ty}::{operation}` references `{referenced}`, which is not in the schema"
            ),
            WfIssue::GeneralizationCycle { ty } => {
                write!(f, "`{ty}` participates in a generalization cycle")
            }
            WfIssue::HierarchyCycle { kind, ty } => {
                write!(f, "`{ty}` participates in a {kind} cycle")
            }
        }
    }
}

/// Check the whole graph, returning every finding (empty = well-formed).
///
/// Convenience wrapper over [`check_well_formed_with`] with a throwaway
/// [`QueryCache`] (still worthwhile: one full pass re-walks the same
/// ancestor chains many times over).
pub fn check_well_formed(g: &SchemaGraph) -> Vec<WfIssue> {
    check_well_formed_with(g, &QueryCache::new())
}

/// Check the whole graph using (and filling) the caller's [`QueryCache`].
///
/// The result is exactly the union of [`check_type_well_formed`] over every
/// live type — the incremental consistency engine in `sws-core` relies on
/// this decomposition.
pub fn check_well_formed_with(g: &SchemaGraph, qc: &QueryCache) -> Vec<WfIssue> {
    let mut sp = sws_trace::span!("model.wf", types = g.type_count());
    let check_gen_cycles = g.type_count() < 10_000;
    let mut issues = Vec::new();
    for (id, _) in g.types() {
        check_one_type(g, qc, id, check_gen_cycles, &mut issues);
    }
    sp.record("issues", issues.len());
    issues
}

/// Every well-formedness finding attributable to type `id`: inherited-member
/// conflicts, key and dangling references, cycle participation, and the
/// order-by lists of relationship ends owned by `id` and of links parented
/// by `id`. The union over all live types equals [`check_well_formed`].
pub fn check_type_well_formed(g: &SchemaGraph, qc: &QueryCache, id: TypeId) -> Vec<WfIssue> {
    let mut issues = Vec::new();
    check_one_type(g, qc, id, g.type_count() < 10_000, &mut issues);
    issues
}

fn check_one_type(
    g: &SchemaGraph,
    qc: &QueryCache,
    id: TypeId,
    check_gen_cycles: bool,
    issues: &mut Vec<WfIssue>,
) {
    let node = g.ty(id);
    check_inherited_conflicts(g, qc, id, issues);
    check_keys(g, qc, id, issues);
    check_dangling(g, id, issues);
    if check_gen_cycles && has_gen_cycle(g, id) {
        issues.push(WfIssue::GeneralizationCycle {
            ty: node.name.clone(),
        });
    }
    for kind in [HierKind::PartOf, HierKind::InstanceOf] {
        if has_hier_cycle(g, kind, id) {
            issues.push(WfIssue::HierarchyCycle {
                kind,
                ty: node.name.clone(),
            });
        }
    }
    check_order_bys(g, qc, id, issues);
}

/// True if `attr` is an attribute of `t` or of one of its ancestors.
fn attr_visible(g: &SchemaGraph, qc: &QueryCache, t: TypeId, attr: &str) -> bool {
    if g.find_attr(t, attr).is_some() {
        return true;
    }
    qc.ancestors(g, t)
        .iter()
        .any(|&anc| g.find_attr(anc, attr).is_some())
}

fn check_inherited_conflicts(
    g: &SchemaGraph,
    qc: &QueryCache,
    id: TypeId,
    issues: &mut Vec<WfIssue>,
) {
    let node = g.ty(id);
    // Own non-operation member names; operations may override operations.
    let mut own: Vec<(&str, bool)> = Vec::new(); // (name, is_operation)
    for &a in &node.attrs {
        own.push((&g.attr(a).name, false));
    }
    for &(r, e) in &node.rel_ends {
        own.push((&g.rel(r).end(e).path, false));
    }
    for &l in &node.parent_links {
        own.push((&g.link(l).parent_path, false));
    }
    for &l in &node.child_links {
        own.push((&g.link(l).child_path, false));
    }
    for &o in &node.ops {
        own.push((&g.op(o).op.name, true));
    }
    for &anc in qc.ancestors(g, id).iter() {
        let anc_node = g.ty(anc);
        let anc_members: BTreeSet<&str> = anc_node
            .attrs
            .iter()
            .map(|&a| g.attr(a).name.as_str())
            .chain(
                anc_node
                    .rel_ends
                    .iter()
                    .map(|&(r, e)| g.rel(r).end(e).path.as_str()),
            )
            .chain(
                anc_node
                    .parent_links
                    .iter()
                    .map(|&l| g.link(l).parent_path.as_str()),
            )
            .chain(
                anc_node
                    .child_links
                    .iter()
                    .map(|&l| g.link(l).child_path.as_str()),
            )
            .collect();
        let anc_ops: BTreeSet<&str> = anc_node
            .ops
            .iter()
            .map(|&o| g.op(o).op.name.as_str())
            .collect();
        for &(name, is_op) in &own {
            let conflict = if is_op {
                // Operation may override an ancestor operation, but not
                // shadow an ancestor attribute / path.
                anc_members.contains(name)
            } else {
                anc_members.contains(name) || anc_ops.contains(name)
            };
            if conflict {
                issues.push(WfIssue::InheritedMemberConflict {
                    ty: node.name.clone(),
                    member: name.to_string(),
                    ancestor: anc_node.name.clone(),
                });
            }
        }
    }
}

fn check_keys(g: &SchemaGraph, qc: &QueryCache, id: TypeId, issues: &mut Vec<WfIssue>) {
    let node = g.ty(id);
    for key in &node.keys {
        for attr in &key.0 {
            if !attr_visible(g, qc, id, attr) {
                issues.push(WfIssue::KeyAttributeMissing {
                    ty: node.name.clone(),
                    key: key.to_string(),
                    attribute: attr.clone(),
                });
            }
        }
    }
}

/// Order-by findings attributed to `id`: relationship ends owned by `id`
/// (checked against the opposite end's owner) and links parented by `id`
/// (checked against the child type).
fn check_order_bys(g: &SchemaGraph, qc: &QueryCache, id: TypeId, issues: &mut Vec<WfIssue>) {
    let node = g.ty(id);
    for &(r, e) in &node.rel_ends {
        let rel = g.rel(r);
        let end = rel.end(e);
        let target = rel.other(e).owner;
        for attr in &end.order_by {
            if !attr_visible(g, qc, target, attr) {
                issues.push(WfIssue::OrderByAttributeMissing {
                    ty: g.type_name(end.owner).to_string(),
                    path: end.path.clone(),
                    target: g.type_name(target).to_string(),
                    attribute: attr.clone(),
                });
            }
        }
    }
    for &l in &node.parent_links {
        let link = g.link(l);
        for attr in &link.order_by {
            if !attr_visible(g, qc, link.child, attr) {
                issues.push(WfIssue::OrderByAttributeMissing {
                    ty: g.type_name(link.parent).to_string(),
                    path: link.parent_path.clone(),
                    target: g.type_name(link.child).to_string(),
                    attribute: attr.clone(),
                });
            }
        }
    }
}

fn check_dangling(g: &SchemaGraph, id: TypeId, issues: &mut Vec<WfIssue>) {
    let node = g.ty(id);
    for &a in &node.attrs {
        let attr = g.attr(a);
        let mut refs = Vec::new();
        attr.ty.referenced_types(&mut refs);
        for r in refs {
            if g.type_id(r).is_none() {
                issues.push(WfIssue::DanglingAttrDomain {
                    ty: node.name.clone(),
                    attribute: attr.name.clone(),
                    referenced: r.to_string(),
                });
            }
        }
    }
    for &o in &node.ops {
        let op = g.op(o);
        let mut refs = Vec::new();
        op.op.return_type.referenced_types(&mut refs);
        for p in &op.op.args {
            p.ty.referenced_types(&mut refs);
        }
        for r in refs {
            if g.type_id(r).is_none() {
                issues.push(WfIssue::DanglingOpType {
                    ty: node.name.clone(),
                    operation: op.op.name.clone(),
                    referenced: r.to_string(),
                });
            }
        }
    }
}

fn has_gen_cycle(g: &SchemaGraph, start: TypeId) -> bool {
    // Is `start` reachable from itself via supertype edges?
    let mut stack: Vec<TypeId> = g.ty(start).supertypes.clone();
    let mut seen = BTreeSet::new();
    while let Some(t) = stack.pop() {
        if t == start {
            return true;
        }
        if seen.insert(t) {
            stack.extend(g.ty(t).supertypes.iter().copied());
        }
    }
    false
}

fn has_hier_cycle(g: &SchemaGraph, kind: HierKind, start: TypeId) -> bool {
    let mut stack: Vec<TypeId> = query::hier_parents(g, kind, start)
        .into_iter()
        .map(|(_, p)| p)
        .collect();
    let mut seen = BTreeSet::new();
    while let Some(t) = stack.pop() {
        if t == start {
            return true;
        }
        if seen.insert(t) {
            stack.extend(query::hier_parents(g, kind, t).into_iter().map(|(_, p)| p));
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_odl::{Cardinality, DomainType, Key, Operation};

    #[test]
    fn clean_graph_passes() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_attribute(a, "name", DomainType::String, None)
            .unwrap();
        g.add_key(a, Key::single("name")).unwrap();
        g.add_relationship(
            a,
            "bs",
            Cardinality::Many(sws_odl::CollectionKind::Set),
            vec!["tag".into()],
            b,
            "a_of",
            Cardinality::One,
            vec![],
        )
        .unwrap();
        g.add_attribute(b, "tag", DomainType::Long, None).unwrap();
        assert!(check_well_formed(&g).is_empty());
    }

    #[test]
    fn inherited_attribute_shadowing_flagged() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_attribute(a, "x", DomainType::Long, None).unwrap();
        g.add_attribute(b, "x", DomainType::String, None).unwrap();
        let issues = check_well_formed(&g);
        assert!(issues.iter().any(
            |i| matches!(i, WfIssue::InheritedMemberConflict { member, .. } if member == "x")
        ));
    }

    #[test]
    fn operation_override_not_flagged() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_operation(a, Operation::nullary("f", DomainType::Void))
            .unwrap();
        g.add_operation(b, Operation::nullary("f", DomainType::Long))
            .unwrap();
        assert!(check_well_formed(&g).is_empty());
    }

    #[test]
    fn operation_shadowing_attribute_flagged() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_attribute(a, "f", DomainType::Long, None).unwrap();
        g.add_operation(b, Operation::nullary("f", DomainType::Void))
            .unwrap();
        let issues = check_well_formed(&g);
        assert!(issues
            .iter()
            .any(|i| matches!(i, WfIssue::InheritedMemberConflict { .. })));
    }

    #[test]
    fn key_over_inherited_attribute_ok() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_attribute(a, "id", DomainType::Long, None).unwrap();
        g.add_key(b, Key::single("id")).unwrap();
        assert!(check_well_formed(&g).is_empty());
    }

    #[test]
    fn key_over_missing_attribute_flagged() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        g.add_key(a, Key::single("ghost")).unwrap();
        let issues = check_well_formed(&g);
        assert!(issues
            .iter()
            .any(|i| matches!(i, WfIssue::KeyAttributeMissing { .. })));
    }

    #[test]
    fn dangling_attr_domain_flagged() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        g.add_attribute(
            a,
            "gs",
            DomainType::set_of(DomainType::named("Ghost")),
            None,
        )
        .unwrap();
        let issues = check_well_formed(&g);
        assert!(issues.iter().any(
            |i| matches!(i, WfIssue::DanglingAttrDomain { referenced, .. } if referenced == "Ghost")
        ));
    }

    #[test]
    fn dangling_op_type_flagged() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        g.add_operation(a, Operation::nullary("make", DomainType::named("Ghost")))
            .unwrap();
        let issues = check_well_formed(&g);
        assert!(issues
            .iter()
            .any(|i| matches!(i, WfIssue::DanglingOpType { .. })));
    }

    #[test]
    fn order_by_missing_on_target_flagged() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_relationship(
            a,
            "bs",
            Cardinality::Many(sws_odl::CollectionKind::Set),
            vec!["ghost".into()],
            b,
            "a_of",
            Cardinality::One,
            vec![],
        )
        .unwrap();
        let issues = check_well_formed(&g);
        assert!(issues
            .iter()
            .any(|i| matches!(i, WfIssue::OrderByAttributeMissing { .. })));
    }

    #[test]
    fn issues_display() {
        let issue = WfIssue::KeyAttributeMissing {
            ty: "A".into(),
            key: "k".into(),
            attribute: "x".into(),
        };
        assert!(issue.to_string().contains("key `k`"));
    }
}
