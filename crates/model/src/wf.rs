//! Graph-level well-formedness checking.
//!
//! These are the structural consistency checks the interactive designer runs
//! after modifications to "discover problems in the user schema" (paper §1.2)
//! — the ones expressible on the graph alone. Cross-concept-schema
//! interaction checks live in `sws-core::consistency` on top of these.
//!
//! The checks are written against the [`Adjacency`] abstraction and a
//! caller-owned [`WfScratch`], so the same code serves both execution modes:
//!
//! * the serial incremental path walks the live [`SchemaGraph`] directly with
//!   a persistent scratch — zero allocations in steady state;
//! * the parallel path hands every worker a shared frozen
//!   [`ClosureIndex`](crate::ClosureIndex) plus a worker-local scratch.
//!
//! All member-name comparisons are [`Symbol`] integer compares; strings are
//! only touched when a finding is *rendered*.

use crate::graph::SchemaGraph;
use crate::ids::TypeId;
use crate::index::{Adjacency, ClosureScratch};
use crate::intern::{SymKey, Symbol};
use std::fmt;
use sws_odl::HierKind;

/// One well-formedness finding. Names are interned symbols; rendering
/// resolves them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WfIssue {
    /// A non-operation member shadows a member inherited from an ancestor
    /// (operations may override operations; everything else may not shadow).
    InheritedMemberConflict {
        ty: Symbol,
        member: Symbol,
        ancestor: Symbol,
    },
    /// A key references an attribute not visible on the type.
    KeyAttributeMissing {
        ty: Symbol,
        key: SymKey,
        attribute: Symbol,
    },
    /// An order-by list references an attribute not visible on the target.
    OrderByAttributeMissing {
        ty: Symbol,
        path: Symbol,
        target: Symbol,
        attribute: Symbol,
    },
    /// An attribute domain references a type that is not in the schema.
    DanglingAttrDomain {
        ty: Symbol,
        attribute: Symbol,
        referenced: Symbol,
    },
    /// An operation signature references a type that is not in the schema.
    DanglingOpType {
        ty: Symbol,
        operation: Symbol,
        referenced: Symbol,
    },
    /// A generalization cycle (defensive; mutators prevent this).
    GeneralizationCycle { ty: Symbol },
    /// A part-of / instance-of cycle (defensive; mutators prevent this).
    HierarchyCycle { kind: HierKind, ty: Symbol },
}

impl fmt::Display for WfIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WfIssue::InheritedMemberConflict { ty, member, ancestor } => write!(
                f,
                "member `{ty}::{member}` conflicts with a member inherited from `{ancestor}`"
            ),
            WfIssue::KeyAttributeMissing { ty, key, attribute } => write!(
                f,
                "key `{key}` of `{ty}` references attribute `{attribute}`, which is not visible"
            ),
            WfIssue::OrderByAttributeMissing { ty, path, target, attribute } => write!(
                f,
                "`{ty}::{path}` orders by `{attribute}`, which is not visible on `{target}`"
            ),
            WfIssue::DanglingAttrDomain { ty, attribute, referenced } => write!(
                f,
                "attribute `{ty}::{attribute}` references `{referenced}`, which is not in the schema"
            ),
            WfIssue::DanglingOpType { ty, operation, referenced } => write!(
                f,
                "operation `{ty}::{operation}` references `{referenced}`, which is not in the schema"
            ),
            WfIssue::GeneralizationCycle { ty } => {
                write!(f, "`{ty}` participates in a generalization cycle")
            }
            WfIssue::HierarchyCycle { kind, ty } => {
                write!(f, "`{ty}` participates in a {kind} cycle")
            }
        }
    }
}

/// Reusable per-checker state: traversal scratch plus the ancestor buffers
/// the checks fill. One per worker on the parallel path; persistent inside
/// the consistency engine on the serial path.
#[derive(Debug, Clone, Default)]
pub struct WfScratch {
    /// Epoch-marked traversal state, reusable for any closure walk over
    /// the same graph (the consistency engine borrows it to expand dirty
    /// sets between rechecks).
    pub closure: ClosureScratch,
    /// Ancestors of the type under check.
    pub ancestors: Vec<TypeId>,
    /// Ancestors of an order-by target type.
    pub target_ancestors: Vec<TypeId>,
}

impl WfScratch {
    /// Size the visited tables for the graph. On the zero-allocation hot
    /// path, call this before entering the measured span.
    pub fn ensure_slots(&mut self, type_slots: usize, link_slots: usize) {
        self.closure.ensure_slots(type_slots, link_slots);
        // Ancestor sets are bounded by the number of type slots; reserving
        // here keeps the per-type checks allocation-free.
        self.ancestors
            .reserve(type_slots.saturating_sub(self.ancestors.capacity()));
        self.target_ancestors
            .reserve(type_slots.saturating_sub(self.target_ancestors.capacity()));
    }
}

/// Check the whole graph, returning every finding (empty = well-formed).
pub fn check_well_formed(g: &SchemaGraph) -> Vec<WfIssue> {
    let mut sp = sws_trace::span!("model.wf", types = g.type_count());
    let check_gen_cycles = g.type_count() < 10_000;
    let mut scratch = WfScratch::default();
    scratch.ensure_slots(g.type_slots(), g.link_slots());
    let mut issues = Vec::new();
    for (id, _) in g.types() {
        check_type_into(g, g, &mut scratch, id, check_gen_cycles, &mut issues);
    }
    sp.record("issues", issues.len());
    issues
}

/// Every well-formedness finding attributable to type `id`, as a fresh
/// `Vec` (convenience wrapper over [`check_type_into`] with a throwaway
/// scratch). The union over all live types equals [`check_well_formed`].
pub fn check_type_well_formed(g: &SchemaGraph, id: TypeId) -> Vec<WfIssue> {
    let mut scratch = WfScratch::default();
    scratch.ensure_slots(g.type_slots(), g.link_slots());
    let mut issues = Vec::new();
    check_type_into(g, g, &mut scratch, id, g.type_count() < 10_000, &mut issues);
    issues
}

/// Every well-formedness finding attributable to type `id`: inherited-member
/// conflicts, key and dangling references, cycle participation, and the
/// order-by lists of relationship ends owned by `id` and of links parented
/// by `id`.
///
/// `adj` supplies hierarchy edges — pass `g` itself (serial) or a frozen
/// [`ClosureIndex`](crate::ClosureIndex) snapshot of the same generation
/// (parallel). Findings are appended to `issues`; in steady state (warm
/// scratch, no findings) the call performs zero heap allocations.
pub fn check_type_into<A: Adjacency>(
    g: &SchemaGraph,
    adj: &A,
    scratch: &mut WfScratch,
    id: TypeId,
    check_gen_cycles: bool,
    issues: &mut Vec<WfIssue>,
) {
    let node = g.ty(id);
    let WfScratch {
        closure,
        ancestors,
        target_ancestors,
    } = scratch;
    closure.ancestors_into(adj, id, ancestors);
    check_inherited_conflicts(g, ancestors, id, issues);
    check_keys(g, ancestors, id, issues);
    check_dangling(g, id, issues);
    if check_gen_cycles && closure.has_gen_cycle(adj, id) {
        issues.push(WfIssue::GeneralizationCycle { ty: node.name });
    }
    for kind in [HierKind::PartOf, HierKind::InstanceOf] {
        if closure.has_hier_cycle(adj, kind, id) {
            issues.push(WfIssue::HierarchyCycle {
                kind,
                ty: node.name,
            });
        }
    }
    check_order_bys(g, adj, closure, target_ancestors, id, issues);
}

/// True if `owner` itself defines attribute `attr`.
fn has_own_attr(g: &SchemaGraph, owner: TypeId, attr: Symbol) -> bool {
    g.ty(owner).attrs.iter().any(|&a| g.attr(a).name == attr)
}

/// True if `attr` is an attribute of `t` or of one of `ancestors`.
fn attr_visible(g: &SchemaGraph, ancestors: &[TypeId], t: TypeId, attr: Symbol) -> bool {
    has_own_attr(g, t, attr) || ancestors.iter().any(|&anc| has_own_attr(g, anc, attr))
}

/// True if `anc` defines `name` as a non-operation member (attribute,
/// relationship path, or hierarchy-link path).
fn defines_non_op(g: &SchemaGraph, anc: TypeId, name: Symbol) -> bool {
    let n = g.ty(anc);
    n.attrs.iter().any(|&a| g.attr(a).name == name)
        || n.rel_ends
            .iter()
            .any(|&(r, e)| g.rel(r).end(e).path == name)
        || n.parent_links
            .iter()
            .any(|&l| g.link(l).parent_path == name)
        || n.child_links.iter().any(|&l| g.link(l).child_path == name)
}

/// True if `anc` defines an operation named `name`.
fn defines_op(g: &SchemaGraph, anc: TypeId, name: Symbol) -> bool {
    g.ty(anc).ops.iter().any(|&o| g.op(o).name == name)
}

fn check_inherited_conflicts(
    g: &SchemaGraph,
    ancestors: &[TypeId],
    id: TypeId,
    issues: &mut Vec<WfIssue>,
) {
    let node = g.ty(id);
    // For each ancestor, scan the own members in declaration-kind order
    // (attributes, relationship ends, parent links, child links, then
    // operations). Operations may override ancestor operations but may not
    // shadow ancestor attributes / paths; everything else may shadow
    // nothing. All probes are symbol compares against the ancestor's own
    // member lists — no sets, no allocation.
    for &anc in ancestors {
        let anc_name = g.ty(anc).name;
        let own_member = |name: Symbol, is_op: bool, issues: &mut Vec<WfIssue>| {
            let conflict = if is_op {
                defines_non_op(g, anc, name)
            } else {
                defines_non_op(g, anc, name) || defines_op(g, anc, name)
            };
            if conflict {
                issues.push(WfIssue::InheritedMemberConflict {
                    ty: node.name,
                    member: name,
                    ancestor: anc_name,
                });
            }
        };
        for &a in &node.attrs {
            own_member(g.attr(a).name, false, issues);
        }
        for &(r, e) in &node.rel_ends {
            own_member(g.rel(r).end(e).path, false, issues);
        }
        for &l in &node.parent_links {
            own_member(g.link(l).parent_path, false, issues);
        }
        for &l in &node.child_links {
            own_member(g.link(l).child_path, false, issues);
        }
        for &o in &node.ops {
            own_member(g.op(o).name, true, issues);
        }
    }
}

fn check_keys(g: &SchemaGraph, ancestors: &[TypeId], id: TypeId, issues: &mut Vec<WfIssue>) {
    let node = g.ty(id);
    for key in &node.keys {
        for &attr in &key.0 {
            if !attr_visible(g, ancestors, id, attr) {
                issues.push(WfIssue::KeyAttributeMissing {
                    ty: node.name,
                    key: key.clone(),
                    attribute: attr,
                });
            }
        }
    }
}

/// Order-by findings attributed to `id`: relationship ends owned by `id`
/// (checked against the opposite end's owner) and links parented by `id`
/// (checked against the child type).
fn check_order_bys<A: Adjacency>(
    g: &SchemaGraph,
    adj: &A,
    closure: &mut ClosureScratch,
    target_ancestors: &mut Vec<TypeId>,
    id: TypeId,
    issues: &mut Vec<WfIssue>,
) {
    let node = g.ty(id);
    for &(r, e) in &node.rel_ends {
        let rel = g.rel(r);
        let end = rel.end(e);
        if end.order_by.is_empty() {
            continue;
        }
        let target = rel.other(e).owner;
        closure.ancestors_into(adj, target, target_ancestors);
        for &attr in &end.order_by {
            if !attr_visible(g, target_ancestors, target, attr) {
                issues.push(WfIssue::OrderByAttributeMissing {
                    ty: g.ty(end.owner).name,
                    path: end.path,
                    target: g.ty(target).name,
                    attribute: attr,
                });
            }
        }
    }
    for &l in &node.parent_links {
        let link = g.link(l);
        if link.order_by.is_empty() {
            continue;
        }
        closure.ancestors_into(adj, link.child, target_ancestors);
        for &attr in &link.order_by {
            if !attr_visible(g, target_ancestors, link.child, attr) {
                issues.push(WfIssue::OrderByAttributeMissing {
                    ty: g.ty(link.parent).name,
                    path: link.parent_path,
                    target: g.ty(link.child).name,
                    attribute: attr,
                });
            }
        }
    }
}

fn check_dangling(g: &SchemaGraph, id: TypeId, issues: &mut Vec<WfIssue>) {
    let node = g.ty(id);
    for &a in &node.attrs {
        let attr = g.attr(a);
        attr.ty.for_each_named_ref(&mut |r| {
            if g.type_id(r).is_none() {
                issues.push(WfIssue::DanglingAttrDomain {
                    ty: node.name,
                    attribute: attr.name,
                    referenced: Symbol::intern(r),
                });
            }
        });
    }
    for &o in &node.ops {
        let op = g.op(o);
        let mut check_ref = |r: &str| {
            if g.type_id(r).is_none() {
                issues.push(WfIssue::DanglingOpType {
                    ty: node.name,
                    operation: op.name,
                    referenced: Symbol::intern(r),
                });
            }
        };
        op.op.return_type.for_each_named_ref(&mut check_ref);
        for p in &op.op.args {
            p.ty.for_each_named_ref(&mut check_ref);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_odl::{Cardinality, DomainType, Key, Operation};

    #[test]
    fn clean_graph_passes() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_attribute(a, "name", DomainType::String, None)
            .unwrap();
        g.add_key(a, Key::single("name")).unwrap();
        g.add_relationship(
            a,
            "bs",
            Cardinality::Many(sws_odl::CollectionKind::Set),
            vec!["tag".into()],
            b,
            "a_of",
            Cardinality::One,
            vec![],
        )
        .unwrap();
        g.add_attribute(b, "tag", DomainType::Long, None).unwrap();
        assert!(check_well_formed(&g).is_empty());
    }

    #[test]
    fn inherited_attribute_shadowing_flagged() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_attribute(a, "x", DomainType::Long, None).unwrap();
        g.add_attribute(b, "x", DomainType::String, None).unwrap();
        let issues = check_well_formed(&g);
        assert!(issues.iter().any(
            |i| matches!(i, WfIssue::InheritedMemberConflict { member, .. } if *member == "x")
        ));
    }

    #[test]
    fn operation_override_not_flagged() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_operation(a, Operation::nullary("f", DomainType::Void))
            .unwrap();
        g.add_operation(b, Operation::nullary("f", DomainType::Long))
            .unwrap();
        assert!(check_well_formed(&g).is_empty());
    }

    #[test]
    fn operation_shadowing_attribute_flagged() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_attribute(a, "f", DomainType::Long, None).unwrap();
        g.add_operation(b, Operation::nullary("f", DomainType::Void))
            .unwrap();
        let issues = check_well_formed(&g);
        assert!(issues
            .iter()
            .any(|i| matches!(i, WfIssue::InheritedMemberConflict { .. })));
    }

    #[test]
    fn key_over_inherited_attribute_ok() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_attribute(a, "id", DomainType::Long, None).unwrap();
        g.add_key(b, Key::single("id")).unwrap();
        assert!(check_well_formed(&g).is_empty());
    }

    #[test]
    fn key_over_missing_attribute_flagged() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        g.add_key(a, Key::single("ghost")).unwrap();
        let issues = check_well_formed(&g);
        assert!(issues
            .iter()
            .any(|i| matches!(i, WfIssue::KeyAttributeMissing { .. })));
    }

    #[test]
    fn dangling_attr_domain_flagged() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        g.add_attribute(
            a,
            "gs",
            DomainType::set_of(DomainType::named("Ghost")),
            None,
        )
        .unwrap();
        let issues = check_well_formed(&g);
        assert!(issues.iter().any(
            |i| matches!(i, WfIssue::DanglingAttrDomain { referenced, .. } if *referenced == "Ghost")
        ));
    }

    #[test]
    fn dangling_op_type_flagged() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        g.add_operation(a, Operation::nullary("make", DomainType::named("Ghost")))
            .unwrap();
        let issues = check_well_formed(&g);
        assert!(issues
            .iter()
            .any(|i| matches!(i, WfIssue::DanglingOpType { .. })));
    }

    #[test]
    fn order_by_missing_on_target_flagged() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_relationship(
            a,
            "bs",
            Cardinality::Many(sws_odl::CollectionKind::Set),
            vec!["ghost".into()],
            b,
            "a_of",
            Cardinality::One,
            vec![],
        )
        .unwrap();
        let issues = check_well_formed(&g);
        assert!(issues
            .iter()
            .any(|i| matches!(i, WfIssue::OrderByAttributeMissing { .. })));
    }

    #[test]
    fn shared_index_backend_matches_graph_backend() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_attribute(a, "x", DomainType::Long, None).unwrap();
        g.add_attribute(b, "x", DomainType::String, None).unwrap();
        g.add_key(b, Key::single("ghost")).unwrap();
        let idx = crate::ClosureIndex::build(&g);
        let mut scratch = WfScratch::default();
        scratch.ensure_slots(g.type_slots(), g.link_slots());
        let (mut via_graph, mut via_index) = (Vec::new(), Vec::new());
        for (id, _) in g.types() {
            check_type_into(&g, &g, &mut scratch, id, true, &mut via_graph);
            check_type_into(&g, &idx, &mut scratch, id, true, &mut via_index);
        }
        assert_eq!(via_graph, via_index);
        assert_eq!(via_graph, check_well_formed(&g));
    }

    #[test]
    fn issues_display() {
        let issue = WfIssue::KeyAttributeMissing {
            ty: "A".into(),
            key: SymKey(vec!["k".into()]),
            attribute: "x".into(),
        };
        assert!(issue.to_string().contains("key `k`"));
    }
}
