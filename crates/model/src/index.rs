//! Frozen CSR adjacency index and allocation-free traversal scratch.
//!
//! The hierarchy traversals (ancestors, descendants, part-of / instance-of
//! closures, cycle probes) used to allocate a fresh `Vec` + `BTreeSet` per
//! call. This module removes both costs:
//!
//! * [`Adjacency`] abstracts edge iteration so one set of traversal routines
//!   serves two backends: the live [`SchemaGraph`] (serial incremental path —
//!   no index build needed) and a frozen [`ClosureIndex`] (parallel path —
//!   built once per sync and shared by every worker).
//! * [`ClosureIndex`] is a compact CSR (compressed sparse row) snapshot of
//!   the supertype / subtype / part-of / instance-of edges. It is a plain
//!   bundle of `Vec`s — `Send + Sync` — so `parallel.rs` workers can share
//!   one snapshot by reference instead of each rebuilding a cold
//!   `QueryCache`. It is generation-stamped; a stale index must not be used
//!   against a mutated graph.
//! * [`ClosureScratch`] holds epoch-stamped visited marks and reusable
//!   queue/stack storage. After warm-up (`ensure_slots`), every traversal is
//!   allocation-free; outputs go into caller-provided buffers.
//!
//! Both backends present edges in identical order (CSR rows are filled in
//! arena-vec order), so traversal output is byte-identical regardless of
//! which backend ran — the parallel differential suite relies on this.

use crate::graph::SchemaGraph;
use crate::ids::{LinkId, TypeId};
use sws_odl::HierKind;

/// Edge iteration over a schema graph snapshot. All callbacks must present
/// edges in the graph's arena-vec order (the order mutators appended them).
pub trait Adjacency {
    /// Total type arena slots, live and tombstoned.
    fn num_type_slots(&self) -> usize;
    /// Total link arena slots, live and tombstoned.
    fn num_link_slots(&self) -> usize;
    /// True if the slot holds a live type.
    fn is_live(&self, t: TypeId) -> bool;
    /// Direct supertypes of `t`, in declaration order.
    fn for_each_supertype(&self, t: TypeId, f: &mut impl FnMut(TypeId));
    /// Direct subtypes of `t`, in insertion order.
    fn for_each_subtype(&self, t: TypeId, f: &mut impl FnMut(TypeId));
    /// Hierarchy links of `kind` in which `t` is the child, as
    /// `(link, parent)`, in insertion order.
    fn for_each_hier_parent(&self, kind: HierKind, t: TypeId, f: &mut impl FnMut(LinkId, TypeId));
    /// Hierarchy links of `kind` in which `t` is the parent, as
    /// `(link, child)`, in insertion order.
    fn for_each_hier_child(&self, kind: HierKind, t: TypeId, f: &mut impl FnMut(LinkId, TypeId));
}

impl Adjacency for SchemaGraph {
    fn num_type_slots(&self) -> usize {
        self.type_slots()
    }

    fn num_link_slots(&self) -> usize {
        self.link_slots()
    }

    fn is_live(&self, t: TypeId) -> bool {
        self.try_ty(t).is_some()
    }

    fn for_each_supertype(&self, t: TypeId, f: &mut impl FnMut(TypeId)) {
        for &s in &self.ty(t).supertypes {
            f(s);
        }
    }

    fn for_each_subtype(&self, t: TypeId, f: &mut impl FnMut(TypeId)) {
        for &s in &self.ty(t).subtypes {
            f(s);
        }
    }

    fn for_each_hier_parent(&self, kind: HierKind, t: TypeId, f: &mut impl FnMut(LinkId, TypeId)) {
        for &l in &self.ty(t).child_links {
            let link = self.link(l);
            if link.kind == kind {
                f(l, link.parent);
            }
        }
    }

    fn for_each_hier_child(&self, kind: HierKind, t: TypeId, f: &mut impl FnMut(LinkId, TypeId)) {
        for &l in &self.ty(t).parent_links {
            let link = self.link(l);
            if link.kind == kind {
                f(l, link.child);
            }
        }
    }
}

fn kind_idx(kind: HierKind) -> usize {
    match kind {
        HierKind::PartOf => 0,
        HierKind::InstanceOf => 1,
    }
}

/// One CSR table: `off[i]..off[i + 1]` indexes `edges` for slot `i`.
#[derive(Debug, Clone, Default)]
struct Csr<E> {
    off: Vec<u32>,
    edges: Vec<E>,
}

impl<E: Copy> Csr<E> {
    fn build(slots: usize, mut fill: impl FnMut(usize, &mut Vec<E>)) -> Csr<E> {
        let mut off = Vec::with_capacity(slots + 1);
        let mut edges = Vec::new();
        off.push(0);
        for i in 0..slots {
            fill(i, &mut edges);
            off.push(u32::try_from(edges.len()).expect("CSR edge overflow"));
        }
        Csr { off, edges }
    }

    fn row(&self, i: usize) -> &[E] {
        &self.edges[self.off[i] as usize..self.off[i + 1] as usize]
    }
}

/// A frozen CSR snapshot of the hierarchy edges of one [`SchemaGraph`]
/// generation. See the module docs.
#[derive(Debug, Clone)]
pub struct ClosureIndex {
    generation: u64,
    live: Vec<bool>,
    num_links: usize,
    sup: Csr<TypeId>,
    sub: Csr<TypeId>,
    /// Indexed by [`kind_idx`]: links upward (child → parent).
    up: [Csr<(LinkId, TypeId)>; 2],
    /// Indexed by [`kind_idx`]: links downward (parent → child).
    down: [Csr<(LinkId, TypeId)>; 2],
}

impl ClosureIndex {
    /// Snapshot `g`'s edges. O(types + edges); emits the
    /// `model.closure_index.builds` trace counter.
    pub fn build(g: &SchemaGraph) -> ClosureIndex {
        let slots = g.type_slots();
        let live: Vec<bool> = (0..slots)
            .map(|i| g.try_ty(TypeId(i as u32)).is_some())
            .collect();
        let node = |i: usize| g.try_ty(TypeId(i as u32));
        let sup = Csr::build(slots, |i, edges| {
            if let Some(n) = node(i) {
                edges.extend_from_slice(&n.supertypes);
            }
        });
        let sub = Csr::build(slots, |i, edges| {
            if let Some(n) = node(i) {
                edges.extend_from_slice(&n.subtypes);
            }
        });
        let hier = |kind: HierKind| {
            let up = Csr::build(slots, |i, edges| {
                if let Some(n) = node(i) {
                    for &l in &n.child_links {
                        let link = g.link(l);
                        if link.kind == kind {
                            edges.push((l, link.parent));
                        }
                    }
                }
            });
            let down = Csr::build(slots, |i, edges| {
                if let Some(n) = node(i) {
                    for &l in &n.parent_links {
                        let link = g.link(l);
                        if link.kind == kind {
                            edges.push((l, link.child));
                        }
                    }
                }
            });
            (up, down)
        };
        let (up_part, down_part) = hier(HierKind::PartOf);
        let (up_inst, down_inst) = hier(HierKind::InstanceOf);
        sws_trace::counter("model.closure_index.builds", 1);
        ClosureIndex {
            generation: g.generation(),
            live,
            num_links: g.link_slots(),
            sup,
            sub,
            up: [up_part, up_inst],
            down: [down_part, down_inst],
        }
    }

    /// The graph generation this index snapshots. Callers must check it
    /// against `g.generation()` before reusing a cached index.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

impl Adjacency for ClosureIndex {
    fn num_type_slots(&self) -> usize {
        self.live.len()
    }

    fn num_link_slots(&self) -> usize {
        self.num_links
    }

    fn is_live(&self, t: TypeId) -> bool {
        self.live.get(t.index()).copied().unwrap_or(false)
    }

    fn for_each_supertype(&self, t: TypeId, f: &mut impl FnMut(TypeId)) {
        for &s in self.sup.row(t.index()) {
            f(s);
        }
    }

    fn for_each_subtype(&self, t: TypeId, f: &mut impl FnMut(TypeId)) {
        for &s in self.sub.row(t.index()) {
            f(s);
        }
    }

    fn for_each_hier_parent(&self, kind: HierKind, t: TypeId, f: &mut impl FnMut(LinkId, TypeId)) {
        for &(l, p) in self.up[kind_idx(kind)].row(t.index()) {
            f(l, p);
        }
    }

    fn for_each_hier_child(&self, kind: HierKind, t: TypeId, f: &mut impl FnMut(LinkId, TypeId)) {
        for &(l, c) in self.down[kind_idx(kind)].row(t.index()) {
            f(l, c);
        }
    }
}

/// Reusable traversal state: epoch-stamped visited marks (no clearing
/// between traversals — bumping the epoch invalidates all marks in O(1))
/// plus a queue that doubles as a stack. Allocation-free once
/// [`ClosureScratch::ensure_slots`] has sized it for the graph.
#[derive(Debug, Clone, Default)]
pub struct ClosureScratch {
    epoch: u64,
    type_mark: Vec<u64>,
    link_mark: Vec<u64>,
    queue: Vec<TypeId>,
    head: usize,
}

impl ClosureScratch {
    /// Grow the visited tables to cover `type_slots` / `link_slots` arena
    /// slots. Call this whenever the graph may have grown — and, on the
    /// zero-allocation hot path, call it *before* entering the measured
    /// span, so the span interior never grows a table.
    pub fn ensure_slots(&mut self, type_slots: usize, link_slots: usize) {
        if self.type_mark.len() < type_slots {
            self.type_mark.resize(type_slots, 0);
        }
        if self.link_mark.len() < link_slots {
            self.link_mark.resize(link_slots, 0);
        }
        let cap = type_slots.max(16);
        if self.queue.capacity() < cap {
            self.queue.reserve(cap - self.queue.capacity());
        }
    }

    fn begin(&mut self) {
        self.epoch += 1;
        self.queue.clear();
        self.head = 0;
    }

    fn mark_type(&mut self, t: TypeId) -> bool {
        let m = &mut self.type_mark[t.index()];
        if *m == self.epoch {
            false
        } else {
            *m = self.epoch;
            true
        }
    }

    /// Strict ancestors of `t` via supertype edges, BFS order, into `out`.
    /// Mirrors the eager query exactly, including the cycle convention that
    /// a type on a supertype cycle is its own ancestor.
    pub fn ancestors_into<A: Adjacency>(&mut self, adj: &A, t: TypeId, out: &mut Vec<TypeId>) {
        out.clear();
        self.begin();
        adj.for_each_supertype(t, &mut |s| self.queue.push(s));
        while self.head < self.queue.len() {
            let cur = self.queue[self.head];
            self.head += 1;
            if !self.mark_type(cur) {
                continue;
            }
            out.push(cur);
            adj.for_each_supertype(cur, &mut |s| self.queue.push(s));
        }
    }

    /// Strict descendants of `t` via subtype edges, BFS order, into `out`.
    pub fn descendants_into<A: Adjacency>(&mut self, adj: &A, t: TypeId, out: &mut Vec<TypeId>) {
        out.clear();
        self.begin();
        adj.for_each_subtype(t, &mut |s| self.queue.push(s));
        while self.head < self.queue.len() {
            let cur = self.queue[self.head];
            self.head += 1;
            if !self.mark_type(cur) {
                continue;
            }
            out.push(cur);
            adj.for_each_subtype(cur, &mut |s| self.queue.push(s));
        }
    }

    /// Downward closure of the `kind` hierarchy from `root` (inclusive),
    /// BFS order; traversed links (first sighting) into `out_links`.
    pub fn hier_closure_into<A: Adjacency>(
        &mut self,
        adj: &A,
        kind: HierKind,
        root: TypeId,
        out_types: &mut Vec<TypeId>,
        out_links: &mut Vec<LinkId>,
    ) {
        out_types.clear();
        out_links.clear();
        self.begin();
        self.queue.push(root);
        while self.head < self.queue.len() {
            let t = self.queue[self.head];
            self.head += 1;
            if !self.mark_type(t) {
                continue;
            }
            out_types.push(t);
            adj.for_each_hier_child(kind, t, &mut |l, child| {
                if self.link_mark[l.index()] != self.epoch {
                    self.link_mark[l.index()] = self.epoch;
                    out_links.push(l);
                }
                self.queue.push(child);
            });
        }
    }

    /// True if `start` reaches itself via supertype edges (a generalization
    /// cycle through `start`).
    pub fn has_gen_cycle<A: Adjacency>(&mut self, adj: &A, start: TypeId) -> bool {
        self.begin();
        adj.for_each_supertype(start, &mut |s| self.queue.push(s));
        while let Some(t) = self.queue.pop() {
            if t == start {
                return true;
            }
            if self.mark_type(t) {
                adj.for_each_supertype(t, &mut |s| self.queue.push(s));
            }
        }
        false
    }

    /// True if `start` reaches itself walking upward (child → parent) in
    /// the `kind` hierarchy.
    pub fn has_hier_cycle<A: Adjacency>(&mut self, adj: &A, kind: HierKind, start: TypeId) -> bool {
        self.begin();
        adj.for_each_hier_parent(kind, start, &mut |_, p| self.queue.push(p));
        while let Some(t) = self.queue.pop() {
            if t == start {
                return true;
            }
            if self.mark_type(t) {
                adj.for_each_hier_parent(kind, t, &mut |_, p| self.queue.push(p));
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;
    use sws_odl::CollectionKind;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn closure_index_is_send_sync() {
        assert_send_sync::<ClosureIndex>();
    }

    fn diamond() -> (SchemaGraph, Vec<TypeId>) {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        let c = g.add_type("C").unwrap();
        let d = g.add_type("D").unwrap();
        g.add_supertype(b, a).unwrap();
        g.add_supertype(c, a).unwrap();
        g.add_supertype(d, b).unwrap();
        g.add_supertype(d, c).unwrap();
        (g, vec![a, b, c, d])
    }

    #[test]
    fn index_traversals_match_eager_queries() {
        let (mut g, t) = diamond();
        g.add_link(
            HierKind::PartOf,
            t[0],
            "parts",
            CollectionKind::Set,
            vec![],
            t[3],
            "whole",
        )
        .unwrap();
        // Tombstone a slot so dead-slot handling is exercised.
        let dead = g.add_type("Doomed").unwrap();
        g.remove_type(dead, Default::default()).unwrap();

        let idx = ClosureIndex::build(&g);
        assert_eq!(idx.generation(), g.generation());
        let mut scratch = ClosureScratch::default();
        scratch.ensure_slots(g.type_slots(), g.link_slots());
        let mut out = Vec::new();
        for (id, _) in g.types() {
            // Index backend vs eager query.
            scratch.ancestors_into(&idx, id, &mut out);
            assert_eq!(out, query::ancestors(&g, id), "ancestors of {id}");
            // Graph backend vs eager query.
            scratch.ancestors_into(&g, id, &mut out);
            assert_eq!(out, query::ancestors(&g, id));
            scratch.descendants_into(&idx, id, &mut out);
            assert_eq!(out, query::descendants(&g, id), "descendants of {id}");
            for kind in [HierKind::PartOf, HierKind::InstanceOf] {
                let (types, links) = query::hier_closure(&g, kind, id);
                let (mut it, mut il) = (Vec::new(), Vec::new());
                scratch.hier_closure_into(&idx, kind, id, &mut it, &mut il);
                assert_eq!(it, types);
                assert_eq!(il, links);
            }
        }
    }

    #[test]
    fn cycle_probes_terminate_and_agree() {
        let mut g = SchemaGraph::new("cyclic");
        let a = g.add_type("A").unwrap();
        let b = g.add_type("B").unwrap();
        g.add_supertype(a, b).unwrap();
        g.force_supertype_edge(b, a);
        let idx = ClosureIndex::build(&g);
        let mut scratch = ClosureScratch::default();
        scratch.ensure_slots(g.type_slots(), g.link_slots());
        for t in [a, b] {
            assert!(scratch.has_gen_cycle(&idx, t));
            assert!(scratch.has_gen_cycle(&g, t));
        }
        assert!(!scratch.has_hier_cycle(&idx, HierKind::PartOf, a));
    }
}
