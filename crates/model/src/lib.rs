//! Arena/ID-based schema graph: the in-memory representation the designer
//! manipulates.
//!
//! A [`SchemaGraph`] holds interfaces, attributes, relationships, operations,
//! and the extended hierarchy links (part-of, instance-of) in typed arenas
//! addressed by small integer IDs. Concept schemas (in `sws-core`) are views
//! — sets of IDs — over one graph, so the "integrated, customized user
//! schema" the paper maintains is simply the graph itself.
//!
//! Modules:
//!
//! * [`ids`] — newtype IDs,
//! * [`graph`] — the graph, its accessors and invariant-preserving mutators
//!   (with cascade reporting for the propagation rules),
//! * [`lower`] — lossless conversion between `sws_odl::Schema` ASTs and
//!   graphs,
//! * [`query`] — generalization/aggregation/instance-of hierarchy queries
//!   (ancestors, descendants, roots, paths, components),
//! * [`cache`] — generation-stamped memoization of the hot queries,
//! * [`wf`] — graph-level well-formedness checking,
//! * [`diff`] — structural diff between two graphs,
//! * [`error`] — mutation error type.
#![forbid(unsafe_code)]

pub mod cache;
pub mod diff;
pub mod error;
pub mod graph;
pub mod ids;
pub mod index;
pub mod intern;
pub mod lower;
pub mod query;
pub mod view;
pub mod wf;

pub use cache::QueryCache;
pub use diff::{diff_graphs, MemberChange, SchemaDiff, TypeDiff};
pub use error::ModelError;
pub use graph::LinkSide;
pub use graph::{
    ArenaStats, AttrNode, CascadeReport, LinkNode, OpNode, RelEnd, RelNode, RemoveTypeMode,
    SchemaGraph, TypeNode, UndoPatch,
};
pub use ids::{AttrId, LinkId, OpId, RelId, TypeId};
pub use index::{Adjacency, ClosureIndex, ClosureScratch};
pub use intern::{SymKey, Symbol};
pub use lower::{graph_to_schema, schema_to_graph, LowerError};
pub use view::{CachedView, SchemaView};
pub use wf::{check_type_into, check_type_well_formed, check_well_formed, WfIssue, WfScratch};
