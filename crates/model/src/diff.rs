//! Structural diff between two schema graphs.
//!
//! The diff is computed over canonical ASTs ([`crate::graph_to_schema`]) and
//! keyed by names, in keeping with the paper's *name equivalence* assumption:
//! same name ⇒ same construct, different name ⇒ different construct.
//!
//! `sws-core` uses this to synthesize modification-operation scripts (the
//! §3.5 completeness argument: any schema is reachable from any other using
//! only add and delete operations), and the case study uses it to count the
//! delta between a shrink wrap schema and a custom schema.

use crate::graph::SchemaGraph;
use crate::lower::graph_to_schema;
use sws_odl::{Attribute, HierKind, HierLink, Interface, Key, Operation, Relationship, Schema};

/// One change within a type present in both schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberChange {
    /// `is_abstract` differs; `now` is the new value.
    AbstractChanged { now: bool },
    /// The extent name differs.
    ExtentChanged {
        old: Option<String>,
        new: Option<String>,
    },
    /// A key only in the new schema.
    KeyAdded(Key),
    /// A key only in the old schema.
    KeyRemoved(Key),
    /// A supertype edge only in the new schema.
    SupertypeAdded(String),
    /// A supertype edge only in the old schema.
    SupertypeRemoved(String),
    /// An attribute only in the new schema.
    AttrAdded(Attribute),
    /// An attribute only in the old schema.
    AttrRemoved(String),
    /// Same-named attribute with different type/size.
    AttrChanged { old: Attribute, new: Attribute },
    /// A relationship end (this side) only in the new schema.
    RelAdded(Relationship),
    /// A relationship end only in the old schema.
    RelRemoved(String),
    /// Same-pathed relationship end differing in target/cardinality/order-by.
    RelChanged {
        old: Relationship,
        new: Relationship,
    },
    /// An operation only in the new schema.
    OpAdded(Operation),
    /// An operation only in the old schema.
    OpRemoved(String),
    /// Same-named operation with a different signature.
    OpChanged { old: Operation, new: Operation },
    /// A hierarchy link end only in the new schema.
    LinkAdded(HierKind, HierLink),
    /// A hierarchy link end only in the old schema.
    LinkRemoved(HierKind, String),
    /// Same-pathed link end differing in target/cardinality/order-by.
    LinkChanged {
        kind: HierKind,
        old: HierLink,
        new: HierLink,
    },
}

/// Changes to one type present in both schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeDiff {
    /// The type's name.
    pub name: String,
    /// Every member-level change.
    pub changes: Vec<MemberChange>,
}

/// A full schema diff.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemaDiff {
    /// Types only in the new schema.
    pub added_types: Vec<String>,
    /// Types only in the old schema.
    pub removed_types: Vec<String>,
    /// Per-type changes for types in both.
    pub type_diffs: Vec<TypeDiff>,
}

impl SchemaDiff {
    /// True if the schemas are identical.
    pub fn is_empty(&self) -> bool {
        self.added_types.is_empty() && self.removed_types.is_empty() && self.type_diffs.is_empty()
    }

    /// Total number of changes (types counted once each, member changes
    /// counted individually).
    pub fn change_count(&self) -> usize {
        self.added_types.len()
            + self.removed_types.len()
            + self
                .type_diffs
                .iter()
                .map(|t| t.changes.len())
                .sum::<usize>()
    }
}

/// Diff two graphs (old → new).
pub fn diff_graphs(old: &SchemaGraph, new: &SchemaGraph) -> SchemaDiff {
    diff_schemas(&graph_to_schema(old), &graph_to_schema(new))
}

/// Diff two canonical ASTs (old → new).
pub fn diff_schemas(old: &Schema, new: &Schema) -> SchemaDiff {
    let mut sp = sws_trace::span!(
        "model.diff",
        old_types = old.interfaces.len(),
        new_types = new.interfaces.len(),
    );
    let mut diff = SchemaDiff::default();
    for iface in &new.interfaces {
        if old.interface(&iface.name).is_none() {
            diff.added_types.push(iface.name.clone());
        }
    }
    for iface in &old.interfaces {
        match new.interface(&iface.name) {
            None => diff.removed_types.push(iface.name.clone()),
            Some(new_iface) => {
                let changes = diff_interfaces(iface, new_iface);
                if !changes.is_empty() {
                    diff.type_diffs.push(TypeDiff {
                        name: iface.name.clone(),
                        changes,
                    });
                }
            }
        }
    }
    sp.record("changes", diff.change_count());
    diff
}

fn diff_interfaces(old: &Interface, new: &Interface) -> Vec<MemberChange> {
    let mut out = Vec::new();
    if old.is_abstract != new.is_abstract {
        out.push(MemberChange::AbstractChanged {
            now: new.is_abstract,
        });
    }
    if old.extent != new.extent {
        out.push(MemberChange::ExtentChanged {
            old: old.extent.clone(),
            new: new.extent.clone(),
        });
    }
    for key in &new.keys {
        if !old.keys.contains(key) {
            out.push(MemberChange::KeyAdded(key.clone()));
        }
    }
    for key in &old.keys {
        if !new.keys.contains(key) {
            out.push(MemberChange::KeyRemoved(key.clone()));
        }
    }
    for st in &new.supertypes {
        if !old.supertypes.contains(st) {
            out.push(MemberChange::SupertypeAdded(st.clone()));
        }
    }
    for st in &old.supertypes {
        if !new.supertypes.contains(st) {
            out.push(MemberChange::SupertypeRemoved(st.clone()));
        }
    }
    for attr in &new.attributes {
        match old.attribute(&attr.name) {
            None => out.push(MemberChange::AttrAdded(attr.clone())),
            Some(old_attr) if old_attr != attr => out.push(MemberChange::AttrChanged {
                old: old_attr.clone(),
                new: attr.clone(),
            }),
            _ => {}
        }
    }
    for attr in &old.attributes {
        if new.attribute(&attr.name).is_none() {
            out.push(MemberChange::AttrRemoved(attr.name.clone()));
        }
    }
    for rel in &new.relationships {
        match old.relationship(&rel.path) {
            None => out.push(MemberChange::RelAdded(rel.clone())),
            Some(old_rel) if old_rel != rel => out.push(MemberChange::RelChanged {
                old: old_rel.clone(),
                new: rel.clone(),
            }),
            _ => {}
        }
    }
    for rel in &old.relationships {
        if new.relationship(&rel.path).is_none() {
            out.push(MemberChange::RelRemoved(rel.path.clone()));
        }
    }
    for op in &new.operations {
        match old.operation(&op.name) {
            None => out.push(MemberChange::OpAdded(op.clone())),
            Some(old_op) if old_op != op => out.push(MemberChange::OpChanged {
                old: old_op.clone(),
                new: op.clone(),
            }),
            _ => {}
        }
    }
    for op in &old.operations {
        if new.operation(&op.name).is_none() {
            out.push(MemberChange::OpRemoved(op.name.clone()));
        }
    }
    diff_links(HierKind::PartOf, &old.part_ofs, &new.part_ofs, &mut out);
    diff_links(
        HierKind::InstanceOf,
        &old.instance_ofs,
        &new.instance_ofs,
        &mut out,
    );
    out
}

fn diff_links(kind: HierKind, old: &[HierLink], new: &[HierLink], out: &mut Vec<MemberChange>) {
    for link in new {
        match old.iter().find(|l| l.path == link.path) {
            None => out.push(MemberChange::LinkAdded(kind, link.clone())),
            Some(old_link) if old_link != link => out.push(MemberChange::LinkChanged {
                kind,
                old: old_link.clone(),
                new: link.clone(),
            }),
            _ => {}
        }
    }
    for link in old {
        if !new.iter().any(|l| l.path == link.path) {
            out.push(MemberChange::LinkRemoved(kind, link.path.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::schema_to_graph;
    use sws_odl::parse_schema;

    fn graph(src: &str) -> SchemaGraph {
        schema_to_graph(&parse_schema(src).unwrap()).unwrap()
    }

    #[test]
    fn identical_schemas_empty_diff() {
        let src = "interface A { attribute long x; } interface B : A { }";
        let d = diff_graphs(&graph(src), &graph(src));
        assert!(d.is_empty());
        assert_eq!(d.change_count(), 0);
    }

    #[test]
    fn added_and_removed_types() {
        let d = diff_graphs(&graph("interface A { }"), &graph("interface B { }"));
        assert_eq!(d.added_types, vec!["B"]);
        assert_eq!(d.removed_types, vec!["A"]);
        assert_eq!(d.change_count(), 2);
    }

    #[test]
    fn attribute_changes() {
        let old = graph("interface A { attribute long x; attribute long gone; }");
        let new = graph("interface A { attribute string x; attribute long fresh; }");
        let d = diff_graphs(&old, &new);
        let changes = &d.type_diffs[0].changes;
        assert!(changes
            .iter()
            .any(|c| matches!(c, MemberChange::AttrChanged { .. })));
        assert!(changes
            .iter()
            .any(|c| matches!(c, MemberChange::AttrAdded(a) if a.name == "fresh")));
        assert!(changes
            .iter()
            .any(|c| matches!(c, MemberChange::AttrRemoved(n) if n == "gone")));
    }

    #[test]
    fn supertype_and_extent_changes() {
        let old = graph("interface A { extent as_; } interface B { } interface C : B { }");
        let new = graph("interface A { } interface B { } interface C : A { }");
        let d = diff_graphs(&old, &new);
        let a_diff = d.type_diffs.iter().find(|t| t.name == "A").unwrap();
        assert!(a_diff
            .changes
            .iter()
            .any(|c| matches!(c, MemberChange::ExtentChanged { .. })));
        let c_diff = d.type_diffs.iter().find(|t| t.name == "C").unwrap();
        assert!(c_diff
            .changes
            .iter()
            .any(|c| matches!(c, MemberChange::SupertypeAdded(s) if s == "A")));
        assert!(c_diff
            .changes
            .iter()
            .any(|c| matches!(c, MemberChange::SupertypeRemoved(s) if s == "B")));
    }

    #[test]
    fn relationship_changes_show_on_both_ends() {
        let old = graph(
            "interface A { relationship B r inverse B::x; } \
             interface B { relationship A x inverse A::r; }",
        );
        let new = graph("interface A { } interface B { }");
        let d = diff_graphs(&old, &new);
        assert_eq!(d.type_diffs.len(), 2);
        for td in &d.type_diffs {
            assert!(td
                .changes
                .iter()
                .any(|c| matches!(c, MemberChange::RelRemoved(_))));
        }
    }

    #[test]
    fn link_changes() {
        let old = graph(
            "interface W { part_of set<P> ps inverse P::w; } \
             interface P { part_of W w inverse W::ps; }",
        );
        let new = graph(
            "interface W { part_of list<P> ps inverse P::w; } \
             interface P { part_of W w inverse W::ps; }",
        );
        let d = diff_graphs(&old, &new);
        let w_diff = d.type_diffs.iter().find(|t| t.name == "W").unwrap();
        assert!(w_diff.changes.iter().any(|c| matches!(
            c,
            MemberChange::LinkChanged {
                kind: HierKind::PartOf,
                ..
            }
        )));
    }

    #[test]
    fn operation_signature_change() {
        let old = graph("interface A { void f(); }");
        let new = graph("interface A { long f(); }");
        let d = diff_graphs(&old, &new);
        assert!(d.type_diffs[0]
            .changes
            .iter()
            .any(|c| matches!(c, MemberChange::OpChanged { .. })));
    }
}
