//! [`SchemaView`]: a read-only abstraction over "something that looks like
//! a schema graph".
//!
//! The precondition checker in `sws-core` and the static analyzer in
//! `sws-analyze` must agree *exactly* on what a schema looks like mid-edit:
//! the analyzer predicts the first `OpError` the apply pipeline would
//! produce without ever mutating a [`SchemaGraph`]. Instead of duplicating
//! the checker over a second state representation (and letting the two
//! drift), the checker is generic over this trait. Implementations:
//!
//! * [`SchemaGraph`] itself — every query computed fresh,
//! * [`CachedView`] — a graph paired with its [`QueryCache`], preserving
//!   the executor's memoized hot path unchanged,
//! * `sws_analyze::AbsState` — a copy-on-write overlay over a base graph.
//!
//! The traversal algorithms (`ancestors`, `descendants`, visible members,
//! hierarchy parents) live here as generic functions; `crate::query`'s
//! concrete functions delegate to them, so there is exactly one BFS to get
//! right.

use crate::cache::QueryCache;
use crate::graph::{AttrNode, LinkNode, LinkSide, OpNode, RelNode, SchemaGraph, TypeNode};
use crate::ids::{AttrId, LinkId, OpId, RelId, TypeId};
use crate::intern::Symbol;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;
use sws_odl::HierKind;

/// Read-only access to a schema state: node accessors plus the derived
/// hierarchy queries the precondition checker needs. See the module docs.
///
/// Required methods are the primitive accessors; everything else has a
/// provided implementation written against them, mirroring the inherent
/// methods on [`SchemaGraph`] (which the blanket impl forwards to, so the
/// two can never disagree).
pub trait SchemaView {
    /// Look up a live type by name.
    fn type_id(&self, name: &str) -> Option<TypeId>;
    /// The type node for `id` (panics if dead).
    fn ty(&self, id: TypeId) -> &TypeNode;
    /// The attribute node for `id` (panics if dead).
    fn attr(&self, id: AttrId) -> &AttrNode;
    /// The relationship node for `id` (panics if dead).
    fn rel(&self, id: RelId) -> &RelNode;
    /// The operation node for `id` (panics if dead).
    fn op(&self, id: OpId) -> &OpNode;
    /// The link node for `id` (panics if dead).
    fn link(&self, id: LinkId) -> &LinkNode;
    /// Iterate over live types in arena (= insertion) order. Boxed so the
    /// trait stays object-safe and implementable over composite states.
    fn types_iter(&self) -> Box<dyn Iterator<Item = (TypeId, &TypeNode)> + '_>;

    /// The name of type `id`.
    fn type_name(&self, id: TypeId) -> &'static str {
        self.ty(id).name.as_str()
    }

    /// Find an attribute by owner and name.
    fn find_attr(&self, owner: TypeId, name: &str) -> Option<AttrId> {
        self.ty(owner)
            .attrs
            .iter()
            .copied()
            .find(|&a| self.attr(a).name == name)
    }

    /// Find a relationship end by owner and traversal path name.
    fn find_rel_end(&self, owner: TypeId, path: &str) -> Option<(RelId, u8)> {
        self.ty(owner)
            .rel_ends
            .iter()
            .copied()
            .find(|&(r, e)| self.rel(r).end(e).path == path)
    }

    /// Find an operation by owner and name.
    fn find_op(&self, owner: TypeId, name: &str) -> Option<OpId> {
        self.ty(owner)
            .ops
            .iter()
            .copied()
            .find(|&o| self.op(o).name == name)
    }

    /// Find a hierarchy link of `kind` by owner and traversal path name,
    /// reporting which side of the link the path belongs to.
    fn find_link(&self, kind: HierKind, owner: TypeId, path: &str) -> Option<(LinkId, LinkSide)> {
        let node = self.ty(owner);
        for &l in &node.parent_links {
            let link = self.link(l);
            if link.kind == kind && link.parent_path == path {
                return Some((l, LinkSide::Parent));
            }
        }
        for &l in &node.child_links {
            let link = self.link(l);
            if link.kind == kind && link.child_path == path {
                return Some((l, LinkSide::Child));
            }
        }
        None
    }

    /// True if `name` is already used by any member of `owner`.
    fn member_exists(&self, owner: TypeId, name: &str) -> bool {
        self.find_attr(owner, name).is_some()
            || self.find_rel_end(owner, name).is_some()
            || self.find_op(owner, name).is_some()
            || self.find_link(HierKind::PartOf, owner, name).is_some()
            || self.find_link(HierKind::InstanceOf, owner, name).is_some()
    }

    /// Direct hierarchy parents of `t` in the `kind` hierarchy.
    fn hier_parents(&self, kind: HierKind, t: TypeId) -> Vec<(LinkId, TypeId)> {
        self.ty(t)
            .child_links
            .iter()
            .filter_map(|&l| {
                let link = self.link(l);
                (link.kind == kind).then_some((l, link.parent))
            })
            .collect()
    }

    /// All strict ancestors of `t` via supertype edges, in BFS order.
    /// `Arc` so a caching implementation can hand out a shared memo entry.
    fn ancestors(&self, t: TypeId) -> Arc<Vec<TypeId>> {
        Arc::new(ancestors_of(self, t))
    }

    /// All strict descendants of `t` via subtype edges, in BFS order.
    fn descendants(&self, t: TypeId) -> Arc<Vec<TypeId>> {
        Arc::new(descendants_of(self, t))
    }

    /// The member names visible on `t` (own plus inherited), as
    /// `(name, defining type)` pairs; nearest definition wins.
    fn visible_members(&self, t: TypeId) -> Arc<Vec<(Symbol, TypeId)>> {
        Arc::new(visible_members_of(self, t))
    }

    /// True if `a` is a strict ancestor of `b`.
    fn is_ancestor(&self, a: TypeId, b: TypeId) -> bool {
        self.ancestors(b).contains(&a)
    }

    /// The paper's *semantic stability* predicate: `a` and `b` lie on one
    /// generalization path.
    fn on_same_generalization_path(&self, a: TypeId, b: TypeId) -> bool {
        a == b || self.is_ancestor(a, b) || self.is_ancestor(b, a)
    }
}

/// The single generic BFS behind [`SchemaView::ancestors`] and
/// [`crate::query::ancestors`].
pub fn ancestors_of<V: SchemaView + ?Sized>(v: &V, t: TypeId) -> Vec<TypeId> {
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    let mut queue: VecDeque<TypeId> = v.ty(t).supertypes.iter().copied().collect();
    while let Some(current) = queue.pop_front() {
        if !seen.insert(current) {
            continue;
        }
        out.push(current);
        queue.extend(v.ty(current).supertypes.iter().copied());
    }
    out
}

/// The single generic BFS behind [`SchemaView::descendants`] and
/// [`crate::query::descendants`].
pub fn descendants_of<V: SchemaView + ?Sized>(v: &V, t: TypeId) -> Vec<TypeId> {
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    let mut queue: VecDeque<TypeId> = v.ty(t).subtypes.iter().copied().collect();
    while let Some(current) = queue.pop_front() {
        if !seen.insert(current) {
            continue;
        }
        out.push(current);
        queue.extend(v.ty(current).subtypes.iter().copied());
    }
    out
}

/// The single generic layered walk behind [`SchemaView::visible_members`]
/// and [`crate::query::visible_members`].
pub fn visible_members_of<V: SchemaView + ?Sized>(v: &V, t: TypeId) -> Vec<(Symbol, TypeId)> {
    let mut out: Vec<(Symbol, TypeId)> = Vec::new();
    let mut have: BTreeSet<Symbol> = BTreeSet::new();
    let mut layer = vec![t];
    let mut seen = BTreeSet::new();
    while !layer.is_empty() {
        let mut next = Vec::new();
        for &current in &layer {
            if !seen.insert(current) {
                continue;
            }
            let node = v.ty(current);
            let mut push = |name: Symbol| {
                if have.insert(name) {
                    out.push((name, current));
                }
            };
            for &a in &node.attrs {
                push(v.attr(a).name);
            }
            for &(r, e) in &node.rel_ends {
                push(v.rel(r).end(e).path);
            }
            for &o in &node.ops {
                push(v.op(o).name);
            }
            for &l in &node.parent_links {
                push(v.link(l).parent_path);
            }
            for &l in &node.child_links {
                push(v.link(l).child_path);
            }
            next.extend(node.supertypes.iter().copied());
        }
        layer = next;
    }
    out
}

impl SchemaView for SchemaGraph {
    fn type_id(&self, name: &str) -> Option<TypeId> {
        SchemaGraph::type_id(self, name)
    }

    fn ty(&self, id: TypeId) -> &TypeNode {
        SchemaGraph::ty(self, id)
    }

    fn attr(&self, id: AttrId) -> &AttrNode {
        SchemaGraph::attr(self, id)
    }

    fn rel(&self, id: RelId) -> &RelNode {
        SchemaGraph::rel(self, id)
    }

    fn op(&self, id: OpId) -> &OpNode {
        SchemaGraph::op(self, id)
    }

    fn link(&self, id: LinkId) -> &LinkNode {
        SchemaGraph::link(self, id)
    }

    fn types_iter(&self) -> Box<dyn Iterator<Item = (TypeId, &TypeNode)> + '_> {
        Box::new(SchemaGraph::types(self))
    }
}

/// A [`SchemaGraph`] paired with its [`QueryCache`]: the hierarchy queries
/// are answered from the memo tables, everything else goes straight to the
/// graph. This is the executor's hot path — `check_preconditions_cached`
/// wraps the workspace's long-lived cache in one of these, so making the
/// checker generic did not cost it the memoization.
pub struct CachedView<'a> {
    /// The underlying graph.
    pub g: &'a SchemaGraph,
    /// The cache paired with `g` (one cache per graph — see [`QueryCache`]).
    pub qc: &'a QueryCache,
}

impl SchemaView for CachedView<'_> {
    fn type_id(&self, name: &str) -> Option<TypeId> {
        self.g.type_id(name)
    }

    fn ty(&self, id: TypeId) -> &TypeNode {
        self.g.ty(id)
    }

    fn attr(&self, id: AttrId) -> &AttrNode {
        self.g.attr(id)
    }

    fn rel(&self, id: RelId) -> &RelNode {
        self.g.rel(id)
    }

    fn op(&self, id: OpId) -> &OpNode {
        self.g.op(id)
    }

    fn link(&self, id: LinkId) -> &LinkNode {
        self.g.link(id)
    }

    fn types_iter(&self) -> Box<dyn Iterator<Item = (TypeId, &TypeNode)> + '_> {
        Box::new(self.g.types())
    }

    fn ancestors(&self, t: TypeId) -> Arc<Vec<TypeId>> {
        self.qc.ancestors(self.g, t)
    }

    fn descendants(&self, t: TypeId) -> Arc<Vec<TypeId>> {
        self.qc.descendants(self.g, t)
    }

    fn visible_members(&self, t: TypeId) -> Arc<Vec<(Symbol, TypeId)>> {
        self.qc.visible_members(self.g, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;
    use sws_odl::DomainType;

    fn fixture() -> SchemaGraph {
        let mut g = SchemaGraph::new("v");
        let person = g.add_type("Person").expect("fresh type");
        let emp = g.add_type("Employee").expect("fresh type");
        let mgr = g.add_type("Manager").expect("fresh type");
        g.add_supertype(emp, person).expect("edge");
        g.add_supertype(mgr, emp).expect("edge");
        g.add_attribute(person, "name", DomainType::String, None)
            .expect("attr");
        g
    }

    #[test]
    fn graph_view_matches_query_functions() {
        let g = fixture();
        let mgr = g.type_id("Manager").expect("Manager");
        let person = g.type_id("Person").expect("Person");
        assert_eq!(*SchemaView::ancestors(&g, mgr), query::ancestors(&g, mgr));
        assert_eq!(
            *SchemaView::descendants(&g, person),
            query::descendants(&g, person)
        );
        assert_eq!(
            *SchemaView::visible_members(&g, mgr),
            query::visible_members(&g, mgr)
        );
        assert!(SchemaView::is_ancestor(&g, person, mgr));
        assert!(SchemaView::on_same_generalization_path(&g, mgr, person));
    }

    #[test]
    fn cached_view_matches_uncached() {
        let g = fixture();
        let qc = QueryCache::new();
        let cv = CachedView { g: &g, qc: &qc };
        let mgr = g.type_id("Manager").expect("Manager");
        let person = g.type_id("Person").expect("Person");
        assert_eq!(*cv.ancestors(mgr), query::ancestors(&g, mgr));
        assert_eq!(*cv.ancestors(mgr), query::ancestors(&g, mgr));
        assert!(qc.hits() >= 1, "second lookup must hit the memo");
        assert_eq!(*cv.visible_members(mgr), query::visible_members(&g, mgr));
        assert_eq!(
            cv.find_attr(person, "name"),
            SchemaGraph::find_attr(&g, person, "name")
        );
        assert!(cv.member_exists(person, "name"));
        assert_eq!(cv.types_iter().count(), 3);
    }
}
