//! Designer feedback: cautionary statements and informational messages
//! (paper activity 9, "definition of a set of cautionary statements to the
//! user in the form of feedback").
//!
//! Feedback is generated *after* an operation applies successfully: the
//! errors (constraint violations) have already been ruled out, so what
//! remains are warnings about consequences the designer may not have
//! intended, plus the impact report.

use crate::impact::ImpactReport;
use crate::ops::ModOp;
use sws_model::{query, SchemaGraph};

/// The result of a successfully applied operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feedback {
    /// The operation, echoed back.
    pub op: ModOp,
    /// Cautionary statements.
    pub warnings: Vec<String>,
    /// Informational messages.
    pub infos: Vec<String>,
    /// The propagated changes.
    pub impact: ImpactReport,
}

impl Feedback {
    /// Render the feedback as the interactive tool would display it.
    pub fn render(&self) -> String {
        let mut out = format!("applied: {}\n", self.op);
        for w in &self.warnings {
            out.push_str(&format!("  warning: {w}\n"));
        }
        for i in &self.infos {
            out.push_str(&format!("  info: {i}\n"));
        }
        if !self.impact.is_empty() {
            out.push_str("  impact:\n");
            for entry in &self.impact.entries {
                out.push_str(&format!("    - {entry}\n"));
            }
        }
        out
    }
}

/// Generate cautionary warnings and infos for `op`, examining the schema
/// *after* application.
pub fn cautionary(op: &ModOp, g: &SchemaGraph) -> (Vec<String>, Vec<String>) {
    let mut warnings = Vec::new();
    let mut infos = Vec::new();
    match op {
        ModOp::ModifyAttribute { ty, name, new_ty } => {
            move_feedback(
                g,
                ty,
                new_ty,
                &format!("attribute `{name}`"),
                &mut warnings,
                &mut infos,
            );
        }
        ModOp::ModifyOperation { ty, name, new_ty } => {
            move_feedback(
                g,
                ty,
                new_ty,
                &format!("operation `{name}`"),
                &mut warnings,
                &mut infos,
            );
        }
        ModOp::ModifyRelationshipTargetType {
            path,
            old_target,
            new_target,
            ..
        } => {
            if let (Some(old), Some(new)) = (g.type_id(old_target), g.type_id(new_target)) {
                if query::is_ancestor(g, new, old) {
                    warnings.push(format!(
                        "relationship `{path}` now admits any `{new_target}` (including every \
                         subtype), not just `{old_target}`"
                    ));
                } else if query::is_ancestor(g, old, new) {
                    warnings.push(format!(
                        "relationship `{path}` is now restricted to `{new_target}`; existing \
                         `{old_target}` participants outside it would be excluded"
                    ));
                }
            }
        }
        ModOp::AddSupertype { ty, supertype } => {
            if let Some(sup) = g.type_id(supertype) {
                let inherited = query::visible_members(g, sup).len();
                if inherited > 0 {
                    infos.push(format!(
                        "`{ty}` now inherits {inherited} member(s) from `{supertype}` and its \
                         ancestors"
                    ));
                }
            }
        }
        ModOp::DeleteSupertype { ty, supertype } => {
            warnings.push(format!(
                "`{ty}` no longer inherits anything from `{supertype}`; members previously \
                 visible through it are gone"
            ));
        }
        ModOp::DeleteTypeDefinition { ty } => {
            infos.push(format!(
                "type `{ty}` and everything incident to it was removed"
            ));
        }
        ModOp::ModifyRelationshipCardinality { ty, path, old, new }
            if old.is_many() && !new.is_many() =>
        {
            warnings.push(format!(
                "`{ty}::{path}` narrowed from a collection to a single object"
            ));
        }
        ModOp::ModifyAttributeType { ty, name, old, new } => {
            infos.push(format!("`{ty}::{name}` re-typed from `{old}` to `{new}`"));
        }
        ModOp::AddPartOfRelationship {
            ty,
            target,
            collection,
            ..
        } => {
            let (whole, part) = match collection {
                Some(_) => (ty.as_str(), target.as_str()),
                None => (target.as_str(), ty.as_str()),
            };
            infos.push(format!("`{part}` is now a component of `{whole}`"));
        }
        ModOp::AddInstanceOfRelationship {
            ty,
            target,
            collection,
            ..
        } => {
            let (generic, instance) = match collection {
                Some(_) => (ty.as_str(), target.as_str()),
                None => (target.as_str(), ty.as_str()),
            };
            infos.push(format!(
                "`{instance}` is now an instance entity of `{generic}`"
            ));
        }
        _ => {}
    }
    (warnings, infos)
}

fn move_feedback(
    g: &SchemaGraph,
    from: &str,
    to: &str,
    what: &str,
    warnings: &mut Vec<String>,
    infos: &mut Vec<String>,
) {
    let (Some(from_id), Some(to_id)) = (g.type_id(from), g.type_id(to)) else {
        return;
    };
    if query::is_ancestor(g, to_id, from_id) {
        // Moved up: now inherited more widely.
        let heirs = query::descendants(g, to_id).len();
        warnings.push(format!(
            "{what} moved up to `{to}`: it is now inherited by all {heirs} descendant type(s), \
             not only `{from}`'s subtree"
        ));
    } else if query::is_ancestor(g, from_id, to_id) {
        warnings.push(format!(
            "{what} moved down to `{to}`: it is no longer visible on `{from}` or its other \
             subtypes"
        ));
    } else {
        infos.push(format!("{what} moved from `{from}` to `{to}`"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::schema_to_graph;
    use sws_odl::parse_schema;

    fn dept() -> SchemaGraph {
        schema_to_graph(
            &parse_schema(
                r#"
            interface Person { }
            interface Student : Person { }
            interface Employee : Person { attribute long badge; }
            interface Manager : Employee { }
            "#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn move_up_warns_about_wider_inheritance() {
        let g = dept();
        let (warnings, _) = cautionary(
            &ModOp::ModifyAttribute {
                ty: "Employee".into(),
                name: "badge".into(),
                new_ty: "Person".into(),
            },
            &g,
        );
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("inherited by all 3 descendant"));
    }

    #[test]
    fn move_down_warns_about_lost_visibility() {
        let g = dept();
        let (warnings, _) = cautionary(
            &ModOp::ModifyAttribute {
                ty: "Employee".into(),
                name: "badge".into(),
                new_ty: "Manager".into(),
            },
            &g,
        );
        assert!(warnings[0].contains("no longer visible"));
    }

    #[test]
    fn retarget_warns_about_widening() {
        let g = dept();
        let (warnings, _) = cautionary(
            &ModOp::ModifyRelationshipTargetType {
                ty: "X".into(),
                path: "has".into(),
                old_target: "Employee".into(),
                new_target: "Person".into(),
            },
            &g,
        );
        assert!(warnings[0].contains("now admits any `Person`"));
    }

    #[test]
    fn feedback_renders() {
        let fb = Feedback {
            op: ModOp::AddTypeDefinition { ty: "T".into() },
            warnings: vec!["careful".into()],
            infos: vec!["fyi".into()],
            impact: ImpactReport::default(),
        };
        let text = fb.render();
        assert!(text.contains("applied: add_type_definition(T)"));
        assert!(text.contains("warning: careful"));
        assert!(text.contains("info: fyi"));
    }
}
