//! Repair advice (paper §5, listed as a possible extension): "Constraint
//! Analysis can be used in the consistency check to suggest the operations
//! that need to be altered to enforce semantic constraints."
//!
//! For each consistency finding, [`advise`] proposes concrete modification
//! operations (as modification-language statements) that would resolve it.
//! Suggestions are advice, not actions: the designer reviews and issues
//! them like any other operation.

use crate::consistency::{ConsistencyReport, CrossIssue};
use sws_model::{SchemaGraph, WfIssue};

/// One repair suggestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    /// The finding being addressed (rendered).
    pub finding: String,
    /// Candidate modification-language statements, most direct first.
    pub candidates: Vec<String>,
}

/// Propose repairs for every finding in `report`.
pub fn advise(report: &ConsistencyReport, working: &SchemaGraph) -> Vec<Suggestion> {
    report
        .findings
        .iter()
        .filter_map(|finding| {
            let candidates = candidates_for(finding, working);
            (!candidates.is_empty()).then(|| Suggestion {
                finding: finding.to_string(),
                candidates,
            })
        })
        .collect()
}

fn candidates_for(finding: &CrossIssue, g: &SchemaGraph) -> Vec<String> {
    match finding {
        CrossIssue::Wf(WfIssue::DanglingAttrDomain {
            ty,
            attribute,
            referenced,
        }) => vec![
            format!("add_type_definition({referenced})"),
            format!("delete_attribute({ty}, {attribute})"),
        ],
        CrossIssue::Wf(WfIssue::DanglingOpType {
            ty,
            operation,
            referenced,
        }) => vec![
            format!("add_type_definition({referenced})"),
            format!("delete_operation({ty}, {operation})"),
        ],
        CrossIssue::Wf(WfIssue::KeyAttributeMissing { ty, key, attribute }) => vec![
            format!("add_attribute({ty}, string, {attribute})"),
            format!("delete_key_list({ty}, ({key}))"),
        ],
        CrossIssue::Wf(WfIssue::OrderByAttributeMissing {
            ty,
            path,
            target,
            attribute,
        }) => vec![
            format!("add_attribute({target}, string, {attribute})"),
            format!("modify_relationship_order_by({ty}, {path}, ({attribute}), ())"),
        ],
        CrossIssue::Wf(WfIssue::InheritedMemberConflict { ty, member, .. }) => {
            vec![format!("delete_attribute({ty}, {member})")]
        }
        CrossIssue::LostKey { ty } => {
            // Suggest re-adding a key over the first available attribute.
            let attr = g
                .type_id(ty)
                .and_then(|id| g.ty(id).attrs.first().map(|&a| g.attr(a).name));
            match attr {
                Some(attr) => vec![format!("add_key_list({ty}, ({attr}))")],
                None => vec![],
            }
        }
        CrossIssue::LostExtent { ty } => {
            vec![format!(
                "add_extent_name({ty}, {}_extent)",
                ty.to_lowercase()
            )]
        }
        CrossIssue::IsolatedType { ty } => vec![format!("delete_type_definition({ty})")],
        CrossIssue::AbstractLeaf { ty } => vec![format!("delete_type_definition({ty})")],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::check_consistency;
    use crate::oplang::parse_statement;
    use sws_model::schema_to_graph;
    use sws_odl::parse_schema;

    fn graph(src: &str) -> SchemaGraph {
        schema_to_graph(&parse_schema(src).unwrap()).unwrap()
    }

    #[test]
    fn dangling_domain_gets_two_alternatives() {
        let g = graph("interface A { attribute set<Ghost> gs; attribute long x; }");
        let report = check_consistency(&g, &g);
        let advice = advise(&report, &g);
        let s = advice
            .iter()
            .find(|s| s.finding.contains("Ghost"))
            .expect("suggestion for the dangling domain");
        assert_eq!(
            s.candidates,
            vec![
                "add_type_definition(Ghost)".to_string(),
                "delete_attribute(A, gs)".to_string()
            ]
        );
    }

    #[test]
    fn lost_key_suggests_readding() {
        let sw = graph("interface A { attribute long x; keys x; }");
        let mut cu = sw.clone();
        let a = cu.type_id("A").unwrap();
        cu.remove_key(a, &sws_odl::Key::single("x")).unwrap();
        let report = check_consistency(&cu, &sw);
        let advice = advise(&report, &cu);
        assert!(advice
            .iter()
            .any(|s| s.candidates.contains(&"add_key_list(A, (x))".to_string())));
    }

    #[test]
    fn isolated_type_suggests_deletion() {
        let g = graph("interface Loner { } interface A { attribute long x; }");
        let report = check_consistency(&g, &g);
        let advice = advise(&report, &g);
        assert!(advice.iter().any(|s| s
            .candidates
            .contains(&"delete_type_definition(Loner)".to_string())));
    }

    #[test]
    fn all_suggestions_are_parseable_statements() {
        // Every candidate the advisor emits must be valid modification
        // language.
        let g = graph(
            "interface Loner { } \
             interface A { attribute set<Ghost> gs; attribute long x; keys nope; }",
        );
        let report = check_consistency(&g, &g);
        for s in advise(&report, &g) {
            for candidate in &s.candidates {
                parse_statement(candidate)
                    .unwrap_or_else(|e| panic!("unparseable suggestion {candidate:?}: {e}"));
            }
        }
    }

    #[test]
    fn clean_schema_yields_no_advice() {
        let g = graph("interface A { attribute long x; keys x; }");
        let report = check_consistency(&g, &g);
        assert!(advise(&report, &g).is_empty());
    }
}
