//! The design workspace: the integrated, customized user schema under
//! design, plus the full apply pipeline (Fig. 1 of the paper).
//!
//! A [`Workspace`] holds
//!
//! * the immutable **shrink wrap schema** (the reference for semantic
//!   stability and for the mapping),
//! * the **working schema** — the integrated, customized user schema all
//!   concept-schema modifications land in,
//! * the **operation log** — every applied operation with its
//!   concept-schema context and impact, replayable and persistable.
//!
//! Applying an operation runs the pipeline: permission check (Table 1) →
//! precondition constraints → mutation + propagation → cautionary feedback.
//!
//! Three incremental structures ride along (see `docs/performance.md`):
//!
//! * two [`QueryCache`]s memoize hierarchy traversals — one paired with the
//!   working schema (invalidated by its generation counter), one with the
//!   immutable shrink wrap schema (never invalidated);
//! * an **undo log** of [`UndoPatch`]es, one per applied operation, so
//!   rejection cleanup and [`Workspace::reset`] replay inverse images
//!   instead of cloning the whole graph;
//! * a [`ConsistencyState`] holding per-type consistency findings, kept
//!   current incrementally from each operation's
//!   [`DirtySet`](crate::impact::DirtySet). Consistency maintenance is
//!   *lazy*: [`Workspace::consistency`] syncs on demand, so a whole
//!   [`Workspace::apply_script`] batch is verified once at the next read,
//!   not once per operation.

use crate::concept::{decompose, ConceptKind, Decomposition};
use crate::consistency::{ConsistencyReport, ConsistencyState};
use crate::constraints::check_preconditions_cached;
use crate::feedback::{cautionary, Feedback};
use crate::impact::{DirtySet, ImpactReport};
use crate::ops::apply::apply_op;
use crate::ops::{ModOp, OpError, PermissionMatrix};
use std::cell::RefCell;
use sws_model::{QueryCache, SchemaGraph, UndoPatch};

/// One log record: an operation that was applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedOp {
    /// The operation.
    pub op: ModOp,
    /// The concept-schema context it was issued in.
    pub context: ConceptKind,
    /// The propagation it triggered.
    pub impact: ImpactReport,
}

/// The design workspace. See the module docs.
#[derive(Debug, Clone)]
pub struct Workspace {
    shrink_wrap: SchemaGraph,
    working: SchemaGraph,
    log: Vec<AppliedOp>,
    /// One undo patch per log entry, in application order.
    undo: Vec<UndoPatch>,
    matrix: PermissionMatrix,
    /// Memoized traversals over `working` (generation-invalidated).
    qc_working: QueryCache,
    /// Memoized traversals over `shrink_wrap` (it never mutates, so this
    /// cache never invalidates).
    qc_shrink: QueryCache,
    /// True when the working schema was seeded from a checkpoint snapshot
    /// instead of replaying ops from the shrink wrap — the log then only
    /// covers the tail, so undo cannot reach back to the shrink wrap.
    resumed: bool,
    /// Incrementally-maintained consistency findings; interior mutability
    /// so read paths (`consistency`, `DesignReport::generate`) can sync
    /// lazily from `&self`.
    state: RefCell<ConsistencyState>,
}

impl Workspace {
    /// Start a design session from a shrink wrap schema. The working schema
    /// begins as a copy of it.
    pub fn new(shrink_wrap: SchemaGraph) -> Self {
        let working = shrink_wrap.clone();
        Workspace::build(shrink_wrap, working, false)
    }

    /// Resume a design session from a checkpoint snapshot: the working
    /// schema starts at `working` (the snapshot image, already carrying
    /// every checkpointed op) instead of a copy of the shrink wrap, and
    /// the log records only the ops replayed after it.
    pub fn resume(shrink_wrap: SchemaGraph, working: SchemaGraph) -> Self {
        Workspace::build(shrink_wrap, working, true)
    }

    fn build(shrink_wrap: SchemaGraph, working: SchemaGraph, resumed: bool) -> Self {
        Workspace {
            shrink_wrap,
            working,
            log: Vec::new(),
            undo: Vec::new(),
            matrix: PermissionMatrix::new(),
            qc_working: QueryCache::new(),
            qc_shrink: QueryCache::new(),
            state: RefCell::new(ConsistencyState::new()),
            resumed,
        }
    }

    /// Was this workspace seeded from a checkpoint snapshot?
    pub fn is_resumed(&self) -> bool {
        self.resumed
    }

    /// The immutable shrink wrap schema.
    pub fn shrink_wrap(&self) -> &SchemaGraph {
        &self.shrink_wrap
    }

    /// The integrated, customized user schema.
    pub fn working(&self) -> &SchemaGraph {
        &self.working
    }

    /// The operation log, in application order.
    pub fn log(&self) -> &[AppliedOp] {
        &self.log
    }

    /// Decompose the *current working schema* into concept schemas.
    pub fn concept_schemas(&self) -> Decomposition {
        decompose(&self.working)
    }

    /// Apply `op` in the context of a `context` concept schema.
    ///
    /// Pipeline: Table 1 permission → precondition constraints → mutation
    /// with propagation → cautionary feedback. On error nothing changes:
    /// the mutation runs inside an undo frame, so even a mid-cascade
    /// failure is rolled back from the journal rather than left behind.
    pub fn apply(&mut self, context: ConceptKind, op: ModOp) -> Result<Feedback, OpError> {
        let mut sp = sws_trace::span!("ws.apply", op = op.kind().name(), context = context.tag());
        if !self.matrix.allows(context, op.kind()) {
            sp.record("verdict", "not_permitted");
            sws_trace::counter("ws.ops_rejected", 1);
            return Err(OpError::NotPermitted {
                op: op.kind(),
                context,
            });
        }
        let violations = {
            let mut pre = sws_trace::span("core.preconditions");
            let violations = check_preconditions_cached(
                &op,
                &self.working,
                &self.shrink_wrap,
                &self.qc_working,
                &self.qc_shrink,
            );
            pre.record("violations", violations.len());
            violations
        };
        if !violations.is_empty() {
            sp.record("verdict", "rejected");
            sws_trace::counter("ws.ops_rejected", 1);
            return Err(OpError::Violations(violations));
        }
        self.working.begin_undo();
        let outcome = {
            let _mutate = sws_trace::span("core.apply_op");
            match apply_op(&mut self.working, &op) {
                Ok(outcome) => outcome,
                Err(e) => {
                    self.working.rollback_undo();
                    sp.record("verdict", "error");
                    sws_trace::counter("ws.ops_rejected", 1);
                    return Err(e);
                }
            }
        };
        let patch = self.working.commit_undo();
        sws_trace::counter("ws.undo_entries", patch.touched() as u64);
        self.undo.push(patch);
        self.state
            .borrow_mut()
            .record(&DirtySet::from_op(&op, &outcome.cascade));
        let impact = ImpactReport::from_cascade(&outcome.cascade, &outcome.notes);
        let (warnings, infos) = cautionary(&op, &self.working);
        sp.record("verdict", "ok");
        sp.record("warnings", warnings.len());
        sp.record("infos", infos.len());
        sp.record("impacted", impact.len());
        sws_trace::counter("ws.ops_applied", 1);
        self.log.push(AppliedOp {
            op: op.clone(),
            context,
            impact: impact.clone(),
        });
        Ok(Feedback {
            op,
            warnings,
            infos,
            impact,
        })
    }

    /// Apply a whole script in one context, stopping at the first error and
    /// reporting how many operations succeeded before it.
    pub fn apply_script(
        &mut self,
        context: ConceptKind,
        ops: impl IntoIterator<Item = ModOp>,
    ) -> Result<Vec<Feedback>, (usize, OpError)> {
        let mut sp = sws_trace::span!("ws.apply_script", context = context.tag());
        let mut feedback = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match self.apply(context, op) {
                Ok(fb) => feedback.push(fb),
                Err(e) => {
                    sp.record("applied", i);
                    sp.record("failed_at", i);
                    return Err((i, e));
                }
            }
        }
        sp.record("applied", feedback.len());
        Ok(feedback)
    }

    /// Replay helper: apply the ops of another workspace's log (used by the
    /// repository when loading a persisted session).
    pub fn replay(
        &mut self,
        records: impl IntoIterator<Item = (ConceptKind, ModOp)>,
    ) -> Result<(), (usize, OpError)> {
        let mut sp = sws_trace::span("ws.replay");
        let mut applied = 0usize;
        for (i, (context, op)) in records.into_iter().enumerate() {
            self.apply(context, op).map_err(|e| (i, e))?;
            applied = i + 1;
        }
        sp.record("applied", applied);
        Ok(())
    }

    /// The consistency report for the current working schema, maintained
    /// incrementally: only the types affected by operations applied since
    /// the last call are rechecked.
    ///
    /// Large dirty closures fan out across worker threads sharing one
    /// frozen closure index (see [`crate::parallel`]); small ones stay on
    /// the serial, allocation-free path using the state's persistent
    /// scratch. Either way the report is identical — in debug builds the
    /// incremental result is asserted identical to a from-scratch
    /// [`check_consistency`] run.
    pub fn consistency(&self) -> ConsistencyReport {
        let report = {
            let mut state = self.state.borrow_mut();
            state.sync(&self.working, &self.shrink_wrap);
            state.report(&self.working)
        };
        #[cfg(debug_assertions)]
        {
            let full = crate::consistency::check_consistency(&self.working, &self.shrink_wrap);
            debug_assert_eq!(
                report, full,
                "incremental consistency diverged from full recheck"
            );
        }
        report
    }

    /// Escape hatch: discard the incremental consistency state and recheck
    /// everything from scratch.
    pub fn full_recheck(&self) -> ConsistencyReport {
        self.state.borrow_mut().invalidate();
        self.consistency()
    }

    /// The query cache paired with the working schema.
    pub fn query_cache(&self) -> &QueryCache {
        &self.qc_working
    }

    /// Reset the working schema back to the shrink wrap schema by replaying
    /// the undo log in reverse, clearing the log.
    pub fn reset(&mut self) {
        let mut sp = sws_trace::span!("ws.reset", patches = self.undo.len());
        while let Some(patch) = self.undo.pop() {
            self.working.revert(&patch);
        }
        self.log.clear();
        self.state.borrow_mut().invalidate();
        sp.record("generation", self.working.generation() as usize);
        // Oracle: undo replay must land on a graph structurally identical
        // to the graph the session started from — the shrink wrap copy,
        // unless the workspace was resumed from a checkpoint snapshot (the
        // undo journal then only reaches back to the snapshot image).
        #[cfg(test)]
        debug_assert!(
            self.resumed || sws_model::diff_graphs(&self.shrink_wrap, &self.working).is_empty(),
            "undo replay diverged from the shrink wrap schema:\n{:#?}",
            sws_model::diff_graphs(&self.shrink_wrap, &self.working)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::check_consistency;
    use crate::ops::OpKind;
    use sws_model::{graph_to_schema, schema_to_graph};
    use sws_odl::parse_schema;

    fn workspace() -> Workspace {
        let src = r#"
        schema Dept {
            interface Person { attribute string name; }
            interface Employee : Person {
                relationship Department works_in_a inverse Department::has;
            }
            interface Department {
                relationship set<Employee> has inverse Employee::works_in_a;
            }
        }"#;
        Workspace::new(schema_to_graph(&parse_schema(src).unwrap()).unwrap())
    }

    #[test]
    fn permission_gate_runs_first() {
        let mut ws = workspace();
        // A move issued from a wagon wheel: rejected by Table 1.
        let err = ws
            .apply(
                ConceptKind::WagonWheel,
                ModOp::ModifyAttribute {
                    ty: "Person".into(),
                    name: "name".into(),
                    new_ty: "Employee".into(),
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            OpError::NotPermitted {
                op: OpKind::ModifyAttribute,
                context: ConceptKind::WagonWheel
            }
        );
        assert!(ws.log().is_empty());
    }

    #[test]
    fn constraint_gate_blocks_without_mutation() {
        let mut ws = workspace();
        let before = graph_to_schema(ws.working());
        let err = ws
            .apply(
                ConceptKind::WagonWheel,
                ModOp::AddTypeDefinition {
                    ty: "Person".into(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, OpError::Violations(_)));
        assert_eq!(graph_to_schema(ws.working()), before);
    }

    #[test]
    fn successful_apply_logs_and_reports() {
        let mut ws = workspace();
        let fb = ws
            .apply(
                ConceptKind::Generalization,
                ModOp::ModifyRelationshipTargetType {
                    ty: "Department".into(),
                    path: "has".into(),
                    old_target: "Employee".into(),
                    new_target: "Person".into(),
                },
            )
            .unwrap();
        assert!(!fb.warnings.is_empty());
        assert_eq!(ws.log().len(), 1);
        let person = ws.working().type_id("Person").unwrap();
        assert!(ws.working().find_rel_end(person, "works_in_a").is_some());
        // Shrink wrap untouched.
        let sw_person = ws.shrink_wrap().type_id("Person").unwrap();
        assert!(ws
            .shrink_wrap()
            .find_rel_end(sw_person, "works_in_a")
            .is_none());
    }

    #[test]
    fn semantic_stability_judged_against_shrink_wrap() {
        let mut ws = workspace();
        // Sever Employee from Person in the working schema...
        ws.apply(
            ConceptKind::Generalization,
            ModOp::DeleteSupertype {
                ty: "Employee".into(),
                supertype: "Person".into(),
            },
        )
        .unwrap();
        // ...the move is STILL legal, because the shrink wrap hierarchy has
        // Employee under Person (the paper judges stability against the
        // hierarchy "established by the shrink wrap schema").
        ws.apply(
            ConceptKind::Generalization,
            ModOp::ModifyRelationshipTargetType {
                ty: "Department".into(),
                path: "has".into(),
                old_target: "Employee".into(),
                new_target: "Person".into(),
            },
        )
        .unwrap();
    }

    #[test]
    fn script_stops_at_first_error() {
        let mut ws = workspace();
        let err = ws
            .apply_script(
                ConceptKind::WagonWheel,
                vec![
                    ModOp::AddTypeDefinition { ty: "A".into() },
                    ModOp::AddTypeDefinition { ty: "A".into() }, // duplicate
                    ModOp::AddTypeDefinition { ty: "B".into() },
                ],
            )
            .unwrap_err();
        assert_eq!(err.0, 1);
        assert!(ws.working().type_id("A").is_some());
        assert!(ws.working().type_id("B").is_none());
    }

    #[test]
    fn reset_restores_shrink_wrap() {
        let mut ws = workspace();
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::AddTypeDefinition { ty: "X".into() },
        )
        .unwrap();
        ws.reset();
        assert!(ws.working().type_id("X").is_none());
        assert!(ws.log().is_empty());
        assert_eq!(
            graph_to_schema(ws.working()),
            graph_to_schema(ws.shrink_wrap())
        );
    }

    #[test]
    fn incremental_consistency_matches_full_recheck() {
        let mut ws = workspace();
        // Sequence of ops dirtying different regions; after each, the
        // incremental report must equal a from-scratch check (the debug
        // assertion inside consistency() also verifies this on every call).
        let ops: Vec<(ConceptKind, ModOp)> = vec![
            (
                ConceptKind::WagonWheel,
                ModOp::AddTypeDefinition { ty: "X".into() },
            ),
            (
                ConceptKind::Generalization,
                ModOp::DeleteSupertype {
                    ty: "Employee".into(),
                    supertype: "Person".into(),
                },
            ),
            (
                ConceptKind::WagonWheel,
                ModOp::DeleteAttribute {
                    ty: "Person".into(),
                    name: "name".into(),
                },
            ),
        ];
        for (context, op) in ops {
            ws.apply(context, op).unwrap();
            let incremental = ws.consistency();
            let full = check_consistency(ws.working(), ws.shrink_wrap());
            assert_eq!(incremental, full);
        }
        // X is isolated; the finding must be present.
        assert!(ws.consistency().findings.iter().any(
            |f| matches!(f, crate::consistency::CrossIssue::IsolatedType { ty } if ty == "X")
        ));
    }

    #[test]
    fn full_recheck_escape_hatch_agrees() {
        let mut ws = workspace();
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::AddTypeDefinition { ty: "X".into() },
        )
        .unwrap();
        let incremental = ws.consistency();
        let full = ws.full_recheck();
        assert_eq!(incremental, full);
        // And the state is usable again after the escape hatch.
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::DeleteTypeDefinition { ty: "X".into() },
        )
        .unwrap();
        assert_eq!(
            ws.consistency(),
            check_consistency(ws.working(), ws.shrink_wrap())
        );
    }

    #[test]
    fn consistency_tracks_cross_type_deletion() {
        // Deleting B leaves A::bs dangling — the incremental path must
        // recheck A even though the op only names B.
        let src = "interface A { attribute set<B> bs; attribute long x; } interface B { attribute long y; }";
        let mut ws = Workspace::new(schema_to_graph(&sws_odl::parse_schema(src).unwrap()).unwrap());
        assert!(ws.consistency().errors().next().is_none());
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::DeleteTypeDefinition { ty: "B".into() },
        )
        .unwrap();
        assert!(ws.consistency().errors().next().is_some());
        // Adding B back fixes it — existence change again expands to A.
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::AddTypeDefinition { ty: "B".into() },
        )
        .unwrap();
        assert!(ws.consistency().errors().next().is_none());
    }

    #[test]
    fn reset_replays_undo_log_exactly() {
        let mut ws = workspace();
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::AddTypeDefinition { ty: "X".into() },
        )
        .unwrap();
        ws.apply(
            ConceptKind::Generalization,
            ModOp::ModifyRelationshipTargetType {
                ty: "Department".into(),
                path: "has".into(),
                old_target: "Employee".into(),
                new_target: "Person".into(),
            },
        )
        .unwrap();
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::DeleteTypeDefinition {
                ty: "Employee".into(),
            },
        )
        .unwrap();
        ws.reset();
        // reset() itself asserts diff_graphs-emptiness; double-check the
        // structural identity from the outside too.
        assert!(sws_model::diff_graphs(ws.shrink_wrap(), ws.working()).is_empty());
        assert!(ws.log().is_empty());
        assert_eq!(
            ws.consistency(),
            check_consistency(ws.working(), ws.shrink_wrap())
        );
    }

    #[test]
    fn concept_schemas_reflect_working_state() {
        let mut ws = workspace();
        let before = ws.concept_schemas().wagon_wheels.len();
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::AddTypeDefinition { ty: "X".into() },
        )
        .unwrap();
        assert_eq!(ws.concept_schemas().wagon_wheels.len(), before + 1);
    }
}
