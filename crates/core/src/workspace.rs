//! The design workspace: the integrated, customized user schema under
//! design, plus the full apply pipeline (Fig. 1 of the paper).
//!
//! A [`Workspace`] holds
//!
//! * the immutable **shrink wrap schema** (the reference for semantic
//!   stability and for the mapping),
//! * the **working schema** — the integrated, customized user schema all
//!   concept-schema modifications land in,
//! * the **operation log** — every applied operation with its
//!   concept-schema context and impact, replayable and persistable.
//!
//! Applying an operation runs the pipeline: permission check (Table 1) →
//! precondition constraints → mutation + propagation → cautionary feedback.

use crate::concept::{decompose, ConceptKind, Decomposition};
use crate::constraints::check_preconditions;
use crate::feedback::{cautionary, Feedback};
use crate::impact::ImpactReport;
use crate::ops::apply::apply_op;
use crate::ops::{ModOp, OpError, PermissionMatrix};
use sws_model::SchemaGraph;

/// One log record: an operation that was applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedOp {
    /// The operation.
    pub op: ModOp,
    /// The concept-schema context it was issued in.
    pub context: ConceptKind,
    /// The propagation it triggered.
    pub impact: ImpactReport,
}

/// The design workspace. See the module docs.
#[derive(Debug, Clone)]
pub struct Workspace {
    shrink_wrap: SchemaGraph,
    working: SchemaGraph,
    log: Vec<AppliedOp>,
    matrix: PermissionMatrix,
}

impl Workspace {
    /// Start a design session from a shrink wrap schema. The working schema
    /// begins as a copy of it.
    pub fn new(shrink_wrap: SchemaGraph) -> Self {
        let working = shrink_wrap.clone();
        Workspace {
            shrink_wrap,
            working,
            log: Vec::new(),
            matrix: PermissionMatrix::new(),
        }
    }

    /// The immutable shrink wrap schema.
    pub fn shrink_wrap(&self) -> &SchemaGraph {
        &self.shrink_wrap
    }

    /// The integrated, customized user schema.
    pub fn working(&self) -> &SchemaGraph {
        &self.working
    }

    /// The operation log, in application order.
    pub fn log(&self) -> &[AppliedOp] {
        &self.log
    }

    /// Decompose the *current working schema* into concept schemas.
    pub fn concept_schemas(&self) -> Decomposition {
        decompose(&self.working)
    }

    /// Apply `op` in the context of a `context` concept schema.
    ///
    /// Pipeline: Table 1 permission → precondition constraints → mutation
    /// with propagation → cautionary feedback. On error nothing changes.
    pub fn apply(&mut self, context: ConceptKind, op: ModOp) -> Result<Feedback, OpError> {
        let mut sp = sws_trace::span!("ws.apply", op = op.kind().name(), context = context.tag());
        if !self.matrix.allows(context, op.kind()) {
            sp.record("verdict", "not_permitted");
            sws_trace::counter("ws.ops_rejected", 1);
            return Err(OpError::NotPermitted {
                op: op.kind(),
                context,
            });
        }
        let violations = {
            let mut pre = sws_trace::span("core.preconditions");
            let violations = check_preconditions(&op, &self.working, &self.shrink_wrap);
            pre.record("violations", violations.len());
            violations
        };
        if !violations.is_empty() {
            sp.record("verdict", "rejected");
            sws_trace::counter("ws.ops_rejected", 1);
            return Err(OpError::Violations(violations));
        }
        let outcome = {
            let _mutate = sws_trace::span("core.apply_op");
            match apply_op(&mut self.working, &op) {
                Ok(outcome) => outcome,
                Err(e) => {
                    sp.record("verdict", "error");
                    sws_trace::counter("ws.ops_rejected", 1);
                    return Err(e);
                }
            }
        };
        let impact = ImpactReport::from_cascade(&outcome.cascade, &outcome.notes);
        let (warnings, infos) = cautionary(&op, &self.working);
        sp.record("verdict", "ok");
        sp.record("warnings", warnings.len());
        sp.record("infos", infos.len());
        sp.record("impacted", impact.len());
        sws_trace::counter("ws.ops_applied", 1);
        self.log.push(AppliedOp {
            op: op.clone(),
            context,
            impact: impact.clone(),
        });
        Ok(Feedback {
            op,
            warnings,
            infos,
            impact,
        })
    }

    /// Apply a whole script in one context, stopping at the first error and
    /// reporting how many operations succeeded before it.
    pub fn apply_script(
        &mut self,
        context: ConceptKind,
        ops: impl IntoIterator<Item = ModOp>,
    ) -> Result<Vec<Feedback>, (usize, OpError)> {
        let mut sp = sws_trace::span!("ws.apply_script", context = context.tag());
        let mut feedback = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match self.apply(context, op) {
                Ok(fb) => feedback.push(fb),
                Err(e) => {
                    sp.record("applied", i);
                    sp.record("failed_at", i);
                    return Err((i, e));
                }
            }
        }
        sp.record("applied", feedback.len());
        Ok(feedback)
    }

    /// Replay helper: apply the ops of another workspace's log (used by the
    /// repository when loading a persisted session).
    pub fn replay(
        &mut self,
        records: impl IntoIterator<Item = (ConceptKind, ModOp)>,
    ) -> Result<(), (usize, OpError)> {
        let mut sp = sws_trace::span("ws.replay");
        let mut applied = 0usize;
        for (i, (context, op)) in records.into_iter().enumerate() {
            self.apply(context, op).map_err(|e| (i, e))?;
            applied = i + 1;
        }
        sp.record("applied", applied);
        Ok(())
    }

    /// Reset the working schema back to the shrink wrap schema, clearing
    /// the log.
    pub fn reset(&mut self) {
        self.working = self.shrink_wrap.clone();
        self.log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpKind;
    use sws_model::{graph_to_schema, schema_to_graph};
    use sws_odl::parse_schema;

    fn workspace() -> Workspace {
        let src = r#"
        schema Dept {
            interface Person { attribute string name; }
            interface Employee : Person {
                relationship Department works_in_a inverse Department::has;
            }
            interface Department {
                relationship set<Employee> has inverse Employee::works_in_a;
            }
        }"#;
        Workspace::new(schema_to_graph(&parse_schema(src).unwrap()).unwrap())
    }

    #[test]
    fn permission_gate_runs_first() {
        let mut ws = workspace();
        // A move issued from a wagon wheel: rejected by Table 1.
        let err = ws
            .apply(
                ConceptKind::WagonWheel,
                ModOp::ModifyAttribute {
                    ty: "Person".into(),
                    name: "name".into(),
                    new_ty: "Employee".into(),
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            OpError::NotPermitted {
                op: OpKind::ModifyAttribute,
                context: ConceptKind::WagonWheel
            }
        );
        assert!(ws.log().is_empty());
    }

    #[test]
    fn constraint_gate_blocks_without_mutation() {
        let mut ws = workspace();
        let before = graph_to_schema(ws.working());
        let err = ws
            .apply(
                ConceptKind::WagonWheel,
                ModOp::AddTypeDefinition {
                    ty: "Person".into(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, OpError::Violations(_)));
        assert_eq!(graph_to_schema(ws.working()), before);
    }

    #[test]
    fn successful_apply_logs_and_reports() {
        let mut ws = workspace();
        let fb = ws
            .apply(
                ConceptKind::Generalization,
                ModOp::ModifyRelationshipTargetType {
                    ty: "Department".into(),
                    path: "has".into(),
                    old_target: "Employee".into(),
                    new_target: "Person".into(),
                },
            )
            .unwrap();
        assert!(!fb.warnings.is_empty());
        assert_eq!(ws.log().len(), 1);
        let person = ws.working().type_id("Person").unwrap();
        assert!(ws.working().find_rel_end(person, "works_in_a").is_some());
        // Shrink wrap untouched.
        let sw_person = ws.shrink_wrap().type_id("Person").unwrap();
        assert!(ws
            .shrink_wrap()
            .find_rel_end(sw_person, "works_in_a")
            .is_none());
    }

    #[test]
    fn semantic_stability_judged_against_shrink_wrap() {
        let mut ws = workspace();
        // Sever Employee from Person in the working schema...
        ws.apply(
            ConceptKind::Generalization,
            ModOp::DeleteSupertype {
                ty: "Employee".into(),
                supertype: "Person".into(),
            },
        )
        .unwrap();
        // ...the move is STILL legal, because the shrink wrap hierarchy has
        // Employee under Person (the paper judges stability against the
        // hierarchy "established by the shrink wrap schema").
        ws.apply(
            ConceptKind::Generalization,
            ModOp::ModifyRelationshipTargetType {
                ty: "Department".into(),
                path: "has".into(),
                old_target: "Employee".into(),
                new_target: "Person".into(),
            },
        )
        .unwrap();
    }

    #[test]
    fn script_stops_at_first_error() {
        let mut ws = workspace();
        let err = ws
            .apply_script(
                ConceptKind::WagonWheel,
                vec![
                    ModOp::AddTypeDefinition { ty: "A".into() },
                    ModOp::AddTypeDefinition { ty: "A".into() }, // duplicate
                    ModOp::AddTypeDefinition { ty: "B".into() },
                ],
            )
            .unwrap_err();
        assert_eq!(err.0, 1);
        assert!(ws.working().type_id("A").is_some());
        assert!(ws.working().type_id("B").is_none());
    }

    #[test]
    fn reset_restores_shrink_wrap() {
        let mut ws = workspace();
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::AddTypeDefinition { ty: "X".into() },
        )
        .unwrap();
        ws.reset();
        assert!(ws.working().type_id("X").is_none());
        assert!(ws.log().is_empty());
        assert_eq!(
            graph_to_schema(ws.working()),
            graph_to_schema(ws.shrink_wrap())
        );
    }

    #[test]
    fn concept_schemas_reflect_working_state() {
        let mut ws = workspace();
        let before = ws.concept_schemas().wagon_wheels.len();
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::AddTypeDefinition { ty: "X".into() },
        )
        .unwrap();
        assert_eq!(ws.concept_schemas().wagon_wheels.len(), before + 1);
    }
}
