//! Local names: the §5 extension the paper describes as straightforward
//! and out of mainstream scope.
//!
//! > "We acknowledge that database designers are very likely to want to
//! > introduce local names for constructs that appear in the schema. The
//! > extension of our work to handle this possibility requires that the
//! > user indicate a change of name, and that the system maintain the
//! > mapping from shrink wrap schema names to local names."
//!
//! An [`AliasTable`] maps canonical (shrink wrap) names to designer-chosen
//! local names. The workspace and all operations keep working on
//! *canonical* names — name equivalence stays intact — while
//! [`AliasTable::apply`] renders any canonical AST with local names for
//! presentation and export. The AAtDB `Phenotype` / ACEDB `Strain`
//! correspondence of §4 becomes expressible as `alias Strain -> Phenotype`
//! instead of delete + add.

use std::collections::BTreeMap;
use std::fmt;
use sws_odl::{DomainType, Schema};

/// Why an alias was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AliasError {
    /// The local name is already used as another type's local name (or is
    /// the canonical name of a different, un-aliased type).
    TypeNameTaken(String),
    /// The local member name collides within its type.
    MemberNameTaken { ty: String, member: String },
    /// Alias must differ from the canonical name.
    SameAsCanonical(String),
}

impl fmt::Display for AliasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AliasError::TypeNameTaken(n) => write!(f, "local type name `{n}` is already taken"),
            AliasError::MemberNameTaken { ty, member } => {
                write!(f, "local member name `{member}` is already taken on `{ty}`")
            }
            AliasError::SameAsCanonical(n) => {
                write!(f, "`{n}` is already the canonical name")
            }
        }
    }
}

impl std::error::Error for AliasError {}

/// The canonical → local name mapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AliasTable {
    /// canonical type name → local type name.
    // swslint: allow(string-keys): aliases are the designer's vocabulary,
    // not schema names — they never cross the Symbol boundary.
    types: BTreeMap<String, String>,
    /// (canonical type, canonical member) → local member name.
    members: BTreeMap<(String, String), String>,
}

impl AliasTable {
    /// An empty table.
    pub fn new() -> Self {
        AliasTable::default()
    }

    /// True if no aliases are registered.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty() && self.members.is_empty()
    }

    /// Register a local name for a type. `schema` supplies the collision
    /// context (the canonical schema being rendered).
    pub fn set_type_alias(
        &mut self,
        schema: &Schema,
        canonical: &str,
        local: &str,
    ) -> Result<(), AliasError> {
        if canonical == local {
            return Err(AliasError::SameAsCanonical(local.to_string()));
        }
        let clash = self.types.iter().any(|(c, l)| l == local && c != canonical)
            || schema
                .interfaces
                .iter()
                .any(|i| i.name == local && self.types.get(&i.name).is_none_or(|l| l == local));
        if clash {
            return Err(AliasError::TypeNameTaken(local.to_string()));
        }
        self.types.insert(canonical.to_string(), local.to_string());
        Ok(())
    }

    /// Register a local name for a member of a type (attribute,
    /// relationship path, operation, or link path).
    pub fn set_member_alias(
        &mut self,
        schema: &Schema,
        ty: &str,
        canonical: &str,
        local: &str,
    ) -> Result<(), AliasError> {
        if canonical == local {
            return Err(AliasError::SameAsCanonical(local.to_string()));
        }
        let key_owner = ty.to_string();
        let clash = self
            .members
            .iter()
            .any(|((t, m), l)| t == &key_owner && l == local && m != canonical)
            || schema.interface(ty).is_some_and(|i| {
                i.member_names().any(|m| {
                    m == local
                        && self
                            .members
                            .get(&(key_owner.clone(), m.to_string()))
                            .is_none_or(|l| l == local)
                })
            });
        if clash {
            return Err(AliasError::MemberNameTaken {
                ty: ty.to_string(),
                member: local.to_string(),
            });
        }
        self.members
            .insert((key_owner, canonical.to_string()), local.to_string());
        Ok(())
    }

    /// Remove a type alias. Returns whether one existed.
    pub fn clear_type_alias(&mut self, canonical: &str) -> bool {
        self.types.remove(canonical).is_some()
    }

    /// Remove a member alias. Returns whether one existed.
    pub fn clear_member_alias(&mut self, ty: &str, canonical: &str) -> bool {
        self.members
            .remove(&(ty.to_string(), canonical.to_string()))
            .is_some()
    }

    /// The local name of a type (canonical if un-aliased).
    pub fn local_type<'a>(&'a self, canonical: &'a str) -> &'a str {
        self.types
            .get(canonical)
            .map(String::as_str)
            .unwrap_or(canonical)
    }

    /// The local name of a member (canonical if un-aliased).
    pub fn local_member<'a>(&'a self, ty: &str, canonical: &'a str) -> &'a str {
        self.members
            .get(&(ty.to_string(), canonical.to_string()))
            .map(String::as_str)
            .unwrap_or(canonical)
    }

    /// All registered aliases, rendered one per line (the repository's
    /// persistence format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (canonical, local) in &self.types {
            out.push_str(&format!("type\t{canonical}\t{local}\n"));
        }
        for ((ty, member), local) in &self.members {
            out.push_str(&format!("member\t{ty}\t{member}\t{local}\n"));
        }
        out
    }

    /// Parse the [`Self::render`] format. Unknown lines are reported by
    /// index.
    pub fn parse(text: &str) -> Result<AliasTable, usize> {
        let mut table = AliasTable::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            match fields.as_slice() {
                ["type", canonical, local] => {
                    table.types.insert(canonical.to_string(), local.to_string());
                }
                ["member", ty, member, local] => {
                    table
                        .members
                        .insert((ty.to_string(), member.to_string()), local.to_string());
                }
                _ => return Err(i + 1),
            }
        }
        Ok(table)
    }

    /// Render a canonical AST with local names applied everywhere a name
    /// occurs: interface names, supertype references, relationship/link
    /// targets, inverse paths, attribute domains, key lists, and order-by
    /// lists.
    pub fn apply(&self, schema: &Schema) -> Schema {
        let mut out = schema.clone();
        for iface in &mut out.interfaces {
            let canonical_ty = iface.name.clone();
            iface.name = self.local_type(&canonical_ty).to_string();
            for sup in &mut iface.supertypes {
                *sup = self.local_type(sup).to_string();
            }
            for key in &mut iface.keys {
                for attr in &mut key.0 {
                    *attr = self.local_member(&canonical_ty, attr).to_string();
                }
            }
            for attr in &mut iface.attributes {
                attr.name = self.local_member(&canonical_ty, &attr.name).to_string();
                attr.ty = self.rename_domain(&attr.ty);
            }
            for op in &mut iface.operations {
                op.name = self.local_member(&canonical_ty, &op.name).to_string();
                op.return_type = self.rename_domain(&op.return_type);
                for p in &mut op.args {
                    p.ty = self.rename_domain(&p.ty);
                }
            }
            for rel in &mut iface.relationships {
                let target_canonical = rel.target.clone();
                rel.path = self.local_member(&canonical_ty, &rel.path).to_string();
                rel.inverse_path = self
                    .local_member(&target_canonical, &rel.inverse_path)
                    .to_string();
                for attr in &mut rel.order_by {
                    *attr = self.local_member(&target_canonical, attr).to_string();
                }
                rel.target = self.local_type(&target_canonical).to_string();
            }
            for link in iface.part_ofs.iter_mut().chain(&mut iface.instance_ofs) {
                let target_canonical = link.target.clone();
                link.path = self.local_member(&canonical_ty, &link.path).to_string();
                link.inverse_path = self
                    .local_member(&target_canonical, &link.inverse_path)
                    .to_string();
                for attr in &mut link.order_by {
                    *attr = self.local_member(&target_canonical, attr).to_string();
                }
                link.target = self.local_type(&target_canonical).to_string();
            }
        }
        out
    }

    fn rename_domain(&self, ty: &DomainType) -> DomainType {
        match ty {
            DomainType::Named(n) => DomainType::Named(self.local_type(n).to_string()),
            DomainType::Collection(kind, elem) => {
                DomainType::Collection(*kind, Box::new(self.rename_domain(elem)))
            }
            DomainType::Array(elem, n) => DomainType::Array(Box::new(self.rename_domain(elem)), *n),
            other => other.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_odl::{parse_schema, print_schema, validate_schema};

    fn schema() -> Schema {
        parse_schema(
            r#"
            interface Strain {
                extent strains;
                attribute string(32) strain_name;
                keys strain_name;
                relationship set<Allele> carries inverse Allele::carried_by
                    order_by (allele_name);
            }
            interface Allele {
                attribute string(32) allele_name;
                attribute set<Strain> related;
                relationship Strain carried_by inverse Strain::carries;
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn strain_to_phenotype_via_alias() {
        // The §4 / §5 scenario: the plant discipline calls a strain a
        // phenotype. With local names this is a rename, not delete + add.
        let canonical = schema();
        let mut aliases = AliasTable::new();
        aliases
            .set_type_alias(&canonical, "Strain", "Phenotype")
            .unwrap();
        aliases
            .set_member_alias(&canonical, "Strain", "strain_name", "phenotype_name")
            .unwrap();
        aliases
            .set_member_alias(&canonical, "Allele", "allele_name", "variant_name")
            .unwrap();
        let local = aliases.apply(&canonical);
        let text = print_schema(&local);
        assert!(text.contains("interface Phenotype"));
        assert!(!text.contains("Strain"));
        assert!(text.contains("attribute string(32) phenotype_name;"));
        assert!(text.contains("keys phenotype_name;"));
        // Relationship references renamed on both sides, incl. domains and
        // order-by lists (which reference the target type's attributes).
        assert!(text.contains("relationship Phenotype carried_by inverse Phenotype::carries;"));
        assert!(text.contains("order_by (variant_name)"), "{text}");
        assert!(text.contains("attribute set<Phenotype> related;"));
        // The rendered schema is still valid extended ODL.
        assert!(validate_schema(&local).is_empty());
    }

    #[test]
    fn collisions_rejected() {
        let canonical = schema();
        let mut aliases = AliasTable::new();
        // Colliding with another canonical type name.
        assert_eq!(
            aliases.set_type_alias(&canonical, "Strain", "Allele"),
            Err(AliasError::TypeNameTaken("Allele".into()))
        );
        // Identity alias.
        assert_eq!(
            aliases.set_type_alias(&canonical, "Strain", "Strain"),
            Err(AliasError::SameAsCanonical("Strain".into()))
        );
        // Member collision within the type.
        assert_eq!(
            aliases.set_member_alias(&canonical, "Strain", "strain_name", "carries"),
            Err(AliasError::MemberNameTaken {
                ty: "Strain".into(),
                member: "carries".into()
            })
        );
        // Two canonical types may not share one local name.
        aliases
            .set_type_alias(&canonical, "Strain", "Phenotype")
            .unwrap();
        assert_eq!(
            aliases.set_type_alias(&canonical, "Allele", "Phenotype"),
            Err(AliasError::TypeNameTaken("Phenotype".into()))
        );
    }

    #[test]
    fn swapping_canonical_name_allowed_when_freed() {
        // Aliasing Strain away frees `Strain` for another type's local
        // name... but we keep this conservative: `Strain` is only "taken"
        // by an interface whose own alias is absent. After aliasing Strain
        // to Phenotype, `Strain` can become Allele's local name.
        let canonical = schema();
        let mut aliases = AliasTable::new();
        aliases
            .set_type_alias(&canonical, "Strain", "Phenotype")
            .unwrap();
        aliases
            .set_type_alias(&canonical, "Allele", "Strain")
            .unwrap();
        let local = aliases.apply(&canonical);
        assert!(local.interface("Phenotype").is_some());
        assert!(local.interface("Strain").is_some());
        assert!(validate_schema(&local).is_empty());
    }

    #[test]
    fn render_parse_round_trip() {
        let canonical = schema();
        let mut aliases = AliasTable::new();
        aliases
            .set_type_alias(&canonical, "Strain", "Phenotype")
            .unwrap();
        aliases
            .set_member_alias(&canonical, "Strain", "carries", "exhibits")
            .unwrap();
        let text = aliases.render();
        let parsed = AliasTable::parse(&text).unwrap();
        assert_eq!(parsed, aliases);
        assert!(AliasTable::parse("garbage line").is_err());
        assert!(AliasTable::parse("# comment\n").unwrap().is_empty());
    }

    #[test]
    fn clearing_aliases() {
        let canonical = schema();
        let mut aliases = AliasTable::new();
        aliases
            .set_type_alias(&canonical, "Strain", "Phenotype")
            .unwrap();
        assert!(aliases.clear_type_alias("Strain"));
        assert!(!aliases.clear_type_alias("Strain"));
        assert!(aliases.is_empty());
        assert_eq!(aliases.apply(&canonical), canonical);
    }

    #[test]
    fn lookup_helpers() {
        let canonical = schema();
        let mut aliases = AliasTable::new();
        aliases
            .set_type_alias(&canonical, "Strain", "Phenotype")
            .unwrap();
        assert_eq!(aliases.local_type("Strain"), "Phenotype");
        assert_eq!(aliases.local_type("Allele"), "Allele");
        assert_eq!(aliases.local_member("Strain", "carries"), "carries");
    }
}
