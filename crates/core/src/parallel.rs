//! Deterministic scoped-thread parallel execution for the hot
//! verification paths.
//!
//! The paper's workflow — decompose into concept schemas, customize each
//! independently, re-verify the integrated result — is embarrassingly
//! parallel *per concept schema and per type*. This module is the
//! zero-dependency substrate the engine fans out on: a chunked work queue
//! over [`std::thread::scope`], sized by [`workers`].
//!
//! # Determinism guarantee
//!
//! [`map`] / [`map_with`] return results **in item order**, regardless of
//! worker count, scheduling, or chunk interleaving. Each worker grabs
//! contiguous chunks off a shared atomic cursor, computes its results
//! locally, and tags them with the chunk index; the merge sorts by chunk
//! index and concatenates. As long as the per-item function is a pure
//! function of `(index, item)` — which every consistency check and
//! decomposition walk is, per-worker caches being semantically transparent
//! — the output vector is byte-identical to the serial run. The
//! differential suite (`tests/parallel_differential.rs`) pins this for
//! every corpus schema across `SWS_THREADS ∈ {1, 2, 4, 8}`.
//!
//! # Worker-count resolution
//!
//! 1. a thread-local override ([`set_override`] / [`with_workers`]) —
//!    used by `swsd --threads` and the test/bench sweeps, immune to
//!    cross-test environment races;
//! 2. the `SWS_THREADS` environment variable (`1` = exact serial path);
//! 3. [`std::thread::available_parallelism`].
//!
//! Small inputs (fewer than [`PAR_MIN_ITEMS`] items) always take the
//! serial path: an incremental resync with a three-type dirty closure
//! should not pay thread-spawn latency.
//!
//! # Observability
//!
//! A parallel run opens a `core.parallel` span and emits, per worker, a
//! `core.parallel.worker` span plus the counters `core.parallel.workers`
//! (workers that actually ran), `core.parallel.chunks` (chunks
//! processed), and `core.parallel.steal` (chunks a worker took beyond its
//! fair share — i.e. work claimed off a slower sibling's notional
//! stripe). Chunk sizes feed the `core.parallel.shard_items` histogram.
//! The parent thread's active recorder is propagated into every worker,
//! so traces and counters from inside the fan-out land in the same
//! session.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Inputs smaller than this always run serially: below it, thread-spawn
/// latency dominates any possible speedup.
pub const PAR_MIN_ITEMS: usize = 8;

/// Each worker's share of the input is split into this many chunks, so a
/// worker that drew cheap items can steal the tail of a slower sibling's
/// stripe instead of idling at the barrier.
const CHUNKS_PER_WORKER: usize = 4;

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker count parallel maps on this thread will use: the
/// thread-local override if set, else `SWS_THREADS`, else
/// [`std::thread::available_parallelism`]. Always at least 1.
pub fn workers() -> usize {
    if let Some(n) = OVERRIDE.with(|c| c.get()) {
        return n.max(1);
    }
    match std::env::var("SWS_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => default_workers(),
        },
        Err(_) => default_workers(),
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The worker count a map over `len` items would actually fan out to
/// (1 = the exact serial path). Callers with a warm per-thread cache use
/// this to keep the serial path on that cache.
pub fn parallelism_for(len: usize) -> usize {
    if len < PAR_MIN_ITEMS {
        return 1;
    }
    workers().min(len.div_ceil(2)).max(1)
}

/// Set (or clear) this thread's worker-count override. Overrides
/// `SWS_THREADS`; used by `swsd --threads`.
pub fn set_override(n: Option<usize>) {
    OVERRIDE.with(|c| c.set(n));
}

/// Run `f` with the worker count forced to `n` on this thread, restoring
/// the previous override afterwards (also on panic). The differential
/// tests sweep thread counts through this without touching the process
/// environment.
pub fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

/// Parallel map with deterministic output order: `out[i] = f(i, &items[i])`.
pub fn map<T: Sync, R: Send>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
    map_with(items, || (), |(), i, t| f(i, t))
}

/// Parallel map with worker-local state: each worker calls `init` once
/// and threads the state through its items (serial runs share one state).
/// The state must be semantically transparent — a memo cache, a scratch
/// buffer — for the determinism guarantee to hold. Output order is item
/// order.
pub fn map_with<T, R, S>(
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let workers = parallelism_for(items.len());
    if workers <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    map_chunked(items, workers, &init, &f)
}

fn map_chunked<T, R, S>(
    items: &[T],
    workers: usize,
    init: &(impl Fn() -> S + Sync),
    f: &(impl Fn(&mut S, usize, &T) -> R + Sync),
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let chunk = items.len().div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let n_chunks = items.len().div_ceil(chunk);
    let workers = workers.min(n_chunks);
    // Fair share per worker; chunks taken beyond it were stolen from a
    // slower sibling's notional stripe.
    let fair = n_chunks.div_ceil(workers);
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(n_chunks));
    let recorder = sws_trace::current();

    let mut sp = sws_trace::span!(
        "core.parallel",
        items = items.len(),
        workers = workers,
        chunks = n_chunks
    );
    std::thread::scope(|scope| {
        for w in 0..workers {
            let cursor = &cursor;
            let parts = &parts;
            let recorder = recorder.clone();
            scope.spawn(move || {
                // Propagate the parent's recorder so worker spans and
                // counters land in the same trace session.
                let _guard = recorder.as_ref().map(|r| r.install_thread());
                let mut wsp = sws_trace::span!("core.parallel.worker", worker = w);
                sws_trace::counter("core.parallel.workers", 1);
                let mut state = init();
                let mut taken = 0usize;
                let mut done = 0usize;
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    taken += 1;
                    if taken > fair {
                        sws_trace::counter("core.parallel.steal", 1);
                    }
                    sws_trace::counter("core.parallel.chunks", 1);
                    let lo = c * chunk;
                    let hi = ((c + 1) * chunk).min(items.len());
                    sws_trace::record_value("core.parallel.shard_items", (hi - lo) as u64);
                    let out: Vec<R> = items[lo..hi]
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(&mut state, lo + i, t))
                        .collect();
                    done += out.len();
                    parts
                        .lock()
                        .expect("worker panicked holding parts")
                        .push((c, out));
                }
                wsp.record("chunks", taken);
                wsp.record("items", done);
            });
        }
    });

    let mut msp = sws_trace::span!("core.parallel.merge", parts = n_chunks);
    let mut parts = parts.into_inner().expect("worker panicked holding parts");
    parts.sort_unstable_by_key(|&(c, _)| c);
    debug_assert_eq!(parts.len(), n_chunks);
    let mut out = Vec::with_capacity(items.len());
    for (_, mut part) in parts {
        out.append(&mut part);
    }
    msp.record("merged", out.len());
    drop(msp);
    sp.record("merged", out.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order_at_every_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8, 33] {
            let got = with_workers(threads, || map(&items, |_, &x| x * 3 + 1));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_with_threads_state_per_worker() {
        // State is a memo counter; results must not depend on it.
        let items: Vec<u64> = (0..100).collect();
        let got = with_workers(4, || {
            map_with(
                &items,
                || 0u64,
                |acc, i, &x| {
                    *acc += 1;
                    std::hint::black_box(*acc); // state used but transparent
                    x + i as u64
                },
            )
        });
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x + i as u64)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn small_inputs_stay_serial() {
        assert_eq!(parallelism_for(0), 1);
        assert_eq!(parallelism_for(PAR_MIN_ITEMS - 1), 1);
        let items = [1, 2, 3];
        assert_eq!(
            with_workers(8, || map(&items, |_, &x| x + 1)),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn override_beats_env_and_restores() {
        set_override(Some(3));
        assert_eq!(workers(), 3);
        let inner = with_workers(7, workers);
        assert_eq!(inner, 7);
        assert_eq!(workers(), 3, "with_workers restores the previous override");
        set_override(None);
    }

    #[test]
    fn zero_override_clamps_to_one() {
        assert_eq!(with_workers(0, workers), 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: [u8; 0] = [];
        assert!(with_workers(4, || map(&items, |_, &x| x)).is_empty());
    }

    #[test]
    fn worker_activity_is_traced() {
        use sws_trace::Recorder;
        let rec = Recorder::new();
        let items: Vec<usize> = (0..64).collect();
        let got = {
            let _guard = rec.install_thread();
            with_workers(4, || map(&items, |_, &x| x))
        };
        assert_eq!(got, items);
        let session = rec.take();
        assert!(session.counter("core.parallel.workers") >= 1);
        assert!(session.counter("core.parallel.chunks") >= 1);
        let shard = session
            .histogram("core.parallel.shard_items")
            .expect("shard-size histogram");
        assert_eq!(
            shard.count(),
            session.counter("core.parallel.chunks"),
            "one shard-size sample per chunk"
        );
        assert_eq!(session.closed_spans("core.parallel").count(), 1);
        assert!(session.closed_spans("core.parallel.worker").count() >= 1);
    }

    #[test]
    fn deterministic_with_uneven_item_cost() {
        // Items with wildly different costs exercise stealing; the merge
        // must still be in item order.
        let items: Vec<u32> = (0..200).collect();
        let f = |_: usize, &x: &u32| {
            let spin = if x % 17 == 0 { 5_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(7);
            }
            (x, acc)
        };
        let serial = with_workers(1, || map(&items, f));
        for threads in [2, 4, 8] {
            assert_eq!(with_workers(threads, || map(&items, f)), serial);
        }
    }
}
