//! Designer deliverables (paper activity 11): "an approach to generating
//! deliverables for designer feedback as a result of shrink wrap schema
//! customization."
//!
//! [`DesignReport`] bundles everything a designer (or a design review)
//! needs about a session: the custom schema, the operation log with
//! impact, the mapping, the consistency report, and repair advice — as one
//! renderable document.

use crate::advice::{advise, Suggestion};
use crate::consistency::ConsistencyReport;
use crate::mapping::Mapping;
use crate::workspace::Workspace;
use sws_model::graph_to_schema;
use sws_odl::print_schema;
use sws_trace::TraceSummary;

/// The complete deliverable bundle for one design session.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// Schema name.
    pub schema_name: String,
    /// Shrink wrap size (constructs).
    pub shrink_wrap_constructs: usize,
    /// Custom schema size (constructs).
    pub custom_constructs: usize,
    /// Number of operations applied.
    pub ops_applied: usize,
    /// The custom schema as extended ODL.
    pub custom_odl: String,
    /// The derived mapping.
    pub mapping: Mapping,
    /// The consistency report.
    pub consistency: ConsistencyReport,
    /// Repair advice for the consistency findings.
    pub advice: Vec<Suggestion>,
    /// Rendered op log lines with impact counts.
    pub log_lines: Vec<String>,
    /// Counter/timing summary captured from the active trace recorder, if
    /// tracing was enabled during the session.
    pub instrumentation: Option<TraceSummary>,
}

impl DesignReport {
    /// Generate the deliverables for a workspace.
    pub fn generate(ws: &Workspace) -> Self {
        // Tombstone-ratio counters (`model.graph.*.live/dead`) go into the
        // instrumentation summary so unbounded arena growth in long
        // sessions is observable. Counters accumulate, so emit them once
        // per report, not per sync.
        ws.working().emit_arena_counters();
        let consistency = ws.consistency();
        let advice = advise(&consistency, ws.working());
        let log_lines = ws
            .log()
            .iter()
            .map(|r| {
                if r.impact.is_empty() {
                    format!("[{}] {}", r.context.tag(), r.op)
                } else {
                    format!(
                        "[{}] {} (+{} propagated changes)",
                        r.context.tag(),
                        r.op,
                        r.impact.len()
                    )
                }
            })
            .collect();
        DesignReport {
            schema_name: ws.shrink_wrap().name().to_string(),
            shrink_wrap_constructs: ws.shrink_wrap().construct_count(),
            custom_constructs: ws.working().construct_count(),
            ops_applied: ws.log().len(),
            custom_odl: print_schema(&graph_to_schema(ws.working())),
            mapping: Mapping::derive(ws),
            consistency,
            advice,
            log_lines,
            instrumentation: sws_trace::current()
                .map(|rec| TraceSummary::of(&rec.snapshot()))
                .filter(|s| !s.is_empty()),
        }
    }

    /// Render the whole deliverable as one document.
    pub fn render(&self) -> String {
        let summary = self.mapping.summary();
        let mut out = String::new();
        out.push_str(&format!("# Design report — {}\n\n", self.schema_name));
        out.push_str(&format!(
            "shrink wrap: {} constructs; custom: {} constructs; {} operation(s) applied\n",
            self.shrink_wrap_constructs, self.custom_constructs, self.ops_applied
        ));
        out.push_str(&format!(
            "reuse: {:.1}% ({} unchanged, {} modified, {} moved, {} deleted, {} added)\n\n",
            summary.reuse_fraction() * 100.0,
            summary.unchanged,
            summary.modified,
            summary.moved,
            summary.deleted,
            summary.added
        ));
        out.push_str("## Operation log\n");
        for line in &self.log_lines {
            out.push_str(&format!("  {line}\n"));
        }
        out.push_str("\n## Consistency\n");
        if self.consistency.is_clean() {
            out.push_str("  no findings\n");
        } else {
            for finding in &self.consistency.findings {
                out.push_str(&format!("  {}: {finding}\n", finding.severity()));
            }
        }
        if !self.advice.is_empty() {
            out.push_str("\n## Advice\n");
            for s in &self.advice {
                out.push_str(&format!("  {}\n", s.finding));
                for candidate in &s.candidates {
                    out.push_str(&format!("    -> {candidate}\n"));
                }
            }
        }
        out.push_str("\n## Mapping\n");
        for entry in &self.mapping.entries {
            out.push_str(&format!("  {}: {}\n", entry.construct, entry.disposition));
        }
        if let Some(summary) = &self.instrumentation {
            out.push_str("\n## Instrumentation\n");
            out.push_str(&summary.render());
        }
        out.push_str("\n## Custom schema\n");
        out.push_str(&self.custom_odl);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::ConceptKind;
    use crate::ops::ModOp;
    use sws_model::schema_to_graph;
    use sws_odl::parse_schema;

    #[test]
    fn report_reflects_the_session() {
        let src = r#"
        schema T {
            interface A { attribute set<B> bs; attribute long x; keys x; }
            interface B { attribute long y; }
        }"#;
        let mut ws = Workspace::new(schema_to_graph(&parse_schema(src).unwrap()).unwrap());
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::DeleteTypeDefinition { ty: "B".into() },
        )
        .unwrap();
        let report = DesignReport::generate(&ws);
        assert_eq!(report.ops_applied, 1);
        assert!(report.shrink_wrap_constructs > report.custom_constructs);
        let text = report.render();
        assert!(text.contains("# Design report — T"));
        assert!(text.contains("delete_type_definition(B)"));
        // Deleting B left A::bs dangling: finding + advice present.
        assert!(text.contains("error:"), "{text}");
        assert!(text.contains("-> add_type_definition(B)"), "{text}");
        assert!(text.contains("type `B`: deleted"));
        assert!(text.contains("## Custom schema"));
    }

    #[test]
    fn instrumentation_section_reflects_traced_session() {
        let rec = sws_trace::Recorder::new();
        let _guard = rec.install_thread();
        let mut ws = Workspace::new(
            schema_to_graph(&parse_schema("interface A { attribute long x; keys x; }").unwrap())
                .unwrap(),
        );
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::AddTypeDefinition { ty: "B".into() },
        )
        .unwrap();
        let report = DesignReport::generate(&ws);
        let summary = report.instrumentation.as_ref().expect("summary captured");
        assert!(summary
            .counters
            .iter()
            .any(|(name, v)| name == "ws.ops_applied" && *v == 1));
        assert!(summary.histograms.iter().any(|h| h.name == "ws.apply"));
        // Tombstone-ratio counters: A plus the added B are live, nothing
        // has been deleted, so the dead counters exist and read zero.
        assert!(summary
            .counters
            .iter()
            .any(|(name, v)| name == "model.graph.types.live" && *v == 2));
        assert!(summary
            .counters
            .iter()
            .any(|(name, v)| name == "model.graph.types.dead" && *v == 0));
        assert!(summary
            .counters
            .iter()
            .any(|(name, v)| name == "model.graph.attrs.live" && *v == 1));
        let text = report.render();
        assert!(text.contains("## Instrumentation"), "{text}");
        assert!(text.contains("ws.ops_applied = 1"), "{text}");
    }

    #[test]
    fn report_without_tracing_omits_instrumentation() {
        let ws = Workspace::new(
            schema_to_graph(&parse_schema("interface A { attribute long x; keys x; }").unwrap())
                .unwrap(),
        );
        let report = DesignReport::generate(&ws);
        assert!(report.instrumentation.is_none());
        assert!(!report.render().contains("## Instrumentation"));
    }

    #[test]
    fn clean_session_reports_no_findings() {
        let ws = Workspace::new(
            schema_to_graph(&parse_schema("interface A { attribute long x; keys x; }").unwrap())
                .unwrap(),
        );
        let report = DesignReport::generate(&ws);
        assert!(report.consistency.is_clean());
        assert!(report.advice.is_empty());
        assert!(report.render().contains("no findings"));
    }
}
