//! The mapping between shrink wrap schema and custom schema (paper activity
//! 10): "a mapping representation that records the semantic correspondence
//! between the shrink wrap and customized schema".
//!
//! The mapping is **derived** — from the shrink wrap schema, the customized
//! working schema, and the operation log (which disambiguates *moved*
//! constructs from deleted-and-re-added ones). Every shrink wrap construct
//! receives a [`Disposition`]; constructs only in the custom schema are
//! listed as [`Disposition::Added`].

use crate::workspace::Workspace;
use std::collections::BTreeMap;
use std::fmt;
use sws_model::{graph_to_schema, SchemaGraph};
use sws_odl::{HierKind, Schema};

/// A construct, identified by names (name equivalence).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Construct {
    /// An object type.
    Type(String),
    /// `(type, attribute)`.
    Attribute(String, String),
    /// `(type, operation)`.
    Operation(String, String),
    /// `(type_a, path_a, type_b, path_b)`, endpoint-sorted.
    Relationship(String, String, String, String),
    /// `(kind, parent, parent_path, child, child_path)`.
    Link(HierKind, String, String, String, String),
    /// `(subtype, supertype)`.
    SupertypeEdge(String, String),
}

impl fmt::Display for Construct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Construct::Type(t) => write!(f, "type `{t}`"),
            Construct::Attribute(t, a) => write!(f, "attribute `{t}::{a}`"),
            Construct::Operation(t, o) => write!(f, "operation `{t}::{o}`"),
            Construct::Relationship(a, pa, b, pb) => {
                write!(f, "relationship `{a}::{pa}` <-> `{b}::{pb}`")
            }
            Construct::Link(k, p, pp, c, cp) => {
                write!(f, "{k} link `{p}::{pp}` -> `{c}::{cp}`")
            }
            Construct::SupertypeEdge(sub, sup) => write!(f, "`{sub}` isa `{sup}`"),
        }
    }
}

/// What became of a construct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disposition {
    /// Present, identical.
    Unchanged,
    /// Present in place, with the listed property changes.
    Modified(Vec<String>),
    /// Moved to another type (via a generalization-hierarchy move), with
    /// any further property changes.
    Moved { to: String, details: Vec<String> },
    /// Absent from the custom schema.
    Deleted,
    /// Only in the custom schema.
    Added,
}

impl Disposition {
    /// True for dispositions that count as *reused* (the construct
    /// semantics carried over): unchanged, modified, or moved.
    pub fn is_reused(&self) -> bool {
        matches!(
            self,
            Disposition::Unchanged | Disposition::Modified(_) | Disposition::Moved { .. }
        )
    }
}

impl fmt::Display for Disposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Disposition::Unchanged => f.write_str("unchanged"),
            Disposition::Modified(details) => write!(f, "modified ({})", details.join("; ")),
            Disposition::Moved { to, details } if details.is_empty() => {
                write!(f, "moved to `{to}`")
            }
            Disposition::Moved { to, details } => {
                write!(f, "moved to `{to}` ({})", details.join("; "))
            }
            Disposition::Deleted => f.write_str("deleted"),
            Disposition::Added => f.write_str("added"),
        }
    }
}

/// One mapping entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapEntry {
    /// The construct (shrink-wrap-side identity for everything except
    /// `Added` entries).
    pub construct: Construct,
    /// Its disposition.
    pub disposition: Disposition,
}

/// Counts per disposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MappingSummary {
    /// Constructs carried over unchanged.
    pub unchanged: usize,
    /// Constructs modified in place.
    pub modified: usize,
    /// Constructs moved within a generalization hierarchy.
    pub moved: usize,
    /// Shrink wrap constructs absent from the custom schema.
    pub deleted: usize,
    /// Custom-schema-only constructs.
    pub added: usize,
}

impl MappingSummary {
    /// Shrink wrap construct count (everything but `added`).
    pub fn shrink_wrap_total(&self) -> usize {
        self.unchanged + self.modified + self.moved + self.deleted
    }

    /// Fraction of shrink wrap constructs reused in the custom schema.
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.shrink_wrap_total();
        if total == 0 {
            return 0.0;
        }
        (self.unchanged + self.modified + self.moved) as f64 / total as f64
    }
}

/// The full mapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Mapping {
    /// All entries: shrink wrap constructs first, then additions.
    pub entries: Vec<MapEntry>,
}

impl Mapping {
    /// Derive the mapping for a workspace.
    pub fn derive(ws: &Workspace) -> Mapping {
        derive_mapping(
            ws.shrink_wrap(),
            ws.working(),
            ws.log().iter().map(|r| &r.op),
        )
    }

    /// Per-disposition counts.
    pub fn summary(&self) -> MappingSummary {
        let mut s = MappingSummary::default();
        for e in &self.entries {
            match &e.disposition {
                Disposition::Unchanged => s.unchanged += 1,
                Disposition::Modified(_) => s.modified += 1,
                Disposition::Moved { .. } => s.moved += 1,
                Disposition::Deleted => s.deleted += 1,
                Disposition::Added => s.added += 1,
            }
        }
        s
    }

    /// Render the mapping, one entry per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("{}: {}\n", e.construct, e.disposition));
        }
        let s = self.summary();
        out.push_str(&format!(
            "summary: {} unchanged, {} modified, {} moved, {} deleted, {} added \
             (reuse {:.1}%)\n",
            s.unchanged,
            s.modified,
            s.moved,
            s.deleted,
            s.added,
            s.reuse_fraction() * 100.0
        ));
        out
    }
}

/// Derive the mapping from graphs and the op log.
pub fn derive_mapping<'a>(
    shrink_wrap: &SchemaGraph,
    working: &SchemaGraph,
    log: impl Iterator<Item = &'a crate::ops::ModOp>,
) -> Mapping {
    let sw = graph_to_schema(shrink_wrap);
    let cu = graph_to_schema(working);

    // Track moves by replaying the log symbolically.
    let mut attr_loc: BTreeMap<(String, String), String> = BTreeMap::new();
    let mut op_loc: BTreeMap<(String, String), String> = BTreeMap::new();
    for iface in &sw.interfaces {
        for a in &iface.attributes {
            attr_loc.insert((iface.name.clone(), a.name.clone()), iface.name.clone());
        }
        for o in &iface.operations {
            op_loc.insert((iface.name.clone(), o.name.clone()), iface.name.clone());
        }
    }
    for op in log {
        match op {
            crate::ops::ModOp::ModifyAttribute { ty, name, new_ty } => {
                if let Some(entry) = attr_loc
                    .iter_mut()
                    .find(|((_, n), loc)| n == name && *loc == ty)
                {
                    *entry.1 = new_ty.clone();
                }
            }
            crate::ops::ModOp::ModifyOperation { ty, name, new_ty } => {
                if let Some(entry) = op_loc
                    .iter_mut()
                    .find(|((_, n), loc)| n == name && *loc == ty)
                {
                    *entry.1 = new_ty.clone();
                }
            }
            _ => {}
        }
    }

    let mut entries = Vec::new();

    // Types.
    for iface in &sw.interfaces {
        let disposition = match cu.interface(&iface.name) {
            None => Disposition::Deleted,
            Some(new_iface) => {
                let mut details = Vec::new();
                if new_iface.extent != iface.extent {
                    details.push(format!(
                        "extent {:?} -> {:?}",
                        iface.extent, new_iface.extent
                    ));
                }
                if new_iface.keys != iface.keys {
                    details.push("key list changed".into());
                }
                if details.is_empty() {
                    Disposition::Unchanged
                } else {
                    Disposition::Modified(details)
                }
            }
        };
        entries.push(MapEntry {
            construct: Construct::Type(iface.name.clone()),
            disposition,
        });
    }

    // Supertype edges.
    for iface in &sw.interfaces {
        for sup in &iface.supertypes {
            let kept = cu
                .interface(&iface.name)
                .map(|i| i.supertypes.contains(sup))
                .unwrap_or(false);
            entries.push(MapEntry {
                construct: Construct::SupertypeEdge(iface.name.clone(), sup.clone()),
                disposition: if kept {
                    Disposition::Unchanged
                } else {
                    Disposition::Deleted
                },
            });
        }
    }

    // Attributes.
    for iface in &sw.interfaces {
        for attr in &iface.attributes {
            let final_ty = attr_loc[&(iface.name.clone(), attr.name.clone())].clone();
            let found = cu
                .interface(&final_ty)
                .and_then(|i| i.attribute(&attr.name));
            let disposition = match found {
                None => Disposition::Deleted,
                Some(new_attr) => {
                    let mut details = Vec::new();
                    if new_attr.ty != attr.ty {
                        details.push(format!("type {} -> {}", attr.ty, new_attr.ty));
                    }
                    if new_attr.size != attr.size {
                        details.push(format!("size {:?} -> {:?}", attr.size, new_attr.size));
                    }
                    if final_ty != iface.name {
                        Disposition::Moved {
                            to: final_ty.clone(),
                            details,
                        }
                    } else if details.is_empty() {
                        Disposition::Unchanged
                    } else {
                        Disposition::Modified(details)
                    }
                }
            };
            entries.push(MapEntry {
                construct: Construct::Attribute(iface.name.clone(), attr.name.clone()),
                disposition,
            });
        }
    }

    // Operations.
    for iface in &sw.interfaces {
        for op in &iface.operations {
            let final_ty = op_loc[&(iface.name.clone(), op.name.clone())].clone();
            let found = cu.interface(&final_ty).and_then(|i| i.operation(&op.name));
            let disposition = match found {
                None => Disposition::Deleted,
                Some(new_op) => {
                    let mut details = Vec::new();
                    if new_op.return_type != op.return_type {
                        details.push(format!(
                            "return {} -> {}",
                            op.return_type, new_op.return_type
                        ));
                    }
                    if new_op.args != op.args {
                        details.push("argument list changed".into());
                    }
                    if new_op.raises != op.raises {
                        details.push("exception list changed".into());
                    }
                    if final_ty != iface.name {
                        Disposition::Moved {
                            to: final_ty.clone(),
                            details,
                        }
                    } else if details.is_empty() {
                        Disposition::Unchanged
                    } else {
                        Disposition::Modified(details)
                    }
                }
            };
            entries.push(MapEntry {
                construct: Construct::Operation(iface.name.clone(), op.name.clone()),
                disposition,
            });
        }
    }

    // Relationships (endpoint-sorted, once per pair) and links.
    map_relationships(&sw, &cu, &mut entries);
    map_links(&sw, &cu, &mut entries);

    // Additions: custom constructs with no shrink wrap counterpart.
    map_additions(&sw, &cu, &attr_loc, &op_loc, &mut entries);

    Mapping { entries }
}

fn rel_pairs(schema: &Schema) -> BTreeMap<(String, String, String, String), (String, String)> {
    // key: endpoint-sorted pair; value: per-side cardinality/order rendering
    let mut out = BTreeMap::new();
    for iface in &schema.interfaces {
        for rel in &iface.relationships {
            let mine = (iface.name.clone(), rel.path.clone());
            let theirs = (rel.target.clone(), rel.inverse_path.clone());
            if mine <= theirs {
                let key = (
                    mine.0.clone(),
                    mine.1.clone(),
                    theirs.0.clone(),
                    theirs.1.clone(),
                );
                let back = schema
                    .interface(&rel.target)
                    .and_then(|i| i.relationship(&rel.inverse_path));
                let back_desc = back
                    .map(|b| format!("{} order_by({})", b.cardinality, b.order_by.join(",")))
                    .unwrap_or_default();
                let desc = format!("{} order_by({})", rel.cardinality, rel.order_by.join(","));
                out.insert(key, (desc, back_desc));
            }
        }
    }
    out
}

fn map_relationships(sw: &Schema, cu: &Schema, entries: &mut Vec<MapEntry>) {
    let sw_rels = rel_pairs(sw);
    let cu_rels = rel_pairs(cu);
    for (key, val) in &sw_rels {
        let construct =
            Construct::Relationship(key.0.clone(), key.1.clone(), key.2.clone(), key.3.clone());
        let disposition = match cu_rels.get(key) {
            None => {
                // The pair may have moved: same paths, one endpoint moved up
                // or down. Look for a custom pair sharing both path names.
                let moved = cu_rels.keys().find(|k| k.1 == key.1 && k.3 == key.3);
                match moved {
                    Some(m) => {
                        let to = if m.0 != key.0 {
                            m.0.clone()
                        } else {
                            m.2.clone()
                        };
                        Disposition::Moved {
                            to,
                            details: vec![],
                        }
                    }
                    None => Disposition::Deleted,
                }
            }
            Some(v) if v == val => Disposition::Unchanged,
            Some(v) => Disposition::Modified(vec![format!(
                "ends changed: {} / {} (was {} / {})",
                v.0, v.1, val.0, val.1
            )]),
        };
        entries.push(MapEntry {
            construct,
            disposition,
        });
    }
}

fn link_keys(schema: &Schema) -> BTreeMap<(String, String, String, String, String), String> {
    let mut out = BTreeMap::new();
    for iface in &schema.interfaces {
        for (kind, links) in [
            ("part-of", &iface.part_ofs),
            ("instance-of", &iface.instance_ofs),
        ] {
            for link in links {
                if link.cardinality.is_many() {
                    out.insert(
                        (
                            kind.to_string(),
                            iface.name.clone(),
                            link.path.clone(),
                            link.target.clone(),
                            link.inverse_path.clone(),
                        ),
                        format!("{} order_by({})", link.cardinality, link.order_by.join(",")),
                    );
                }
            }
        }
    }
    out
}

fn map_links(sw: &Schema, cu: &Schema, entries: &mut Vec<MapEntry>) {
    let sw_links = link_keys(sw);
    let cu_links = link_keys(cu);
    for (key, val) in &sw_links {
        let kind = if key.0 == "part-of" {
            HierKind::PartOf
        } else {
            HierKind::InstanceOf
        };
        let construct = Construct::Link(
            kind,
            key.1.clone(),
            key.2.clone(),
            key.3.clone(),
            key.4.clone(),
        );
        let disposition = match cu_links.get(key) {
            None => {
                let moved = cu_links
                    .keys()
                    .find(|k| k.0 == key.0 && k.2 == key.2 && k.4 == key.4 && *k != key);
                match moved {
                    Some(m) => {
                        let to = if m.1 != key.1 {
                            m.1.clone()
                        } else {
                            m.3.clone()
                        };
                        Disposition::Moved {
                            to,
                            details: vec![],
                        }
                    }
                    None => Disposition::Deleted,
                }
            }
            Some(v) if v == val => Disposition::Unchanged,
            Some(v) => Disposition::Modified(vec![format!("parent end changed: {v} (was {val})")]),
        };
        entries.push(MapEntry {
            construct,
            disposition,
        });
    }
}

fn map_additions(
    sw: &Schema,
    cu: &Schema,
    attr_loc: &BTreeMap<(String, String), String>,
    op_loc: &BTreeMap<(String, String), String>,
    entries: &mut Vec<MapEntry>,
) {
    for iface in &cu.interfaces {
        if sw.interface(&iface.name).is_none() {
            entries.push(MapEntry {
                construct: Construct::Type(iface.name.clone()),
                disposition: Disposition::Added,
            });
        }
        for sup in &iface.supertypes {
            let existed = sw
                .interface(&iface.name)
                .map(|i| i.supertypes.contains(sup))
                .unwrap_or(false);
            if !existed {
                entries.push(MapEntry {
                    construct: Construct::SupertypeEdge(iface.name.clone(), sup.clone()),
                    disposition: Disposition::Added,
                });
            }
        }
        for attr in &iface.attributes {
            // Covered if some shrink wrap attribute resolves here.
            let covered = attr_loc
                .iter()
                .any(|((_, name), loc)| name == &attr.name && loc == &iface.name)
                && sw_has_attr_named(sw, &attr.name);
            if !covered {
                entries.push(MapEntry {
                    construct: Construct::Attribute(iface.name.clone(), attr.name.clone()),
                    disposition: Disposition::Added,
                });
            }
        }
        for op in &iface.operations {
            let covered = op_loc
                .iter()
                .any(|((_, name), loc)| name == &op.name && loc == &iface.name)
                && sw_has_op_named(sw, &op.name);
            if !covered {
                entries.push(MapEntry {
                    construct: Construct::Operation(iface.name.clone(), op.name.clone()),
                    disposition: Disposition::Added,
                });
            }
        }
    }
    // Relationship / link additions.
    let sw_rels = rel_pairs(sw);
    for key in rel_pairs(cu).keys() {
        let covered =
            sw_rels.contains_key(key) || sw_rels.keys().any(|k| k.1 == key.1 && k.3 == key.3);
        if !covered {
            entries.push(MapEntry {
                construct: Construct::Relationship(
                    key.0.clone(),
                    key.1.clone(),
                    key.2.clone(),
                    key.3.clone(),
                ),
                disposition: Disposition::Added,
            });
        }
    }
    let sw_links = link_keys(sw);
    for key in link_keys(cu).keys() {
        let covered = sw_links.contains_key(key)
            || sw_links
                .keys()
                .any(|k| k.0 == key.0 && k.2 == key.2 && k.4 == key.4);
        if !covered {
            let kind = if key.0 == "part-of" {
                HierKind::PartOf
            } else {
                HierKind::InstanceOf
            };
            entries.push(MapEntry {
                construct: Construct::Link(
                    kind,
                    key.1.clone(),
                    key.2.clone(),
                    key.3.clone(),
                    key.4.clone(),
                ),
                disposition: Disposition::Added,
            });
        }
    }
}

fn sw_has_attr_named(sw: &Schema, name: &str) -> bool {
    sw.interfaces.iter().any(|i| i.attribute(name).is_some())
}

fn sw_has_op_named(sw: &Schema, name: &str) -> bool {
    sw.interfaces.iter().any(|i| i.operation(name).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::ConceptKind;
    use crate::ops::ModOp;
    use sws_model::schema_to_graph;
    use sws_odl::parse_schema;

    fn workspace() -> Workspace {
        let src = r#"
        schema Dept {
            interface Person { attribute string name; }
            interface Employee : Person {
                attribute long badge;
                relationship Department works_in_a inverse Department::has;
            }
            interface Department {
                extent departments;
                attribute string dname;
                keys dname;
                relationship set<Employee> has inverse Employee::works_in_a;
            }
        }"#;
        Workspace::new(schema_to_graph(&parse_schema(src).unwrap()).unwrap())
    }

    #[test]
    fn untouched_workspace_maps_everything_unchanged() {
        let ws = workspace();
        let m = Mapping::derive(&ws);
        let s = m.summary();
        assert_eq!(s.deleted, 0);
        assert_eq!(s.added, 0);
        assert_eq!(s.moved, 0);
        assert_eq!(s.modified, 0);
        assert!((s.reuse_fraction() - 1.0).abs() < 1e-9);
        // 3 types + 1 edge + 3 attrs + 1 rel = 8
        assert_eq!(s.unchanged, 8);
    }

    #[test]
    fn moves_are_distinguished_from_delete_add() {
        let mut ws = workspace();
        ws.apply(
            ConceptKind::Generalization,
            ModOp::ModifyAttribute {
                ty: "Employee".into(),
                name: "badge".into(),
                new_ty: "Person".into(),
            },
        )
        .unwrap();
        let m = Mapping::derive(&ws);
        let badge = m
            .entries
            .iter()
            .find(|e| {
                matches!(&e.construct, Construct::Attribute(t, a) if t == "Employee" && a == "badge")
            })
            .unwrap();
        assert_eq!(
            badge.disposition,
            Disposition::Moved {
                to: "Person".into(),
                details: vec![]
            }
        );
        assert_eq!(m.summary().moved, 1);
        assert_eq!(m.summary().added, 0);
    }

    #[test]
    fn deletions_and_additions_tracked() {
        let mut ws = workspace();
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::DeleteAttribute {
                ty: "Person".into(),
                name: "name".into(),
            },
        )
        .unwrap();
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::AddTypeDefinition {
                ty: "Course".into(),
            },
        )
        .unwrap();
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::AddAttribute {
                ty: "Course".into(),
                domain: sws_odl::DomainType::String,
                size: None,
                name: "number".into(),
            },
        )
        .unwrap();
        let m = Mapping::derive(&ws);
        let s = m.summary();
        assert_eq!(s.deleted, 1);
        assert_eq!(s.added, 2);
    }

    #[test]
    fn relationship_retarget_maps_as_moved() {
        let mut ws = workspace();
        ws.apply(
            ConceptKind::Generalization,
            ModOp::ModifyRelationshipTargetType {
                ty: "Department".into(),
                path: "has".into(),
                old_target: "Employee".into(),
                new_target: "Person".into(),
            },
        )
        .unwrap();
        let m = Mapping::derive(&ws);
        let rel = m
            .entries
            .iter()
            .find(|e| matches!(&e.construct, Construct::Relationship(..)))
            .unwrap();
        assert!(matches!(&rel.disposition, Disposition::Moved { to, .. } if to == "Person"));
    }

    #[test]
    fn type_property_changes_map_as_modified() {
        let mut ws = workspace();
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::ModifyExtentName {
                ty: "Department".into(),
                old: "departments".into(),
                new: "depts".into(),
            },
        )
        .unwrap();
        let m = Mapping::derive(&ws);
        let dept = m
            .entries
            .iter()
            .find(|e| matches!(&e.construct, Construct::Type(t) if t == "Department"))
            .unwrap();
        assert!(matches!(&dept.disposition, Disposition::Modified(_)));
    }

    #[test]
    fn render_contains_summary() {
        let ws = workspace();
        let text = Mapping::derive(&ws).render();
        assert!(text.contains("summary:"));
        assert!(text.contains("reuse 100.0%"));
    }
}
