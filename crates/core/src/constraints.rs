//! Precondition constraints for modification operations (paper activities
//! 8–9).
//!
//! Every [`ModOp`] is checked against the working schema **and** the shrink
//! wrap schema before it is applied. The checks enforce the paper's
//! standing assumptions:
//!
//! * **uniqueness / name equivalence** — names identify constructs, so adds
//!   require free names and modifies require the old value to match (stale
//!   operations are rejected, which also makes op-log replay safe);
//! * **semantic stability** — the move operations (`modify_attribute`,
//!   `modify_operation`, `modify_*_target_type`) may only move information
//!   along one generalization path, judged against the hierarchy
//!   *established by the shrink wrap schema* when both endpoints exist
//!   there, and against the working schema's hierarchy for designer-added
//!   types;
//! * structural sanity — no cycles, no inheritance conflicts, order-by and
//!   key lists must reference visible attributes, referenced domain types
//!   must exist.

use crate::ops::ModOp;
use std::fmt;
use sws_model::{CachedView, QueryCache, SchemaGraph, SchemaView, Symbol, TypeId};
use sws_odl::{DomainType, HierKind, Key};

/// Render an order-by list of interned symbols for a violation message.
fn join_syms(syms: &[Symbol]) -> String {
    syms.iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

/// One failed precondition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintViolation {
    /// Adding a type whose name is taken.
    TypeExists(String),
    /// Referencing a type that does not exist.
    UnknownType(String),
    /// Adding a member whose name is taken on the type.
    MemberExists { ty: String, member: String },
    /// Referencing a member that does not exist.
    UnknownMember {
        ty: String,
        member: String,
        what: &'static str,
    },
    /// A move between types not on one generalization path (in the shrink
    /// wrap schema's hierarchy).
    SemanticStability { from: String, to: String },
    /// A modify operation whose `old` value does not match the schema.
    StaleValue {
        what: String,
        expected: String,
        found: String,
    },
    /// The extent name is used elsewhere.
    ExtentInUse(String),
    /// The type already has an extent (use modify instead of add).
    ExtentAlreadySet { ty: String, extent: String },
    /// The type has no extent to delete/modify.
    NoExtent { ty: String },
    /// The supertype edge already exists.
    SupertypeEdgeExists { sub: String, sup: String },
    /// The supertype edge does not exist.
    NoSupertypeEdge { sub: String, sup: String },
    /// The edge would create a generalization cycle.
    GeneralizationCycle { sub: String, sup: String },
    /// The link would create a part-of / instance-of cycle.
    HierarchyCycle {
        kind: HierKind,
        parent: String,
        child: String,
    },
    /// The new member would conflict with an inherited member.
    InheritedConflict {
        ty: String,
        member: String,
        other: String,
    },
    /// A key is already present / absent.
    KeyExists { ty: String, key: String },
    /// The key to delete is not present.
    NoSuchKey { ty: String, key: String },
    /// A key or order-by references an attribute that is not visible.
    AttributeNotVisible { ty: String, attribute: String },
    /// A domain type / signature references a type missing from the schema.
    UnknownDomainType { referenced: String },
    /// A size constraint on a type that does not admit one.
    SizeNotAllowed {
        ty: String,
        attribute: String,
        domain: String,
    },
    /// A part-of / instance-of link between a type and itself.
    SelfLink { ty: String },
    /// Cardinality/order-by modification addressed to the child (single-
    /// valued) end; the grammar allows it only on the parent end.
    NotParentEnd { ty: String, path: String },
    /// An order-by list on the to-whole / to-generic form of an add.
    OrderByOnChildEnd { ty: String, path: String },
}

/// The logical categories of the enforced constraints (paper activity 9:
/// "classification of the constraints into logical categories").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstraintCategory {
    /// Name uniqueness / name equivalence (types, members, extents, keys).
    Uniqueness,
    /// The referent must exist (types, members, keys, extents).
    Existence,
    /// A modify's `old` value must match the current schema.
    Currency,
    /// Moves stay within one generalization path.
    SemanticStability,
    /// Hierarchies stay acyclic; inheritance stays conflict-free; 1:N
    /// link shape; parent-end-only modifications.
    Structural,
    /// Cross-references resolve: domains, key/order-by attributes, sizes.
    Referential,
}

impl ConstraintCategory {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ConstraintCategory::Uniqueness => "uniqueness",
            ConstraintCategory::Existence => "existence",
            ConstraintCategory::Currency => "currency",
            ConstraintCategory::SemanticStability => "semantic stability",
            ConstraintCategory::Structural => "structural",
            ConstraintCategory::Referential => "referential",
        }
    }
}

impl fmt::Display for ConstraintCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl ConstraintViolation {
    /// The logical category of this violation.
    pub fn category(&self) -> ConstraintCategory {
        use ConstraintCategory::*;
        use ConstraintViolation::*;
        match self {
            TypeExists(_)
            | MemberExists { .. }
            | ExtentInUse(_)
            | ExtentAlreadySet { .. }
            | SupertypeEdgeExists { .. }
            | KeyExists { .. } => Uniqueness,
            UnknownType(_)
            | UnknownMember { .. }
            | NoExtent { .. }
            | NoSupertypeEdge { .. }
            | NoSuchKey { .. } => Existence,
            StaleValue { .. } => Currency,
            ConstraintViolation::SemanticStability { .. } => ConstraintCategory::SemanticStability,
            GeneralizationCycle { .. }
            | HierarchyCycle { .. }
            | InheritedConflict { .. }
            | SelfLink { .. }
            | NotParentEnd { .. }
            | OrderByOnChildEnd { .. } => Structural,
            AttributeNotVisible { .. } | UnknownDomainType { .. } | SizeNotAllowed { .. } => {
                Referential
            }
        }
    }
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ConstraintViolation::*;
        match self {
            TypeExists(n) => write!(f, "type `{n}` already exists"),
            UnknownType(n) => write!(f, "type `{n}` does not exist"),
            MemberExists { ty, member } => {
                write!(f, "`{ty}` already has a member named `{member}`")
            }
            UnknownMember { ty, member, what } => {
                write!(f, "`{ty}` has no {what} named `{member}`")
            }
            SemanticStability { from, to } => write!(
                f,
                "`{from}` and `{to}` are not on one generalization path (semantic stability)"
            ),
            StaleValue { what, expected, found } => {
                write!(f, "{what}: operation expects `{expected}` but the schema has `{found}`")
            }
            ExtentInUse(n) => write!(f, "extent name `{n}` is already in use"),
            ExtentAlreadySet { ty, extent } => {
                write!(f, "`{ty}` already has extent `{extent}`")
            }
            NoExtent { ty } => write!(f, "`{ty}` has no extent"),
            SupertypeEdgeExists { sub, sup } => {
                write!(f, "`{sub}` already has supertype `{sup}`")
            }
            NoSupertypeEdge { sub, sup } => write!(f, "`{sub}` has no supertype `{sup}`"),
            GeneralizationCycle { sub, sup } => {
                write!(f, "making `{sup}` a supertype of `{sub}` would create a cycle")
            }
            HierarchyCycle { kind, parent, child } => {
                write!(f, "a {kind} link `{parent}` -> `{child}` would create a cycle")
            }
            InheritedConflict { ty, member, other } => write!(
                f,
                "member `{member}` on `{ty}` would conflict with the member inherited via `{other}`"
            ),
            KeyExists { ty, key } => write!(f, "`{ty}` already has key `{key}`"),
            NoSuchKey { ty, key } => write!(f, "`{ty}` has no key `{key}`"),
            AttributeNotVisible { ty, attribute } => {
                write!(f, "attribute `{attribute}` is not visible on `{ty}`")
            }
            UnknownDomainType { referenced } => {
                write!(f, "referenced type `{referenced}` is not in the schema")
            }
            SizeNotAllowed { ty, attribute, domain } => write!(
                f,
                "attribute `{ty}::{attribute}`: domain `{domain}` does not admit a size"
            ),
            SelfLink { ty } => write!(f, "`{ty}` cannot be linked to itself"),
            NotParentEnd { ty, path } => write!(
                f,
                "`{ty}::{path}` is the single-valued end; this modification is only allowed on the collection end"
            ),
            OrderByOnChildEnd { ty, path } => {
                write!(f, "`{ty}::{path}`: an order-by list is only allowed on the collection end")
            }
        }
    }
}

/// Check every precondition of `op` against `working`, using `shrink_wrap`
/// for the semantic-stability reference hierarchy. Returns all violations
/// (empty = the operation may be applied).
pub fn check_preconditions(
    op: &ModOp,
    working: &SchemaGraph,
    shrink_wrap: &SchemaGraph,
) -> Vec<ConstraintViolation> {
    let qc = QueryCache::new();
    let qc_sw = QueryCache::new();
    check_preconditions_cached(op, working, shrink_wrap, &qc, &qc_sw)
}

/// As [`check_preconditions`], but answering hierarchy traversals from the
/// caller's [`QueryCache`]s (one paired with `working`, one with
/// `shrink_wrap`). `Workspace` threads its long-lived caches through here so
/// repeated checks against an unchanged schema skip the graph walks.
pub fn check_preconditions_cached(
    op: &ModOp,
    working: &SchemaGraph,
    shrink_wrap: &SchemaGraph,
    qc_working: &QueryCache,
    qc_shrink: &QueryCache,
) -> Vec<ConstraintViolation> {
    let view = CachedView {
        g: working,
        qc: qc_working,
    };
    check_preconditions_view(op, &view, shrink_wrap, qc_shrink)
}

/// The generic core of the checker: every precondition of `op` judged
/// against an arbitrary [`SchemaView`] of the working state. The executor
/// calls it through [`check_preconditions_cached`] with a
/// [`CachedView`]; `sws-analyze` calls it with its abstract overlay state,
/// so the static analyzer runs the *same* checks the apply pipeline does —
/// soundness by construction, not by reimplementation.
///
/// The shrink-wrap side stays concrete: it is immutable during both real
/// application and analysis, so it never needs the abstraction.
pub fn check_preconditions_view<V: SchemaView>(
    op: &ModOp,
    working: &V,
    shrink_wrap: &SchemaGraph,
    qc_shrink: &QueryCache,
) -> Vec<ConstraintViolation> {
    let mut v = Vec::new();
    let ctx = Ctx {
        g: working,
        sw: shrink_wrap,
        qc_sw: qc_shrink,
    };
    ctx.check(op, &mut v);
    v
}

struct Ctx<'a, V: SchemaView> {
    g: &'a V,
    sw: &'a SchemaGraph,
    qc_sw: &'a QueryCache,
}

impl<'a, V: SchemaView> Ctx<'a, V> {
    fn require(&self, name: &str, v: &mut Vec<ConstraintViolation>) -> Option<TypeId> {
        match self.g.type_id(name) {
            Some(id) => Some(id),
            None => {
                v.push(ConstraintViolation::UnknownType(name.to_string()));
                None
            }
        }
    }

    /// Semantic stability: `from` and `to` must be on one generalization
    /// path. Judged in the shrink wrap schema when both types exist there
    /// (the paper's rule: the hierarchy *established by the shrink wrap
    /// schema*), otherwise in the working schema (designer-added types).
    fn check_semantic_stability(&self, from: &str, to: &str, v: &mut Vec<ConstraintViolation>) {
        if from == to {
            return;
        }
        let ok = match (self.sw.type_id(from), self.sw.type_id(to)) {
            (Some(a), Some(b)) => self.qc_sw.on_same_generalization_path(self.sw, a, b),
            _ => match (self.g.type_id(from), self.g.type_id(to)) {
                (Some(a), Some(b)) => self.g.on_same_generalization_path(a, b),
                _ => return, // unknown types reported elsewhere
            },
        };
        if !ok {
            v.push(ConstraintViolation::SemanticStability {
                from: from.to_string(),
                to: to.to_string(),
            });
        }
    }

    /// Would adding member `name` (an operation iff `is_op`) on `ty` clash
    /// with its own members or with inherited/overriding members?
    /// `skip_own` suppresses the own-member check (used when moving a
    /// member onto an ancestor/descendant of its current owner).
    fn check_member_free(
        &self,
        ty: TypeId,
        name: &str,
        is_op: bool,
        v: &mut Vec<ConstraintViolation>,
    ) {
        if self.g.member_exists(ty, name) {
            v.push(ConstraintViolation::MemberExists {
                ty: self.g.type_name(ty).to_string(),
                member: name.to_string(),
            });
            return;
        }
        // Ancestors: operations may override operations; nothing else may
        // shadow anything.
        for &anc in self.g.ancestors(ty).iter() {
            if let Some(their_op) = member_is_op(self.g, anc, name) {
                if !(is_op && their_op) {
                    v.push(ConstraintViolation::InheritedConflict {
                        ty: self.g.type_name(ty).to_string(),
                        member: name.to_string(),
                        other: self.g.type_name(anc).to_string(),
                    });
                    return;
                }
            }
        }
        // Descendants: a new non-operation member must not be shadowed by /
        // shadow existing descendant members.
        for &desc in self.g.descendants(ty).iter() {
            if let Some(their_op) = member_is_op(self.g, desc, name) {
                if !(is_op && their_op) {
                    v.push(ConstraintViolation::InheritedConflict {
                        ty: self.g.type_name(ty).to_string(),
                        member: name.to_string(),
                        other: self.g.type_name(desc).to_string(),
                    });
                    return;
                }
            }
        }
    }

    fn check_attrs_visible(&self, ty: TypeId, attrs: &[String], v: &mut Vec<ConstraintViolation>) {
        for attr in attrs {
            let visible = self.g.find_attr(ty, attr).is_some()
                || self
                    .g
                    .ancestors(ty)
                    .iter()
                    .any(|&anc| self.g.find_attr(anc, attr).is_some());
            if !visible {
                v.push(ConstraintViolation::AttributeNotVisible {
                    ty: self.g.type_name(ty).to_string(),
                    attribute: attr.clone(),
                });
            }
        }
    }

    fn check_domain_types(&self, domain: &DomainType, v: &mut Vec<ConstraintViolation>) {
        let mut refs = Vec::new();
        domain.referenced_types(&mut refs);
        for r in refs {
            if self.g.type_id(r).is_none() {
                v.push(ConstraintViolation::UnknownDomainType {
                    referenced: r.to_string(),
                });
            }
        }
    }

    fn check_keys_wellformed(&self, ty: TypeId, keys: &[Key], v: &mut Vec<ConstraintViolation>) {
        for key in keys {
            self.check_attrs_visible(ty, &key.0, v);
        }
    }

    fn check(&self, op: &ModOp, v: &mut Vec<ConstraintViolation>) {
        use ModOp::*;
        match op {
            AddTypeDefinition { ty } => {
                if self.g.type_id(ty).is_some() {
                    v.push(ConstraintViolation::TypeExists(ty.clone()));
                }
            }
            DeleteTypeDefinition { ty } => {
                self.require(ty, v);
            }
            AddSupertype { ty, supertype } => {
                let (Some(sub), Some(sup)) = (self.require(ty, v), self.require(supertype, v))
                else {
                    return;
                };
                if sub == sup {
                    v.push(ConstraintViolation::GeneralizationCycle {
                        sub: ty.clone(),
                        sup: supertype.clone(),
                    });
                    return;
                }
                if self.g.ty(sub).supertypes.contains(&sup) {
                    v.push(ConstraintViolation::SupertypeEdgeExists {
                        sub: ty.clone(),
                        sup: supertype.clone(),
                    });
                }
                if self.g.is_ancestor(sub, sup) {
                    v.push(ConstraintViolation::GeneralizationCycle {
                        sub: ty.clone(),
                        sup: supertype.clone(),
                    });
                }
                self.check_inheritance_conflicts(sub, sup, v);
            }
            DeleteSupertype { ty, supertype } => {
                let (Some(sub), Some(sup)) = (self.require(ty, v), self.require(supertype, v))
                else {
                    return;
                };
                if !self.g.ty(sub).supertypes.contains(&sup) {
                    v.push(ConstraintViolation::NoSupertypeEdge {
                        sub: ty.clone(),
                        sup: supertype.clone(),
                    });
                }
            }
            ModifySupertype { ty, old, new } => {
                let Some(sub) = self.require(ty, v) else {
                    return;
                };
                let mut current: Vec<String> = self
                    .g
                    .ty(sub)
                    .supertypes
                    .iter()
                    .map(|&s| self.g.type_name(s).to_string())
                    .collect();
                current.sort();
                let mut old_sorted = old.clone();
                old_sorted.sort();
                if current != old_sorted {
                    v.push(ConstraintViolation::StaleValue {
                        what: format!("supertypes of `{ty}`"),
                        expected: old_sorted.join(", "),
                        found: current.join(", "),
                    });
                }
                for sup_name in new {
                    let Some(sup) = self.require(sup_name, v) else {
                        continue;
                    };
                    if sup == sub {
                        v.push(ConstraintViolation::GeneralizationCycle {
                            sub: ty.clone(),
                            sup: sup_name.clone(),
                        });
                        continue;
                    }
                    // A cycle through an edge not being removed.
                    if self.g.is_ancestor(sub, sup)
                        && !old.iter().any(|o| {
                            self.g
                                .type_id(o)
                                .map(|oid| self.g.is_ancestor(oid, sup) || oid == sup)
                                .unwrap_or(false)
                        })
                    {
                        v.push(ConstraintViolation::GeneralizationCycle {
                            sub: ty.clone(),
                            sup: sup_name.clone(),
                        });
                    }
                }
            }
            AddExtentName { ty, extent } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                if let Some(existing) = &self.g.ty(id).extent {
                    v.push(ConstraintViolation::ExtentAlreadySet {
                        ty: ty.clone(),
                        extent: existing.to_string(),
                    });
                }
                if self
                    .g
                    .types_iter()
                    .any(|(_, n)| n.extent.as_deref() == Some(extent))
                {
                    v.push(ConstraintViolation::ExtentInUse(extent.clone()));
                }
            }
            DeleteExtentName { ty, extent } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                match &self.g.ty(id).extent {
                    None => v.push(ConstraintViolation::NoExtent { ty: ty.clone() }),
                    Some(current) if current != extent => v.push(ConstraintViolation::StaleValue {
                        what: format!("extent of `{ty}`"),
                        expected: extent.clone(),
                        found: current.to_string(),
                    }),
                    _ => {}
                }
            }
            ModifyExtentName { ty, old, new } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                match &self.g.ty(id).extent {
                    None => v.push(ConstraintViolation::NoExtent { ty: ty.clone() }),
                    Some(current) if current != old => v.push(ConstraintViolation::StaleValue {
                        what: format!("extent of `{ty}`"),
                        expected: old.clone(),
                        found: current.to_string(),
                    }),
                    _ => {}
                }
                if self.g.types_iter().any(|(other, n)| {
                    Some(other) != self.g.type_id(ty) && n.extent.as_deref() == Some(new)
                }) {
                    v.push(ConstraintViolation::ExtentInUse(new.clone()));
                }
            }
            AddKeyList { ty, keys } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                for key in keys {
                    if self.g.ty(id).keys.iter().any(|k| k == key) {
                        v.push(ConstraintViolation::KeyExists {
                            ty: ty.clone(),
                            key: key.to_string(),
                        });
                    }
                }
                self.check_keys_wellformed(id, keys, v);
            }
            DeleteKeyList { ty, keys } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                for key in keys {
                    if !self.g.ty(id).keys.iter().any(|k| k == key) {
                        v.push(ConstraintViolation::NoSuchKey {
                            ty: ty.clone(),
                            key: key.to_string(),
                        });
                    }
                }
            }
            ModifyKeyList { ty, old, new } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                for key in old {
                    if !self.g.ty(id).keys.iter().any(|k| k == key) {
                        v.push(ConstraintViolation::NoSuchKey {
                            ty: ty.clone(),
                            key: key.to_string(),
                        });
                    }
                }
                for key in new {
                    if self.g.ty(id).keys.iter().any(|k| k == key) && !old.contains(key) {
                        v.push(ConstraintViolation::KeyExists {
                            ty: ty.clone(),
                            key: key.to_string(),
                        });
                    }
                }
                self.check_keys_wellformed(id, new, v);
            }
            AddAttribute {
                ty,
                domain,
                size,
                name,
            } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                self.check_member_free(id, name, false, v);
                self.check_domain_types(domain, v);
                if size.is_some() && !domain.admits_size() {
                    v.push(ConstraintViolation::SizeNotAllowed {
                        ty: ty.clone(),
                        attribute: name.clone(),
                        domain: domain.to_string(),
                    });
                }
            }
            DeleteAttribute { ty, name } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                if self.g.find_attr(id, name).is_none() {
                    v.push(ConstraintViolation::UnknownMember {
                        ty: ty.clone(),
                        member: name.clone(),
                        what: "attribute",
                    });
                }
            }
            ModifyAttribute { ty, name, new_ty } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                let Some(dest) = self.require(new_ty, v) else {
                    return;
                };
                if self.g.find_attr(id, name).is_none() {
                    v.push(ConstraintViolation::UnknownMember {
                        ty: ty.clone(),
                        member: name.clone(),
                        what: "attribute",
                    });
                    return;
                }
                self.check_semantic_stability(ty, new_ty, v);
                if dest != id {
                    self.check_move_target_free(id, dest, name, false, v);
                }
            }
            ModifyAttributeType { ty, name, old, new } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                let Some(aid) = self.g.find_attr(id, name) else {
                    v.push(ConstraintViolation::UnknownMember {
                        ty: ty.clone(),
                        member: name.clone(),
                        what: "attribute",
                    });
                    return;
                };
                let attr = self.g.attr(aid);
                if &attr.ty != old {
                    v.push(ConstraintViolation::StaleValue {
                        what: format!("type of `{ty}::{name}`"),
                        expected: old.to_string(),
                        found: attr.ty.to_string(),
                    });
                }
                self.check_domain_types(new, v);
                if attr.size.is_some() && !new.admits_size() {
                    // Allowed: apply clears the size and reports it as impact.
                }
            }
            ModifyAttributeSize { ty, name, old, new } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                let Some(aid) = self.g.find_attr(id, name) else {
                    v.push(ConstraintViolation::UnknownMember {
                        ty: ty.clone(),
                        member: name.clone(),
                        what: "attribute",
                    });
                    return;
                };
                let attr = self.g.attr(aid);
                if &attr.size != old {
                    v.push(ConstraintViolation::StaleValue {
                        what: format!("size of `{ty}::{name}`"),
                        expected: format!("{old:?}"),
                        found: format!("{:?}", attr.size),
                    });
                }
                if new.is_some() && !attr.ty.admits_size() {
                    v.push(ConstraintViolation::SizeNotAllowed {
                        ty: ty.clone(),
                        attribute: name.clone(),
                        domain: attr.ty.to_string(),
                    });
                }
            }
            AddRelationship {
                ty,
                target,
                cardinality: _,
                path,
                inverse_path,
                order_by,
            } => {
                let a = self.require(ty, v);
                let b = self.require(target, v);
                let (Some(a), Some(b)) = (a, b) else { return };
                if a == b && path == inverse_path {
                    v.push(ConstraintViolation::MemberExists {
                        ty: target.clone(),
                        member: inverse_path.clone(),
                    });
                    return;
                }
                self.check_member_free(a, path, false, v);
                self.check_member_free(b, inverse_path, false, v);
                self.check_attrs_visible(b, order_by, v);
            }
            DeleteRelationship { ty, path } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                if self.g.find_rel_end(id, path).is_none() {
                    v.push(ConstraintViolation::UnknownMember {
                        ty: ty.clone(),
                        member: path.clone(),
                        what: "relationship",
                    });
                }
            }
            ModifyRelationshipTargetType {
                ty,
                path,
                old_target,
                new_target,
            } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                let Some(dest) = self.require(new_target, v) else {
                    return;
                };
                let Some((rid, e)) = self.g.find_rel_end(id, path) else {
                    v.push(ConstraintViolation::UnknownMember {
                        ty: ty.clone(),
                        member: path.clone(),
                        what: "relationship",
                    });
                    return;
                };
                let other = self.g.rel(rid).other(e);
                let current_target = self.g.type_name(other.owner);
                if current_target != old_target {
                    v.push(ConstraintViolation::StaleValue {
                        what: format!("target of `{ty}::{path}`"),
                        expected: old_target.clone(),
                        found: current_target.to_string(),
                    });
                    return;
                }
                self.check_semantic_stability(old_target, new_target, v);
                if dest != other.owner {
                    self.check_move_target_free(other.owner, dest, &other.path, false, v);
                }
            }
            ModifyRelationshipCardinality {
                ty,
                path,
                old,
                new: _,
            } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                let Some((rid, e)) = self.g.find_rel_end(id, path) else {
                    v.push(ConstraintViolation::UnknownMember {
                        ty: ty.clone(),
                        member: path.clone(),
                        what: "relationship",
                    });
                    return;
                };
                let current = self.g.rel(rid).end(e).cardinality;
                if &current != old {
                    v.push(ConstraintViolation::StaleValue {
                        what: format!("cardinality of `{ty}::{path}`"),
                        expected: old.to_string(),
                        found: current.to_string(),
                    });
                }
            }
            ModifyRelationshipOrderBy { ty, path, old, new } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                let Some((rid, e)) = self.g.find_rel_end(id, path) else {
                    v.push(ConstraintViolation::UnknownMember {
                        ty: ty.clone(),
                        member: path.clone(),
                        what: "relationship",
                    });
                    return;
                };
                let rel = self.g.rel(rid);
                if &rel.end(e).order_by != old {
                    v.push(ConstraintViolation::StaleValue {
                        what: format!("order-by of `{ty}::{path}`"),
                        expected: old.join(", "),
                        found: join_syms(&rel.end(e).order_by),
                    });
                }
                self.check_attrs_visible(rel.other(e).owner, new, v);
            }
            AddOperation {
                ty,
                return_type,
                name,
                args,
                raises: _,
            } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                self.check_member_free(id, name, true, v);
                self.check_domain_types(return_type, v);
                for p in args {
                    self.check_domain_types(&p.ty, v);
                }
            }
            DeleteOperation { ty, name } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                if self.g.find_op(id, name).is_none() {
                    v.push(ConstraintViolation::UnknownMember {
                        ty: ty.clone(),
                        member: name.clone(),
                        what: "operation",
                    });
                }
            }
            ModifyOperation { ty, name, new_ty } => {
                let Some(id) = self.require(ty, v) else {
                    return;
                };
                let Some(dest) = self.require(new_ty, v) else {
                    return;
                };
                if self.g.find_op(id, name).is_none() {
                    v.push(ConstraintViolation::UnknownMember {
                        ty: ty.clone(),
                        member: name.clone(),
                        what: "operation",
                    });
                    return;
                }
                self.check_semantic_stability(ty, new_ty, v);
                if dest != id {
                    self.check_move_target_free(id, dest, name, true, v);
                }
            }
            ModifyOperationReturnType { ty, name, old, new } => {
                let Some(oid) = self.find_op(ty, name, v) else {
                    return;
                };
                let op_node = self.g.op(oid);
                if &op_node.op.return_type != old {
                    v.push(ConstraintViolation::StaleValue {
                        what: format!("return type of `{ty}::{name}`"),
                        expected: old.to_string(),
                        found: op_node.op.return_type.to_string(),
                    });
                }
                self.check_domain_types(new, v);
            }
            ModifyOperationArgList { ty, name, old, new } => {
                let Some(oid) = self.find_op(ty, name, v) else {
                    return;
                };
                if &self.g.op(oid).op.args != old {
                    v.push(ConstraintViolation::StaleValue {
                        what: format!("argument list of `{ty}::{name}`"),
                        expected: format!("{} arguments", old.len()),
                        found: format!("{} arguments", self.g.op(oid).op.args.len()),
                    });
                }
                for p in new {
                    self.check_domain_types(&p.ty, v);
                }
            }
            ModifyOperationExceptionsRaised {
                ty,
                name,
                old,
                new: _,
            } => {
                let Some(oid) = self.find_op(ty, name, v) else {
                    return;
                };
                if &self.g.op(oid).op.raises != old {
                    v.push(ConstraintViolation::StaleValue {
                        what: format!("exceptions of `{ty}::{name}`"),
                        expected: old.join(", "),
                        found: self.g.op(oid).op.raises.join(", "),
                    });
                }
            }
            AddPartOfRelationship {
                ty,
                collection,
                target,
                path,
                inverse_path,
                order_by,
            } => {
                self.check_add_link(
                    HierKind::PartOf,
                    ty,
                    collection.is_some(),
                    target,
                    path,
                    inverse_path,
                    order_by,
                    v,
                );
            }
            DeletePartOfRelationship { ty, path } => {
                self.check_link_exists(HierKind::PartOf, ty, path, v);
            }
            ModifyPartOfTargetType {
                ty,
                path,
                old_target,
                new_target,
            } => {
                self.check_modify_link_target(
                    HierKind::PartOf,
                    ty,
                    path,
                    old_target,
                    new_target,
                    v,
                );
            }
            ModifyPartOfCardinality {
                ty,
                path,
                old,
                new: _,
            } => {
                self.check_modify_link_collection(HierKind::PartOf, ty, path, *old, v);
            }
            ModifyPartOfOrderBy { ty, path, old, new } => {
                self.check_modify_link_order_by(HierKind::PartOf, ty, path, old, new, v);
            }
            AddInstanceOfRelationship {
                ty,
                collection,
                target,
                path,
                inverse_path,
                order_by,
            } => {
                self.check_add_link(
                    HierKind::InstanceOf,
                    ty,
                    collection.is_some(),
                    target,
                    path,
                    inverse_path,
                    order_by,
                    v,
                );
            }
            DeleteInstanceOfRelationship { ty, path } => {
                self.check_link_exists(HierKind::InstanceOf, ty, path, v);
            }
            ModifyInstanceOfTargetType {
                ty,
                path,
                old_target,
                new_target,
            } => {
                self.check_modify_link_target(
                    HierKind::InstanceOf,
                    ty,
                    path,
                    old_target,
                    new_target,
                    v,
                );
            }
            ModifyInstanceOfCardinality {
                ty,
                path,
                old,
                new: _,
            } => {
                self.check_modify_link_collection(HierKind::InstanceOf, ty, path, *old, v);
            }
            ModifyInstanceOfOrderBy { ty, path, old, new } => {
                self.check_modify_link_order_by(HierKind::InstanceOf, ty, path, old, new, v);
            }
        }
    }

    /// Moving `name` from `from` to `to`: `to` must not already define the
    /// member; inheritance conflicts are judged with the member's current
    /// location discounted (it vanishes from `from` atomically).
    fn check_move_target_free(
        &self,
        from: TypeId,
        to: TypeId,
        name: &str,
        is_op: bool,
        v: &mut Vec<ConstraintViolation>,
    ) {
        if self.g.member_exists(to, name) {
            v.push(ConstraintViolation::MemberExists {
                ty: self.g.type_name(to).to_string(),
                member: name.to_string(),
            });
            return;
        }
        let ancs = self.g.ancestors(to);
        let descs = self.g.descendants(to);
        for &related in ancs.iter().chain(descs.iter()) {
            if related == from {
                continue;
            }
            if let Some(their_op) = member_is_op(self.g, related, name) {
                if !(is_op && their_op) {
                    v.push(ConstraintViolation::InheritedConflict {
                        ty: self.g.type_name(to).to_string(),
                        member: name.to_string(),
                        other: self.g.type_name(related).to_string(),
                    });
                    return;
                }
            }
        }
    }

    /// Inheritance conflicts introduced by a new supertype edge `sub ISA
    /// sup`: any non-operation member visible in `sub`'s subtree colliding
    /// with a member visible on `sup`.
    fn check_inheritance_conflicts(
        &self,
        sub: TypeId,
        sup: TypeId,
        v: &mut Vec<ConstraintViolation>,
    ) {
        let sup_members = self.g.visible_members(sup);
        let mut subtree = vec![sub];
        subtree.extend(self.g.descendants(sub).iter().copied());
        for t in subtree {
            for (name, _) in own_members(self.g, t) {
                if let Some((_, def)) = sup_members.iter().find(|(n, _)| *n == name) {
                    let mine_op = member_is_op(self.g, t, name.as_str()).unwrap_or(false);
                    let theirs_op = member_is_op(self.g, *def, name.as_str()).unwrap_or(false);
                    if !(mine_op && theirs_op) {
                        v.push(ConstraintViolation::InheritedConflict {
                            ty: self.g.type_name(t).to_string(),
                            member: name.to_string(),
                            other: self.g.type_name(*def).to_string(),
                        });
                    }
                }
            }
        }
    }

    fn find_op(
        &self,
        ty: &str,
        name: &str,
        v: &mut Vec<ConstraintViolation>,
    ) -> Option<sws_model::OpId> {
        let id = self.require(ty, v)?;
        match self.g.find_op(id, name) {
            Some(o) => Some(o),
            None => {
                v.push(ConstraintViolation::UnknownMember {
                    ty: ty.to_string(),
                    member: name.to_string(),
                    what: "operation",
                });
                None
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_add_link(
        &self,
        kind: HierKind,
        ty: &str,
        is_parent_form: bool,
        target: &str,
        path: &str,
        inverse_path: &str,
        order_by: &[String],
        v: &mut Vec<ConstraintViolation>,
    ) {
        let a = self.require(ty, v);
        let b = self.require(target, v);
        let (Some(a), Some(b)) = (a, b) else { return };
        if a == b {
            v.push(ConstraintViolation::SelfLink { ty: ty.to_string() });
            return;
        }
        let (parent, child) = if is_parent_form { (a, b) } else { (b, a) };
        // Cycle: the new child must not already be an ancestor of the parent.
        if hier_is_ancestor(self.g, kind, child, parent) {
            v.push(ConstraintViolation::HierarchyCycle {
                kind,
                parent: self.g.type_name(parent).to_string(),
                child: self.g.type_name(child).to_string(),
            });
        }
        self.check_member_free(a, path, false, v);
        self.check_member_free(b, inverse_path, false, v);
        if !order_by.is_empty() {
            if is_parent_form {
                self.check_attrs_visible(child, order_by, v);
            } else {
                v.push(ConstraintViolation::OrderByOnChildEnd {
                    ty: ty.to_string(),
                    path: path.to_string(),
                });
            }
        }
    }

    fn check_link_exists(
        &self,
        kind: HierKind,
        ty: &str,
        path: &str,
        v: &mut Vec<ConstraintViolation>,
    ) -> Option<(sws_model::LinkId, sws_model::graph::LinkSide)> {
        let id = self.require(ty, v)?;
        match self.g.find_link(kind, id, path) {
            Some(found) => Some(found),
            None => {
                v.push(ConstraintViolation::UnknownMember {
                    ty: ty.to_string(),
                    member: path.to_string(),
                    what: kind.noun(),
                });
                None
            }
        }
    }

    fn check_modify_link_target(
        &self,
        kind: HierKind,
        ty: &str,
        path: &str,
        old_target: &str,
        new_target: &str,
        v: &mut Vec<ConstraintViolation>,
    ) {
        let Some((lid, side)) = self.check_link_exists(kind, ty, path, v) else {
            return;
        };
        let Some(dest) = self.require(new_target, v) else {
            return;
        };
        let link = self.g.link(lid);
        use sws_model::graph::LinkSide;
        let (current_target, target_path, this_side_type) = match side {
            LinkSide::Parent => (link.child, &link.child_path, link.parent),
            LinkSide::Child => (link.parent, &link.parent_path, link.child),
        };
        let current_name = self.g.type_name(current_target);
        if current_name != old_target {
            v.push(ConstraintViolation::StaleValue {
                what: format!("target of `{ty}::{path}`"),
                expected: old_target.to_string(),
                found: current_name.to_string(),
            });
            return;
        }
        self.check_semantic_stability(old_target, new_target, v);
        if dest == this_side_type {
            v.push(ConstraintViolation::SelfLink {
                ty: new_target.to_string(),
            });
            return;
        }
        if dest != current_target {
            if self.g.member_exists(dest, target_path) {
                v.push(ConstraintViolation::MemberExists {
                    ty: new_target.to_string(),
                    member: target_path.to_string(),
                });
            }
            // Cycle check for the would-be edge.
            let (p, c) = match side {
                LinkSide::Parent => (this_side_type, dest),
                LinkSide::Child => (dest, this_side_type),
            };
            if hier_is_ancestor_excluding(self.g, kind, lid, c, p) {
                v.push(ConstraintViolation::HierarchyCycle {
                    kind,
                    parent: self.g.type_name(p).to_string(),
                    child: self.g.type_name(c).to_string(),
                });
            }
        }
    }

    fn check_modify_link_collection(
        &self,
        kind: HierKind,
        ty: &str,
        path: &str,
        old: sws_odl::CollectionKind,
        v: &mut Vec<ConstraintViolation>,
    ) {
        let Some((lid, side)) = self.check_link_exists(kind, ty, path, v) else {
            return;
        };
        if side != sws_model::graph::LinkSide::Parent {
            v.push(ConstraintViolation::NotParentEnd {
                ty: ty.to_string(),
                path: path.to_string(),
            });
            return;
        }
        let link = self.g.link(lid);
        if link.collection != old {
            v.push(ConstraintViolation::StaleValue {
                what: format!("cardinality of `{ty}::{path}`"),
                expected: old.to_string(),
                found: link.collection.to_string(),
            });
        }
    }

    fn check_modify_link_order_by(
        &self,
        kind: HierKind,
        ty: &str,
        path: &str,
        old: &[String],
        new: &[String],
        v: &mut Vec<ConstraintViolation>,
    ) {
        let Some((lid, side)) = self.check_link_exists(kind, ty, path, v) else {
            return;
        };
        if side != sws_model::graph::LinkSide::Parent {
            v.push(ConstraintViolation::NotParentEnd {
                ty: ty.to_string(),
                path: path.to_string(),
            });
            return;
        }
        let link = self.g.link(lid);
        if link.order_by != old {
            v.push(ConstraintViolation::StaleValue {
                what: format!("order-by of `{ty}::{path}`"),
                expected: old.join(", "),
                found: join_syms(&link.order_by),
            });
        }
        self.check_attrs_visible(link.child, new, v);
    }
}

/// Does `t` define a member named `name`? Returns `Some(is_operation)`.
fn member_is_op<V: SchemaView>(g: &V, t: TypeId, name: &str) -> Option<bool> {
    if g.find_op(t, name).is_some() {
        return Some(true);
    }
    if g.find_attr(t, name).is_some()
        || g.find_rel_end(t, name).is_some()
        || g.find_link(HierKind::PartOf, t, name).is_some()
        || g.find_link(HierKind::InstanceOf, t, name).is_some()
    {
        return Some(false);
    }
    None
}

/// The member names `t` itself defines, with an is-operation flag.
fn own_members<V: SchemaView>(g: &V, t: TypeId) -> Vec<(Symbol, bool)> {
    let node = g.ty(t);
    let mut out = Vec::new();
    for &a in &node.attrs {
        out.push((g.attr(a).name, false));
    }
    for &(r, e) in &node.rel_ends {
        out.push((g.rel(r).end(e).path, false));
    }
    for &l in &node.parent_links {
        out.push((g.link(l).parent_path, false));
    }
    for &l in &node.child_links {
        out.push((g.link(l).child_path, false));
    }
    for &o in &node.ops {
        out.push((g.op(o).name, true));
    }
    out
}

/// Is `above` an ancestor of (or equal to) `start` in the `kind` hierarchy?
fn hier_is_ancestor<V: SchemaView>(g: &V, kind: HierKind, above: TypeId, start: TypeId) -> bool {
    if above == start {
        return true;
    }
    let mut stack = vec![start];
    let mut seen = std::collections::BTreeSet::new();
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        for (_, p) in g.hier_parents(kind, t) {
            if p == above {
                return true;
            }
            stack.push(p);
        }
    }
    false
}

/// As [`hier_is_ancestor`], ignoring one link.
fn hier_is_ancestor_excluding<V: SchemaView>(
    g: &V,
    kind: HierKind,
    skip: sws_model::LinkId,
    above: TypeId,
    start: TypeId,
) -> bool {
    if above == start {
        return true;
    }
    let mut stack = vec![start];
    let mut seen = std::collections::BTreeSet::new();
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        for (l, p) in g.hier_parents(kind, t) {
            if l == skip {
                continue;
            }
            if p == above {
                return true;
            }
            stack.push(p);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::schema_to_graph;
    use sws_odl::parse_schema;

    fn graph(src: &str) -> SchemaGraph {
        schema_to_graph(&parse_schema(src).unwrap()).unwrap()
    }

    const DEPT: &str = r#"
    schema Dept {
        interface Person { attribute string name; }
        interface Student : Person { }
        interface Employee : Person {
            attribute long badge;
            relationship Department works_in_a inverse Department::has;
        }
        interface Department {
            extent departments;
            attribute string name;
            relationship set<Employee> has inverse Employee::works_in_a;
        }
    }"#;

    fn check(op: &ModOp, src: &str) -> Vec<ConstraintViolation> {
        let g = graph(src);
        check_preconditions(op, &g, &g)
    }

    #[test]
    fn add_type_checks_name() {
        assert!(check(
            &ModOp::AddTypeDefinition {
                ty: "Course".into()
            },
            DEPT
        )
        .is_empty());
        let v = check(
            &ModOp::AddTypeDefinition {
                ty: "Person".into(),
            },
            DEPT,
        );
        assert_eq!(v, vec![ConstraintViolation::TypeExists("Person".into())]);
    }

    #[test]
    fn semantic_stability_enforced() {
        // Employee -> Person is a legal move (up the hierarchy).
        let ok = check(
            &ModOp::ModifyRelationshipTargetType {
                ty: "Department".into(),
                path: "has".into(),
                old_target: "Employee".into(),
                new_target: "Person".into(),
            },
            DEPT,
        );
        assert!(ok.is_empty(), "{ok:?}");
        // Employee -> Department is not on a generalization path.
        let bad = check(
            &ModOp::ModifyRelationshipTargetType {
                ty: "Department".into(),
                path: "has".into(),
                old_target: "Employee".into(),
                new_target: "Department".into(),
            },
            DEPT,
        );
        assert!(bad
            .iter()
            .any(|v| matches!(v, ConstraintViolation::SemanticStability { .. })));
    }

    #[test]
    fn stale_old_target_detected() {
        let v = check(
            &ModOp::ModifyRelationshipTargetType {
                ty: "Department".into(),
                path: "has".into(),
                old_target: "Student".into(),
                new_target: "Person".into(),
            },
            DEPT,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::StaleValue { .. })));
    }

    #[test]
    fn attribute_move_constraints() {
        // badge moves up from Employee to Person: fine.
        let v = check(
            &ModOp::ModifyAttribute {
                ty: "Employee".into(),
                name: "badge".into(),
                new_ty: "Person".into(),
            },
            DEPT,
        );
        assert!(v.is_empty(), "{v:?}");
        // Moving badge to Department violates semantic stability.
        let v = check(
            &ModOp::ModifyAttribute {
                ty: "Employee".into(),
                name: "badge".into(),
                new_ty: "Department".into(),
            },
            DEPT,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::SemanticStability { .. })));
        // Moving `name` down from Person to Student is on a path, but
        // `name` moving onto Student... Person also has `name` — wait, it
        // is the same attribute moving, so the own-definition check applies
        // to Student, which has no `name`: fine.
        let v = check(
            &ModOp::ModifyAttribute {
                ty: "Person".into(),
                name: "name".into(),
                new_ty: "Student".into(),
            },
            DEPT,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn add_attribute_inherited_conflict() {
        // `name` exists on Person; adding it to Student shadows it.
        let v = check(
            &ModOp::AddAttribute {
                ty: "Student".into(),
                domain: DomainType::String,
                size: None,
                name: "name".into(),
            },
            DEPT,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::InheritedConflict { .. })));
        // And adding to Person a member defined in a descendant conflicts too.
        let v = check(
            &ModOp::AddAttribute {
                ty: "Person".into(),
                domain: DomainType::Long,
                size: None,
                name: "badge".into(),
            },
            DEPT,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::InheritedConflict { .. })));
    }

    #[test]
    fn add_attribute_unknown_domain() {
        let v = check(
            &ModOp::AddAttribute {
                ty: "Person".into(),
                domain: DomainType::set_of(DomainType::named("Ghost")),
                size: None,
                name: "ghosts".into(),
            },
            DEPT,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::UnknownDomainType { .. })));
    }

    #[test]
    fn size_constraints() {
        let v = check(
            &ModOp::AddAttribute {
                ty: "Person".into(),
                domain: DomainType::Long,
                size: Some(4),
                name: "age".into(),
            },
            DEPT,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::SizeNotAllowed { .. })));
    }

    #[test]
    fn extent_constraints() {
        let v = check(
            &ModOp::AddExtentName {
                ty: "Person".into(),
                extent: "departments".into(),
            },
            DEPT,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::ExtentInUse(_))));
        let v = check(
            &ModOp::AddExtentName {
                ty: "Department".into(),
                extent: "depts2".into(),
            },
            DEPT,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::ExtentAlreadySet { .. })));
        let v = check(
            &ModOp::DeleteExtentName {
                ty: "Person".into(),
                extent: "x".into(),
            },
            DEPT,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::NoExtent { .. })));
    }

    #[test]
    fn supertype_constraints() {
        let v = check(
            &ModOp::AddSupertype {
                ty: "Person".into(),
                supertype: "Employee".into(),
            },
            DEPT,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::GeneralizationCycle { .. })));
        let v = check(
            &ModOp::DeleteSupertype {
                ty: "Person".into(),
                supertype: "Employee".into(),
            },
            DEPT,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::NoSupertypeEdge { .. })));
    }

    #[test]
    fn add_supertype_inheritance_conflict() {
        // Department defines `name`; Person subtree also defines `name` —
        // making Person a subtype of Department would shadow it.
        let v = check(
            &ModOp::AddSupertype {
                ty: "Person".into(),
                supertype: "Department".into(),
            },
            DEPT,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::InheritedConflict { .. })));
    }

    #[test]
    fn key_constraints() {
        let v = check(
            &ModOp::AddKeyList {
                ty: "Person".into(),
                keys: vec![Key::single("ghost")],
            },
            DEPT,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::AttributeNotVisible { .. })));
        let ok = check(
            &ModOp::AddKeyList {
                ty: "Student".into(),
                keys: vec![Key::single("name")],
            },
            DEPT,
        );
        // Inherited attribute keys are fine.
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn link_constraints() {
        const HOUSE: &str = r#"
        interface House { part_of set<Roof> roofs inverse Roof::house; }
        interface Roof { part_of House house inverse House::roofs; }
        interface Shingle { }"#;
        // Cycle.
        let v = check(
            &ModOp::AddPartOfRelationship {
                ty: "Roof".into(),
                collection: Some(sws_odl::CollectionKind::Set),
                target: "House".into(),
                path: "houses".into(),
                inverse_path: "roof_of".into(),
                order_by: vec![],
            },
            HOUSE,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::HierarchyCycle { .. })));
        // Self link.
        let v = check(
            &ModOp::AddPartOfRelationship {
                ty: "House".into(),
                collection: Some(sws_odl::CollectionKind::Set),
                target: "House".into(),
                path: "sub_houses".into(),
                inverse_path: "parent_house".into(),
                order_by: vec![],
            },
            HOUSE,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::SelfLink { .. })));
        // Order-by on child end.
        let v = check(
            &ModOp::AddPartOfRelationship {
                ty: "Shingle".into(),
                collection: None,
                target: "Roof".into(),
                path: "roof".into(),
                inverse_path: "shingles".into(),
                order_by: vec!["x".into()],
            },
            HOUSE,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::OrderByOnChildEnd { .. })));
        // Cardinality modification on the child end.
        let v = check(
            &ModOp::ModifyPartOfCardinality {
                ty: "Roof".into(),
                path: "house".into(),
                old: sws_odl::CollectionKind::Set,
                new: sws_odl::CollectionKind::List,
            },
            HOUSE,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::NotParentEnd { .. })));
        // Valid cardinality modification on the parent end.
        let ok = check(
            &ModOp::ModifyPartOfCardinality {
                ty: "House".into(),
                path: "roofs".into(),
                old: sws_odl::CollectionKind::Set,
                new: sws_odl::CollectionKind::List,
            },
            HOUSE,
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn every_violation_is_categorized() {
        // One representative per variant; the match in `category()` is
        // exhaustive, so this mostly documents the classification.
        use ConstraintCategory as C;
        let cases: Vec<(ConstraintViolation, C)> = vec![
            (ConstraintViolation::TypeExists("A".into()), C::Uniqueness),
            (ConstraintViolation::UnknownType("A".into()), C::Existence),
            (
                ConstraintViolation::StaleValue {
                    what: "x".into(),
                    expected: "a".into(),
                    found: "b".into(),
                },
                C::Currency,
            ),
            (
                ConstraintViolation::SemanticStability {
                    from: "A".into(),
                    to: "B".into(),
                },
                C::SemanticStability,
            ),
            (
                ConstraintViolation::GeneralizationCycle {
                    sub: "A".into(),
                    sup: "B".into(),
                },
                C::Structural,
            ),
            (
                ConstraintViolation::UnknownDomainType {
                    referenced: "G".into(),
                },
                C::Referential,
            ),
        ];
        for (violation, expected) in cases {
            assert_eq!(violation.category(), expected, "{violation}");
            assert!(!violation.category().to_string().is_empty());
        }
    }

    #[test]
    fn violations_display() {
        let g = graph(DEPT);
        let v = check_preconditions(
            &ModOp::DeleteAttribute {
                ty: "Person".into(),
                name: "ghost".into(),
            },
            &g,
            &g,
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("no attribute named `ghost`"));
    }

    #[test]
    fn modify_supertype_stale_detection() {
        let v = check(
            &ModOp::ModifySupertype {
                ty: "Employee".into(),
                old: vec!["Department".into()],
                new: vec!["Person".into()],
            },
            DEPT,
        );
        assert!(v
            .iter()
            .any(|v| matches!(v, ConstraintViolation::StaleValue { .. })));
        let ok = check(
            &ModOp::ModifySupertype {
                ty: "Employee".into(),
                old: vec!["Person".into()],
                new: vec![],
            },
            DEPT,
        );
        assert!(ok.is_empty(), "{ok:?}");
    }
}
