//! The modification-operation language (paper Appendix A, activity 7).
//!
//! A script is a sequence of statements, each `op_name(arg, ...)`, with an
//! optional `;` separator and `//` / `/* */` comments (the lexer is shared
//! with extended ODL):
//!
//! ```text
//! add_type_definition(Schedule)
//! add_attribute(CourseOffering, string(16), room);
//! add_relationship(Faculty, set<CourseOffering>, teaches,
//!                  CourseOffering::taught_by, (term))
//! modify_relationship_target_type(Department, has, Employee, Person)
//! modify_key_list(Course, (number), ((dept, number)))
//! add_operation(Student, float, gpa, (in unsigned_long term), (NoGrades))
//! ```
//!
//! Cardinality arguments accept either a bare kind (`one`, `set`, `list`,
//! `bag`) or a full target-of-path spec (`set<Person>`); the printer emits
//! the bare form. `modify_attribute_size` uses `none` for an absent size.
//!
//! [`print_op`] renders canonically and `parse_statement(print_op(op)) ==
//! op` for every operation (round-trip property).

use crate::ops::{ModOp, OpKind};
use sws_odl::lexer::{tokenize, Spanned, Token};
use sws_odl::{
    Cardinality, CollectionKind, DomainType, Key, OdlError, OdlErrorKind, Param, ParamDir, Span,
};

/// Parse a whole script into operations.
pub fn parse_script(src: &str) -> Result<Vec<ModOp>, OdlError> {
    let tokens = tokenize(src)?;
    let mut c = Cursor { tokens, pos: 0 };
    let mut ops = Vec::new();
    loop {
        while matches!(c.peek(), Token::Semi) {
            c.advance();
        }
        if matches!(c.peek(), Token::Eof) {
            break;
        }
        ops.push(c.statement()?);
    }
    Ok(ops)
}

/// Parse a single statement.
pub fn parse_statement(src: &str) -> Result<ModOp, OdlError> {
    let ops = parse_script(src)?;
    if ops.len() == 1 {
        Ok(ops.into_iter().next().expect("len checked"))
    } else {
        Err(OdlError::new(
            Span::at(1, 1),
            OdlErrorKind::Expected {
                expected: "exactly one statement".into(),
                found: format!("{} statements", ops.len()),
            },
        ))
    }
}

struct Cursor {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, expected: &str) -> OdlError {
        OdlError::new(
            self.span(),
            OdlErrorKind::Expected {
                expected: expected.into(),
                found: self.peek().describe(),
            },
        )
    }

    fn expect(&mut self, want: &Token, desc: &str) -> Result<(), OdlError> {
        if self.peek() == want {
            self.advance();
            Ok(())
        } else {
            Err(self.err(desc))
        }
    }

    fn ident(&mut self, desc: &str) -> Result<String, OdlError> {
        match self.peek() {
            Token::Ident(_) => match self.advance() {
                Token::Ident(s) => Ok(s),
                _ => unreachable!(),
            },
            _ => Err(self.err(desc)),
        }
    }

    fn number(&mut self, desc: &str) -> Result<u32, OdlError> {
        match self.peek() {
            Token::Number(_) => match self.advance() {
                Token::Number(n) => Ok(n),
                _ => unreachable!(),
            },
            _ => Err(self.err(desc)),
        }
    }

    fn comma(&mut self) -> Result<(), OdlError> {
        self.expect(&Token::Comma, "`,`")
    }

    /// `(ident, ident, ...)` possibly empty.
    fn ident_list(&mut self) -> Result<Vec<String>, OdlError> {
        self.expect(&Token::LParen, "`(`")?;
        let mut out = Vec::new();
        if !matches!(self.peek(), Token::RParen) {
            loop {
                out.push(self.ident("an identifier")?);
                if matches!(self.peek(), Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen, "`)`")?;
        Ok(out)
    }

    /// A key list: `(k1, (a, b), ...)`.
    fn key_list(&mut self) -> Result<Vec<Key>, OdlError> {
        self.expect(&Token::LParen, "`(`")?;
        let mut out = Vec::new();
        if !matches!(self.peek(), Token::RParen) {
            loop {
                if matches!(self.peek(), Token::LParen) {
                    self.advance();
                    let mut parts = Vec::new();
                    loop {
                        parts.push(self.ident("key attribute")?);
                        if matches!(self.peek(), Token::Comma) {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                    self.expect(&Token::RParen, "`)`")?;
                    out.push(Key(parts));
                } else {
                    out.push(Key::single(self.ident("key attribute")?));
                }
                if matches!(self.peek(), Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen, "`)`")?;
        Ok(out)
    }

    /// A domain type, with `set<...>`, `array<T, n>` etc.
    fn domain_type(&mut self) -> Result<DomainType, OdlError> {
        self.domain_type_at(0)
    }

    fn domain_type_at(&mut self, depth: usize) -> Result<DomainType, OdlError> {
        // Bounded like the ODL parser: `set<set<...` from a hostile or
        // corrupted op log must error, not overflow the stack.
        if depth >= sws_odl::MAX_TYPE_NESTING {
            return Err(OdlError::new(
                self.span(),
                OdlErrorKind::NestingTooDeep {
                    limit: sws_odl::MAX_TYPE_NESTING,
                },
            ));
        }
        let word = self.ident("a type")?;
        match word.as_str() {
            "set" | "list" | "bag" if matches!(self.peek(), Token::Lt) => {
                let kind = collection_kind(&word).expect("matched above");
                self.advance();
                let elem = self.domain_type_at(depth + 1)?;
                self.expect(&Token::Gt, "`>`")?;
                Ok(DomainType::Collection(kind, Box::new(elem)))
            }
            "array" => {
                self.expect(&Token::Lt, "`<`")?;
                let elem = self.domain_type_at(depth + 1)?;
                self.comma()?;
                let n = self.number("array length")?;
                self.expect(&Token::Gt, "`>`")?;
                Ok(DomainType::Array(Box::new(elem), n))
            }
            _ => Ok(DomainType::from_keyword(&word).unwrap_or(DomainType::Named(word))),
        }
    }

    /// `set<T>` / `list<T>` / `bag<T>` / `T` → (target, cardinality).
    fn target_spec(&mut self) -> Result<(String, Cardinality), OdlError> {
        let word = self.ident("a target type")?;
        match collection_kind(&word) {
            Some(kind) if matches!(self.peek(), Token::Lt) => {
                self.advance();
                let target = self.ident("target type")?;
                self.expect(&Token::Gt, "`>`")?;
                Ok((target, Cardinality::Many(kind)))
            }
            _ => Ok((word, Cardinality::One)),
        }
    }

    /// Bare cardinality (`one`/`set`/`list`/`bag`) or full spec `set<T>`.
    fn cardinality(&mut self) -> Result<Cardinality, OdlError> {
        let word = self.ident("a cardinality (one/set/list/bag)")?;
        if word == "one" {
            return Ok(Cardinality::One);
        }
        let Some(kind) = collection_kind(&word) else {
            return Err(OdlError::new(
                self.span(),
                OdlErrorKind::Expected {
                    expected: "one, set, list, or bag".into(),
                    found: format!("`{word}`"),
                },
            ));
        };
        if matches!(self.peek(), Token::Lt) {
            self.advance();
            self.ident("target type")?;
            self.expect(&Token::Gt, "`>`")?;
        }
        Ok(Cardinality::Many(kind))
    }

    /// Bare collection kind.
    fn collection(&mut self) -> Result<CollectionKind, OdlError> {
        let word = self.ident("a collection kind (set/list/bag)")?;
        collection_kind(&word).ok_or_else(|| {
            OdlError::new(
                self.span(),
                OdlErrorKind::Expected {
                    expected: "set, list, or bag".into(),
                    found: format!("`{word}`"),
                },
            )
        })
    }

    /// `Target::path`.
    fn inverse_spec(&mut self) -> Result<(String, String), OdlError> {
        let target = self.ident("inverse target type")?;
        self.expect(&Token::ColonColon, "`::`")?;
        let path = self.ident("inverse traversal path")?;
        Ok((target, path))
    }

    /// `(dir type name, ...)` possibly empty.
    fn param_list(&mut self) -> Result<Vec<Param>, OdlError> {
        self.expect(&Token::LParen, "`(`")?;
        let mut out = Vec::new();
        if !matches!(self.peek(), Token::RParen) {
            loop {
                let direction = match self.peek() {
                    Token::Ident(w) if w == "in" => {
                        self.advance();
                        ParamDir::In
                    }
                    Token::Ident(w) if w == "out" => {
                        self.advance();
                        ParamDir::Out
                    }
                    Token::Ident(w) if w == "inout" => {
                        self.advance();
                        ParamDir::InOut
                    }
                    _ => ParamDir::In,
                };
                let ty = self.domain_type()?;
                let name = self.ident("parameter name")?;
                out.push(Param {
                    direction,
                    ty,
                    name,
                });
                if matches!(self.peek(), Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen, "`)`")?;
        Ok(out)
    }

    /// `none` or a number.
    fn opt_size(&mut self) -> Result<Option<u32>, OdlError> {
        match self.peek() {
            Token::Ident(w) if w == "none" => {
                self.advance();
                Ok(None)
            }
            Token::Number(_) => Ok(Some(self.number("a size")?)),
            _ => Err(self.err("a size or `none`")),
        }
    }

    fn statement(&mut self) -> Result<ModOp, OdlError> {
        let name_span = self.span();
        let name = self.ident("an operation name")?;
        let kind = OpKind::from_name(&name).ok_or_else(|| {
            OdlError::new(
                name_span,
                OdlErrorKind::Expected {
                    expected: "a modification operation name".into(),
                    found: format!("`{name}`"),
                },
            )
        })?;
        self.expect(&Token::LParen, "`(`")?;
        let op = self.args(kind)?;
        self.expect(&Token::RParen, "`)`")?;
        Ok(op)
    }

    fn args(&mut self, kind: OpKind) -> Result<ModOp, OdlError> {
        use OpKind as K;
        let op = match kind {
            K::AddTypeDefinition => ModOp::AddTypeDefinition {
                ty: self.ident("a type name")?,
            },
            K::DeleteTypeDefinition => ModOp::DeleteTypeDefinition {
                ty: self.ident("a type name")?,
            },
            K::AddSupertype => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let supertype = self.ident("a supertype name")?;
                ModOp::AddSupertype { ty, supertype }
            }
            K::DeleteSupertype => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let supertype = self.ident("a supertype name")?;
                ModOp::DeleteSupertype { ty, supertype }
            }
            K::ModifySupertype => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let old = self.ident_list()?;
                self.comma()?;
                let new = self.ident_list()?;
                ModOp::ModifySupertype { ty, old, new }
            }
            K::AddExtentName => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let extent = self.ident("an extent name")?;
                ModOp::AddExtentName { ty, extent }
            }
            K::DeleteExtentName => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let extent = self.ident("an extent name")?;
                ModOp::DeleteExtentName { ty, extent }
            }
            K::ModifyExtentName => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let old = self.ident("the old extent name")?;
                self.comma()?;
                let new = self.ident("the new extent name")?;
                ModOp::ModifyExtentName { ty, old, new }
            }
            K::AddKeyList => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let keys = self.key_list()?;
                ModOp::AddKeyList { ty, keys }
            }
            K::DeleteKeyList => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let keys = self.key_list()?;
                ModOp::DeleteKeyList { ty, keys }
            }
            K::ModifyKeyList => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let old = self.key_list()?;
                self.comma()?;
                let new = self.key_list()?;
                ModOp::ModifyKeyList { ty, old, new }
            }
            K::AddAttribute => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let domain = self.domain_type()?;
                let size = if matches!(self.peek(), Token::LParen) {
                    self.advance();
                    let n = self.number("a size")?;
                    self.expect(&Token::RParen, "`)`")?;
                    Some(n)
                } else {
                    None
                };
                self.comma()?;
                let name = self.ident("an attribute name")?;
                ModOp::AddAttribute {
                    ty,
                    domain,
                    size,
                    name,
                }
            }
            K::DeleteAttribute => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let name = self.ident("an attribute name")?;
                ModOp::DeleteAttribute { ty, name }
            }
            K::ModifyAttribute => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let name = self.ident("an attribute name")?;
                self.comma()?;
                let new_ty = self.ident("the destination type")?;
                ModOp::ModifyAttribute { ty, name, new_ty }
            }
            K::ModifyAttributeType => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let name = self.ident("an attribute name")?;
                self.comma()?;
                let old = self.domain_type()?;
                self.comma()?;
                let new = self.domain_type()?;
                ModOp::ModifyAttributeType { ty, name, old, new }
            }
            K::ModifyAttributeSize => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let name = self.ident("an attribute name")?;
                self.comma()?;
                let old = self.opt_size()?;
                self.comma()?;
                let new = self.opt_size()?;
                ModOp::ModifyAttributeSize { ty, name, old, new }
            }
            K::AddRelationship => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let (target, cardinality) = self.target_spec()?;
                self.comma()?;
                let path = self.ident("a traversal path")?;
                self.comma()?;
                let (inv_target, inverse_path) = self.inverse_spec()?;
                if inv_target != target {
                    return Err(OdlError::new(
                        self.span(),
                        OdlErrorKind::Expected {
                            expected: format!("inverse qualifier `{target}`"),
                            found: format!("`{inv_target}`"),
                        },
                    ));
                }
                let order_by = if matches!(self.peek(), Token::Comma) {
                    self.advance();
                    self.ident_list()?
                } else {
                    Vec::new()
                };
                ModOp::AddRelationship {
                    ty,
                    target,
                    cardinality,
                    path,
                    inverse_path,
                    order_by,
                }
            }
            K::DeleteRelationship => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let path = self.ident("a traversal path")?;
                ModOp::DeleteRelationship { ty, path }
            }
            K::ModifyRelationshipTargetType => {
                let (ty, path, old_target, new_target) = self.four_idents()?;
                ModOp::ModifyRelationshipTargetType {
                    ty,
                    path,
                    old_target,
                    new_target,
                }
            }
            K::ModifyRelationshipCardinality => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let path = self.ident("a traversal path")?;
                self.comma()?;
                let old = self.cardinality()?;
                self.comma()?;
                let new = self.cardinality()?;
                ModOp::ModifyRelationshipCardinality { ty, path, old, new }
            }
            K::ModifyRelationshipOrderBy => {
                let (ty, path, old, new) = self.path_and_two_lists()?;
                ModOp::ModifyRelationshipOrderBy { ty, path, old, new }
            }
            K::AddOperation => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let return_type = self.domain_type()?;
                self.comma()?;
                let name = self.ident("an operation name")?;
                let args = if matches!(self.peek(), Token::Comma) {
                    self.advance();
                    self.param_list()?
                } else {
                    Vec::new()
                };
                let raises = if matches!(self.peek(), Token::Comma) {
                    self.advance();
                    self.ident_list()?
                } else {
                    Vec::new()
                };
                ModOp::AddOperation {
                    ty,
                    return_type,
                    name,
                    args,
                    raises,
                }
            }
            K::DeleteOperation => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let name = self.ident("an operation name")?;
                ModOp::DeleteOperation { ty, name }
            }
            K::ModifyOperation => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let name = self.ident("an operation name")?;
                self.comma()?;
                let new_ty = self.ident("the destination type")?;
                ModOp::ModifyOperation { ty, name, new_ty }
            }
            K::ModifyOperationReturnType => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let name = self.ident("an operation name")?;
                self.comma()?;
                let old = self.domain_type()?;
                self.comma()?;
                let new = self.domain_type()?;
                ModOp::ModifyOperationReturnType { ty, name, old, new }
            }
            K::ModifyOperationArgList => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let name = self.ident("an operation name")?;
                self.comma()?;
                let old = self.param_list()?;
                self.comma()?;
                let new = self.param_list()?;
                ModOp::ModifyOperationArgList { ty, name, old, new }
            }
            K::ModifyOperationExceptionsRaised => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let name = self.ident("an operation name")?;
                self.comma()?;
                let old = self.ident_list()?;
                self.comma()?;
                let new = self.ident_list()?;
                ModOp::ModifyOperationExceptionsRaised { ty, name, old, new }
            }
            K::AddPartOfRelationship | K::AddInstanceOfRelationship => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let (target, cardinality) = self.target_spec()?;
                self.comma()?;
                let path = self.ident("a traversal path")?;
                self.comma()?;
                let (inv_target, inverse_path) = self.inverse_spec()?;
                if inv_target != target {
                    return Err(OdlError::new(
                        self.span(),
                        OdlErrorKind::Expected {
                            expected: format!("inverse qualifier `{target}`"),
                            found: format!("`{inv_target}`"),
                        },
                    ));
                }
                let order_by = if matches!(self.peek(), Token::Comma) {
                    self.advance();
                    self.ident_list()?
                } else {
                    Vec::new()
                };
                let collection = match cardinality {
                    Cardinality::Many(k) => Some(k),
                    Cardinality::One => None,
                };
                if kind == K::AddPartOfRelationship {
                    ModOp::AddPartOfRelationship {
                        ty,
                        collection,
                        target,
                        path,
                        inverse_path,
                        order_by,
                    }
                } else {
                    ModOp::AddInstanceOfRelationship {
                        ty,
                        collection,
                        target,
                        path,
                        inverse_path,
                        order_by,
                    }
                }
            }
            K::DeletePartOfRelationship => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let path = self.ident("a traversal path")?;
                ModOp::DeletePartOfRelationship { ty, path }
            }
            K::DeleteInstanceOfRelationship => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let path = self.ident("a traversal path")?;
                ModOp::DeleteInstanceOfRelationship { ty, path }
            }
            K::ModifyPartOfTargetType => {
                let (ty, path, old_target, new_target) = self.four_idents()?;
                ModOp::ModifyPartOfTargetType {
                    ty,
                    path,
                    old_target,
                    new_target,
                }
            }
            K::ModifyInstanceOfTargetType => {
                let (ty, path, old_target, new_target) = self.four_idents()?;
                ModOp::ModifyInstanceOfTargetType {
                    ty,
                    path,
                    old_target,
                    new_target,
                }
            }
            K::ModifyPartOfCardinality => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let path = self.ident("a traversal path")?;
                self.comma()?;
                let old = self.collection()?;
                self.comma()?;
                let new = self.collection()?;
                ModOp::ModifyPartOfCardinality { ty, path, old, new }
            }
            K::ModifyInstanceOfCardinality => {
                let ty = self.ident("a type name")?;
                self.comma()?;
                let path = self.ident("a traversal path")?;
                self.comma()?;
                let old = self.collection()?;
                self.comma()?;
                let new = self.collection()?;
                ModOp::ModifyInstanceOfCardinality { ty, path, old, new }
            }
            K::ModifyPartOfOrderBy => {
                let (ty, path, old, new) = self.path_and_two_lists()?;
                ModOp::ModifyPartOfOrderBy { ty, path, old, new }
            }
            K::ModifyInstanceOfOrderBy => {
                let (ty, path, old, new) = self.path_and_two_lists()?;
                ModOp::ModifyInstanceOfOrderBy { ty, path, old, new }
            }
        };
        Ok(op)
    }

    fn four_idents(&mut self) -> Result<(String, String, String, String), OdlError> {
        let a = self.ident("a type name")?;
        self.comma()?;
        let b = self.ident("a traversal path")?;
        self.comma()?;
        let c = self.ident("the old target type")?;
        self.comma()?;
        let d = self.ident("the new target type")?;
        Ok((a, b, c, d))
    }

    fn path_and_two_lists(
        &mut self,
    ) -> Result<(String, String, Vec<String>, Vec<String>), OdlError> {
        let ty = self.ident("a type name")?;
        self.comma()?;
        let path = self.ident("a traversal path")?;
        self.comma()?;
        let old = self.ident_list()?;
        self.comma()?;
        let new = self.ident_list()?;
        Ok((ty, path, old, new))
    }
}

fn collection_kind(word: &str) -> Option<CollectionKind> {
    match word {
        "set" => Some(CollectionKind::Set),
        "list" => Some(CollectionKind::List),
        "bag" => Some(CollectionKind::Bag),
        _ => None,
    }
}

// ----------------------------------------------------------------------
// Printing
// ----------------------------------------------------------------------

fn idents(list: &[String]) -> String {
    format!("({})", list.join(", "))
}

fn keys(list: &[Key]) -> String {
    let rendered: Vec<String> = list
        .iter()
        .map(|k| {
            if k.0.len() == 1 {
                k.0[0].clone()
            } else {
                format!("({})", k.0.join(", "))
            }
        })
        .collect();
    format!("({})", rendered.join(", "))
}

fn params(list: &[Param]) -> String {
    let rendered: Vec<String> = list
        .iter()
        .map(|p| format!("{} {} {}", p.direction.keyword(), p.ty, p.name))
        .collect();
    format!("({})", rendered.join(", "))
}

fn card(c: Cardinality) -> String {
    match c {
        Cardinality::One => "one".into(),
        Cardinality::Many(k) => k.keyword().into(),
    }
}

fn size(s: Option<u32>) -> String {
    s.map(|n| n.to_string()).unwrap_or_else(|| "none".into())
}

fn target_spec(target: &str, c: Cardinality) -> String {
    match c {
        Cardinality::One => target.into(),
        Cardinality::Many(k) => format!("{k}<{target}>"),
    }
}

/// Render an operation in the canonical concrete syntax.
pub fn print_op(op: &ModOp) -> String {
    use ModOp::*;
    match op {
        AddTypeDefinition { ty } => format!("add_type_definition({ty})"),
        DeleteTypeDefinition { ty } => format!("delete_type_definition({ty})"),
        AddSupertype { ty, supertype } => format!("add_supertype({ty}, {supertype})"),
        DeleteSupertype { ty, supertype } => format!("delete_supertype({ty}, {supertype})"),
        ModifySupertype { ty, old, new } => {
            format!("modify_supertype({ty}, {}, {})", idents(old), idents(new))
        }
        AddExtentName { ty, extent } => format!("add_extent_name({ty}, {extent})"),
        DeleteExtentName { ty, extent } => format!("delete_extent_name({ty}, {extent})"),
        ModifyExtentName { ty, old, new } => format!("modify_extent_name({ty}, {old}, {new})"),
        AddKeyList { ty, keys: k } => format!("add_key_list({ty}, {})", keys(k)),
        DeleteKeyList { ty, keys: k } => format!("delete_key_list({ty}, {})", keys(k)),
        ModifyKeyList { ty, old, new } => {
            format!("modify_key_list({ty}, {}, {})", keys(old), keys(new))
        }
        AddAttribute {
            ty,
            domain,
            size: s,
            name,
        } => match s {
            Some(n) => format!("add_attribute({ty}, {domain}({n}), {name})"),
            None => format!("add_attribute({ty}, {domain}, {name})"),
        },
        DeleteAttribute { ty, name } => format!("delete_attribute({ty}, {name})"),
        ModifyAttribute { ty, name, new_ty } => {
            format!("modify_attribute({ty}, {name}, {new_ty})")
        }
        ModifyAttributeType { ty, name, old, new } => {
            format!("modify_attribute_type({ty}, {name}, {old}, {new})")
        }
        ModifyAttributeSize { ty, name, old, new } => {
            format!(
                "modify_attribute_size({ty}, {name}, {}, {})",
                size(*old),
                size(*new)
            )
        }
        AddRelationship {
            ty,
            target,
            cardinality,
            path,
            inverse_path,
            order_by,
        } => {
            let mut s = format!(
                "add_relationship({ty}, {}, {path}, {target}::{inverse_path}",
                target_spec(target, *cardinality)
            );
            if !order_by.is_empty() {
                s.push_str(&format!(", {}", idents(order_by)));
            }
            s.push(')');
            s
        }
        DeleteRelationship { ty, path } => format!("delete_relationship({ty}, {path})"),
        ModifyRelationshipTargetType {
            ty,
            path,
            old_target,
            new_target,
        } => format!("modify_relationship_target_type({ty}, {path}, {old_target}, {new_target})"),
        ModifyRelationshipCardinality { ty, path, old, new } => format!(
            "modify_relationship_cardinality({ty}, {path}, {}, {})",
            card(*old),
            card(*new)
        ),
        ModifyRelationshipOrderBy { ty, path, old, new } => format!(
            "modify_relationship_order_by({ty}, {path}, {}, {})",
            idents(old),
            idents(new)
        ),
        AddOperation {
            ty,
            return_type,
            name,
            args,
            raises,
        } => {
            let mut s = format!("add_operation({ty}, {return_type}, {name}");
            if !args.is_empty() || !raises.is_empty() {
                s.push_str(&format!(", {}", params(args)));
            }
            if !raises.is_empty() {
                s.push_str(&format!(", {}", idents(raises)));
            }
            s.push(')');
            s
        }
        DeleteOperation { ty, name } => format!("delete_operation({ty}, {name})"),
        ModifyOperation { ty, name, new_ty } => {
            format!("modify_operation({ty}, {name}, {new_ty})")
        }
        ModifyOperationReturnType { ty, name, old, new } => {
            format!("modify_operation_return_type({ty}, {name}, {old}, {new})")
        }
        ModifyOperationArgList { ty, name, old, new } => format!(
            "modify_operation_arg_list({ty}, {name}, {}, {})",
            params(old),
            params(new)
        ),
        ModifyOperationExceptionsRaised { ty, name, old, new } => format!(
            "modify_operation_exceptions_raised({ty}, {name}, {}, {})",
            idents(old),
            idents(new)
        ),
        AddPartOfRelationship {
            ty,
            collection,
            target,
            path,
            inverse_path,
            order_by,
        } => print_add_link(
            "add_part_of_relationship",
            ty,
            *collection,
            target,
            path,
            inverse_path,
            order_by,
        ),
        DeletePartOfRelationship { ty, path } => {
            format!("delete_part_of_relationship({ty}, {path})")
        }
        ModifyPartOfTargetType {
            ty,
            path,
            old_target,
            new_target,
        } => {
            format!("modify_part_of_target_type({ty}, {path}, {old_target}, {new_target})")
        }
        ModifyPartOfCardinality { ty, path, old, new } => {
            format!("modify_part_of_cardinality({ty}, {path}, {old}, {new})")
        }
        ModifyPartOfOrderBy { ty, path, old, new } => {
            format!(
                "modify_part_of_order_by({ty}, {path}, {}, {})",
                idents(old),
                idents(new)
            )
        }
        AddInstanceOfRelationship {
            ty,
            collection,
            target,
            path,
            inverse_path,
            order_by,
        } => print_add_link(
            "add_instance_of_relationship",
            ty,
            *collection,
            target,
            path,
            inverse_path,
            order_by,
        ),
        DeleteInstanceOfRelationship { ty, path } => {
            format!("delete_instance_of_relationship({ty}, {path})")
        }
        ModifyInstanceOfTargetType {
            ty,
            path,
            old_target,
            new_target,
        } => format!("modify_instance_of_target_type({ty}, {path}, {old_target}, {new_target})"),
        ModifyInstanceOfCardinality { ty, path, old, new } => {
            format!("modify_instance_of_cardinality({ty}, {path}, {old}, {new})")
        }
        ModifyInstanceOfOrderBy { ty, path, old, new } => format!(
            "modify_instance_of_order_by({ty}, {path}, {}, {})",
            idents(old),
            idents(new)
        ),
    }
}

fn print_add_link(
    name: &str,
    ty: &str,
    collection: Option<CollectionKind>,
    target: &str,
    path: &str,
    inverse_path: &str,
    order_by: &[String],
) -> String {
    let spec = match collection {
        Some(k) => format!("{k}<{target}>"),
        None => target.to_string(),
    };
    let mut s = format!("{name}({ty}, {spec}, {path}, {target}::{inverse_path}");
    if !order_by.is_empty() {
        s.push_str(&format!(", {}", idents(order_by)));
    }
    s.push(')');
    s
}

/// Render a whole script, one statement per line.
pub fn print_script(ops: &[ModOp]) -> String {
    let mut out = String::new();
    for op in ops {
        out.push_str(&print_op(op));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(src: &str) -> ModOp {
        let op = parse_statement(src).unwrap();
        let printed = print_op(&op);
        let reparsed = parse_statement(&printed).unwrap();
        assert_eq!(op, reparsed, "print: {printed}");
        op
    }

    #[test]
    fn paper_example_statement() {
        // §3.4: modify relationship target type (Employee, works_in_a, Person)
        // — we use the 4-argument BNF form.
        let op = round_trip("modify_relationship_target_type(Department, has, Employee, Person)");
        assert_eq!(
            op,
            ModOp::ModifyRelationshipTargetType {
                ty: "Department".into(),
                path: "has".into(),
                old_target: "Employee".into(),
                new_target: "Person".into(),
            }
        );
    }

    #[test]
    fn add_attribute_forms() {
        let op = round_trip("add_attribute(CourseOffering, string(16), room)");
        assert_eq!(
            op,
            ModOp::AddAttribute {
                ty: "CourseOffering".into(),
                domain: DomainType::String,
                size: Some(16),
                name: "room".into(),
            }
        );
        round_trip("add_attribute(A, set<string>, tags)");
        round_trip("add_attribute(A, array<double, 3>, pos)");
    }

    #[test]
    fn add_relationship_with_order_by() {
        let op = round_trip(
            "add_relationship(Faculty, set<CourseOffering>, teaches, CourseOffering::taught_by, (term, room))",
        );
        match op {
            ModOp::AddRelationship {
                cardinality,
                order_by,
                ..
            } => {
                assert_eq!(cardinality, Cardinality::Many(CollectionKind::Set));
                assert_eq!(order_by, vec!["term", "room"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inverse_qualifier_checked() {
        assert!(parse_statement("add_relationship(A, B, r, C::inv)").is_err());
    }

    #[test]
    fn key_lists() {
        let op = round_trip("modify_key_list(Course, (number), ((dept, number), title))");
        assert_eq!(
            op,
            ModOp::ModifyKeyList {
                ty: "Course".into(),
                old: vec![Key::single("number")],
                new: vec![Key::compound(["dept", "number"]), Key::single("title")],
            }
        );
    }

    #[test]
    fn operations_with_args_and_raises() {
        let op = round_trip(
            "add_operation(Student, float, gpa, (in unsigned_long term, out long count), (NoGrades))",
        );
        match op {
            ModOp::AddOperation { args, raises, .. } => {
                assert_eq!(args.len(), 2);
                assert_eq!(args[1].direction, ParamDir::Out);
                assert_eq!(raises, vec!["NoGrades"]);
            }
            other => panic!("{other:?}"),
        }
        round_trip("add_operation(Student, void, enroll)");
        round_trip("modify_operation_arg_list(A, f, (), (in long x))");
    }

    #[test]
    fn part_of_forms() {
        let parent =
            round_trip("add_part_of_relationship(House, set<Wall>, walls, Wall::house, (height))");
        match parent {
            ModOp::AddPartOfRelationship { collection, .. } => {
                assert_eq!(collection, Some(CollectionKind::Set));
            }
            other => panic!("{other:?}"),
        }
        let child = round_trip("add_part_of_relationship(Wall, House, house, House::walls)");
        match child {
            ModOp::AddPartOfRelationship { collection, .. } => assert_eq!(collection, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cardinality_forms() {
        round_trip("modify_relationship_cardinality(D, has, one, set)");
        // Full spec also accepted.
        let op =
            parse_statement("modify_relationship_cardinality(D, has, set<Person>, list<Person>)")
                .unwrap();
        assert_eq!(
            op,
            ModOp::ModifyRelationshipCardinality {
                ty: "D".into(),
                path: "has".into(),
                old: Cardinality::Many(CollectionKind::Set),
                new: Cardinality::Many(CollectionKind::List),
            }
        );
    }

    #[test]
    fn size_none() {
        round_trip("modify_attribute_size(A, name, none, 32)");
        round_trip("modify_attribute_size(A, name, 32, none)");
    }

    #[test]
    fn whole_script_with_comments() {
        let src = r#"
        // elaborate the course offering
        add_type_definition(Schedule);
        add_part_of_relationship(Schedule, set<CourseOffering>, offerings,
                                 CourseOffering::schedule)
        /* simplify for correspondence courses */
        delete_attribute(CourseOffering, room);
        "#;
        let ops = parse_script(src).unwrap();
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn unknown_operation_rejected() {
        let err = parse_statement("rename_type(A, B)").unwrap_err();
        assert!(err.to_string().contains("modification operation"));
    }

    #[test]
    fn every_kind_round_trips() {
        let samples = [
            "add_type_definition(T)",
            "delete_type_definition(T)",
            "add_supertype(T, S)",
            "delete_supertype(T, S)",
            "modify_supertype(T, (A, B), (C))",
            "add_extent_name(T, e)",
            "delete_extent_name(T, e)",
            "modify_extent_name(T, a, b)",
            "add_key_list(T, (k))",
            "delete_key_list(T, (k))",
            "modify_key_list(T, (k), ((a, b)))",
            "add_attribute(T, long, x)",
            "delete_attribute(T, x)",
            "modify_attribute(T, x, S)",
            "modify_attribute_type(T, x, long, string)",
            "modify_attribute_size(T, x, none, 8)",
            "add_relationship(T, set<U>, r, U::inv)",
            "delete_relationship(T, r)",
            "modify_relationship_target_type(T, r, U, V)",
            "modify_relationship_cardinality(T, r, one, bag)",
            "modify_relationship_order_by(T, r, (), (x))",
            "add_operation(T, void, f)",
            "delete_operation(T, f)",
            "modify_operation(T, f, S)",
            "modify_operation_return_type(T, f, void, long)",
            "modify_operation_arg_list(T, f, (), (in long x))",
            "modify_operation_exceptions_raised(T, f, (), (E))",
            "add_part_of_relationship(T, set<U>, p, U::w)",
            "delete_part_of_relationship(T, p)",
            "modify_part_of_target_type(T, p, U, V)",
            "modify_part_of_cardinality(T, p, set, list)",
            "modify_part_of_order_by(T, p, (), (x))",
            "add_instance_of_relationship(T, set<U>, i, U::g)",
            "delete_instance_of_relationship(T, i)",
            "modify_instance_of_target_type(T, i, U, V)",
            "modify_instance_of_cardinality(T, i, set, bag)",
            "modify_instance_of_order_by(T, i, (), (x))",
        ];
        assert_eq!(samples.len(), 37);
        let mut kinds = std::collections::BTreeSet::new();
        for s in samples {
            let op = round_trip(s);
            kinds.insert(op.kind());
        }
        assert_eq!(kinds.len(), 37);
    }

    #[test]
    fn print_script_lines() {
        let ops = vec![
            ModOp::AddTypeDefinition { ty: "A".into() },
            ModOp::DeleteTypeDefinition { ty: "B".into() },
        ];
        let text = print_script(&ops);
        assert_eq!(text.lines().count(), 2);
        assert_eq!(parse_script(&text).unwrap(), ops);
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        // A hostile or corrupted op log must not blow the stack: the
        // depth guard caps `set<set<...` recursion with a typed error.
        let bomb = format!("add_attribute(T, {}long, x)", "set<".repeat(10_000));
        let err = parse_statement(&bomb).unwrap_err();
        assert_eq!(
            err.kind,
            OdlErrorKind::NestingTooDeep {
                limit: sws_odl::MAX_TYPE_NESTING
            }
        );
        // Just under the limit still parses.
        let depth = sws_odl::MAX_TYPE_NESTING - 1;
        let ok = format!(
            "add_attribute(T, {}long{}, x)",
            "set<".repeat(depth),
            ">".repeat(depth)
        );
        round_trip(&ok);
    }
}
