//! Concept schemas: the unit of viewing and modification (paper §3.3).
//!
//! A concept schema is a *subset of an application schema* addressing one
//! point of view. Concretely it is a **view** — sets of element IDs — over
//! the single workspace [`SchemaGraph`]; modifying "a concept schema" means
//! issuing an operation *in the context of* that concept schema, which
//! restricts the permitted operations (Table 1) while all changes land in
//! the one integrated schema.
//!
//! The four concept schema types:
//!
//! * **Wagon wheel** — one focal object type plus every attribute,
//!   operation, relationship, hierarchy link, and generalization edge at
//!   distance one (§3.3.1). At least one exists per object type, and the
//!   union of all wagon wheels is the original schema.
//! * **Generalization hierarchy** — one ISA component, rooted (§3.3.2).
//! * **Aggregation hierarchy** — the part-of explosion below a root whole
//!   (§3.3.3).
//! * **Instance-of hierarchy** — the (typically linear) sequence of
//!   instance-of links below a generic entity (§3.3.4).

mod decompose;

pub use decompose::{decompose, normalize_single_root, Decomposition};

use std::collections::BTreeSet;
use std::fmt;
use sws_model::{AttrId, LinkId, OpId, RelId, SchemaGraph, TypeId};

/// The four concept schema types of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConceptKind {
    /// One object type and its distance-one neighbourhood.
    WagonWheel,
    /// A rooted ISA hierarchy.
    Generalization,
    /// A rooted part-of hierarchy.
    Aggregation,
    /// A rooted instance-of hierarchy.
    InstanceOf,
}

impl ConceptKind {
    /// All kinds, in the paper's presentation order.
    pub const ALL: [ConceptKind; 4] = [
        ConceptKind::WagonWheel,
        ConceptKind::Generalization,
        ConceptKind::Aggregation,
        ConceptKind::InstanceOf,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ConceptKind::WagonWheel => "wagon wheel",
            ConceptKind::Generalization => "generalization hierarchy",
            ConceptKind::Aggregation => "aggregation hierarchy",
            ConceptKind::InstanceOf => "instance-of hierarchy",
        }
    }

    /// Machine-readable tag, used by the repository's op-log format.
    pub fn tag(self) -> &'static str {
        match self {
            ConceptKind::WagonWheel => "wagon_wheel",
            ConceptKind::Generalization => "generalization",
            ConceptKind::Aggregation => "aggregation",
            ConceptKind::InstanceOf => "instance_of",
        }
    }

    /// Parse a [`Self::tag`].
    pub fn from_tag(tag: &str) -> Option<ConceptKind> {
        ConceptKind::ALL.iter().copied().find(|k| k.tag() == tag)
    }
}

impl fmt::Display for ConceptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One concept schema: a typed view over a schema graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConceptSchema {
    /// Which concept schema type this is.
    pub kind: ConceptKind,
    /// The focal point (wagon wheel) or root (hierarchies).
    pub focal: TypeId,
    /// Display name, e.g. `wagon wheel: CourseOffering`.
    pub name: String,
    /// Member object types.
    pub types: BTreeSet<TypeId>,
    /// Member attributes.
    pub attrs: BTreeSet<AttrId>,
    /// Member relationships.
    pub rels: BTreeSet<RelId>,
    /// Member operations.
    pub ops: BTreeSet<OpId>,
    /// Member part-of / instance-of links.
    pub links: BTreeSet<LinkId>,
    /// Member generalization edges, as `(subtype, supertype)`.
    pub gen_edges: BTreeSet<(TypeId, TypeId)>,
}

impl ConceptSchema {
    /// Create an empty concept schema of `kind` focused on `focal`.
    pub fn new(kind: ConceptKind, focal: TypeId, focal_name: &str) -> Self {
        ConceptSchema {
            kind,
            focal,
            name: format!("{}: {}", kind.name(), focal_name),
            types: BTreeSet::from([focal]),
            attrs: BTreeSet::new(),
            rels: BTreeSet::new(),
            ops: BTreeSet::new(),
            links: BTreeSet::new(),
            gen_edges: BTreeSet::new(),
        }
    }

    /// Number of elements of all kinds in this view.
    pub fn element_count(&self) -> usize {
        self.types.len()
            + self.attrs.len()
            + self.rels.len()
            + self.ops.len()
            + self.links.len()
            + self.gen_edges.len()
    }

    /// Render the view for the designer: focal point first, then each spoke
    /// / hierarchy member, using names from `g`.
    pub fn describe(&self, g: &SchemaGraph) -> String {
        let mut out = String::new();
        out.push_str(&self.name);
        out.push('\n');
        for &t in &self.types {
            if let Some(node) = g.try_ty(t) {
                out.push_str("  type ");
                out.push_str(&node.name);
                if t == self.focal {
                    out.push_str(" (focal)");
                }
                out.push('\n');
            }
        }
        for &a in &self.attrs {
            if let Some(attr) = g.try_attr(a) {
                out.push_str(&format!(
                    "  attribute {}::{}\n",
                    g.type_name(attr.owner),
                    attr.name
                ));
            }
        }
        for &r in &self.rels {
            if let Some(rel) = g.try_rel(r) {
                out.push_str(&format!(
                    "  relationship {}::{} <-> {}::{}\n",
                    g.type_name(rel.ends[0].owner),
                    rel.ends[0].path,
                    g.type_name(rel.ends[1].owner),
                    rel.ends[1].path
                ));
            }
        }
        for &o in &self.ops {
            if let Some(op) = g.try_op(o) {
                out.push_str(&format!(
                    "  operation {}::{}\n",
                    g.type_name(op.owner),
                    op.op.name
                ));
            }
        }
        for &l in &self.links {
            if let Some(link) = g.try_link(l) {
                out.push_str(&format!(
                    "  {} {}::{} -> {}::{}\n",
                    link.kind,
                    g.type_name(link.parent),
                    link.parent_path,
                    g.type_name(link.child),
                    link.child_path
                ));
            }
        }
        for &(sub, sup) in &self.gen_edges {
            if g.try_ty(sub).is_some() && g.try_ty(sup).is_some() {
                out.push_str(&format!(
                    "  isa {} : {}\n",
                    g.type_name(sub),
                    g.type_name(sup)
                ));
            }
        }
        out
    }

    /// Drop elements whose referents no longer exist in `g` (after deletions
    /// made from other concept schemas). Returns how many were dropped.
    pub fn prune_dead(&mut self, g: &SchemaGraph) -> usize {
        let before = self.element_count();
        self.types.retain(|&t| g.try_ty(t).is_some());
        self.attrs.retain(|&a| g.try_attr(a).is_some());
        self.rels.retain(|&r| g.try_rel(r).is_some());
        self.ops.retain(|&o| g.try_op(o).is_some());
        self.links.retain(|&l| g.try_link(l).is_some());
        self.gen_edges.retain(|&(sub, sup)| {
            g.try_ty(sub).is_some()
                && g.try_ty(sup).is_some()
                && g.ty(sub).supertypes.contains(&sup)
        });
        before - self.element_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::SchemaGraph;
    use sws_odl::DomainType;

    #[test]
    fn kind_names() {
        assert_eq!(ConceptKind::WagonWheel.to_string(), "wagon wheel");
        assert_eq!(ConceptKind::ALL.len(), 4);
    }

    #[test]
    fn describe_and_prune() {
        let mut g = SchemaGraph::new("t");
        let a = g.add_type("A").unwrap();
        let x = g.add_attribute(a, "x", DomainType::Long, None).unwrap();
        let mut cs = ConceptSchema::new(ConceptKind::WagonWheel, a, "A");
        cs.attrs.insert(x);
        assert_eq!(cs.element_count(), 2);
        let text = cs.describe(&g);
        assert!(text.contains("type A (focal)"));
        assert!(text.contains("attribute A::x"));
        g.remove_attribute(x).unwrap();
        assert_eq!(cs.prune_dead(&g), 1);
        assert_eq!(cs.element_count(), 1);
    }
}
