//! Algorithmic decomposition of a schema into concept schemas (paper
//! activity 3) and single-root normalization (§3.2).

use super::{ConceptKind, ConceptSchema};
use crate::parallel;
use sws_model::{query, SchemaGraph, TypeId};
use sws_odl::HierKind;

/// The result of decomposing a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// One wagon wheel per object type, in type order.
    pub wagon_wheels: Vec<ConceptSchema>,
    /// One concept schema per generalization component.
    pub generalizations: Vec<ConceptSchema>,
    /// One concept schema per part-of root.
    pub aggregations: Vec<ConceptSchema>,
    /// One concept schema per instance-of root.
    pub instance_ofs: Vec<ConceptSchema>,
}

impl Decomposition {
    /// All concept schemas, wagon wheels first.
    pub fn all(&self) -> impl Iterator<Item = &ConceptSchema> {
        self.wagon_wheels
            .iter()
            .chain(&self.generalizations)
            .chain(&self.aggregations)
            .chain(&self.instance_ofs)
    }

    /// Total number of concept schemas.
    pub fn len(&self) -> usize {
        self.wagon_wheels.len()
            + self.generalizations.len()
            + self.aggregations.len()
            + self.instance_ofs.len()
    }

    /// True if the schema was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Find a wagon wheel by its focal type.
    pub fn wagon_wheel_of(&self, focal: TypeId) -> Option<&ConceptSchema> {
        self.wagon_wheels.iter().find(|cs| cs.focal == focal)
    }
}

/// Decompose `g` into its concept schemas. Does not mutate the graph; see
/// [`normalize_single_root`] for the multi-root transformation.
///
/// Each kind of concept schema is discovered by independent closure walks
/// (one per seed: type, generalization component, hierarchy root), so the
/// walks fan out across worker threads via [`crate::parallel::map`]. The
/// merge is deterministic — results come back in seed order — so the
/// decomposition is identical at every thread count.
pub fn decompose(g: &SchemaGraph) -> Decomposition {
    let mut sp = sws_trace::span!("core.decompose", types = g.type_count());
    let mut ww_span = sws_trace::span("core.decompose.wagon_wheels");
    let ids: Vec<TypeId> = g.types().map(|(id, _)| id).collect();
    let wagon_wheels = parallel::map(&ids, |_, &id| wagon_wheel(g, id));
    ww_span.record("schemas", wagon_wheels.len());
    ww_span.record("elements", total_elements(&wagon_wheels));
    drop(ww_span);

    let mut gen_span = sws_trace::span("core.decompose.generalizations");
    let components = query::generalization_components(g);
    let generalizations = parallel::map(&components, |_, component| {
        let roots = query::component_roots(g, component);
        // Name the hierarchy after its root; with multiple roots (a schema
        // not yet normalized) fall back to the smallest member.
        let focal = roots.first().copied().unwrap_or(component[0]);
        let mut cs = ConceptSchema::new(ConceptKind::Generalization, focal, g.type_name(focal));
        for &t in component {
            cs.types.insert(t);
            for &sup in &g.ty(t).supertypes {
                cs.gen_edges.insert((t, sup));
            }
        }
        cs
    });
    gen_span.record("schemas", generalizations.len());
    gen_span.record("elements", total_elements(&generalizations));
    drop(gen_span);

    let aggregations = hier_decompose(g, HierKind::PartOf, ConceptKind::Aggregation);
    let instance_ofs = hier_decompose(g, HierKind::InstanceOf, ConceptKind::InstanceOf);

    let d = Decomposition {
        wagon_wheels,
        generalizations,
        aggregations,
        instance_ofs,
    };
    sp.record("concept_schemas", d.len());
    d
}

/// Total element count (types, members, edges) across concept schemas —
/// the "schema size" figure the decomposition spans report.
fn total_elements(schemas: &[ConceptSchema]) -> usize {
    schemas
        .iter()
        .map(|cs| {
            cs.types.len()
                + cs.attrs.len()
                + cs.ops.len()
                + cs.rels.len()
                + cs.links.len()
                + cs.gen_edges.len()
        })
        .sum()
}

/// One wagon wheel: the focal type and its distance-one neighbourhood.
fn wagon_wheel(g: &SchemaGraph, id: TypeId) -> ConceptSchema {
    let node = g.ty(id);
    let mut cs = ConceptSchema::new(ConceptKind::WagonWheel, id, &node.name);
    // Spokes: attributes and operations of the focal point.
    cs.attrs.extend(node.attrs.iter().copied());
    cs.ops.extend(node.ops.iter().copied());
    // Relationships of distance one, bringing in the opposite type.
    for &(r, e) in &node.rel_ends {
        cs.rels.insert(r);
        cs.types.insert(g.rel(r).other(e).owner);
    }
    // Hierarchy links of distance one.
    for &l in node.parent_links.iter().chain(&node.child_links) {
        let link = g.link(l);
        cs.links.insert(l);
        cs.types.insert(link.parent);
        cs.types.insert(link.child);
    }
    // Generalization edges of distance one.
    for &sup in &node.supertypes {
        cs.gen_edges.insert((id, sup));
        cs.types.insert(sup);
    }
    for &sub in &node.subtypes {
        cs.gen_edges.insert((sub, id));
        cs.types.insert(sub);
    }
    cs
}

fn hier_decompose(g: &SchemaGraph, kind: HierKind, concept: ConceptKind) -> Vec<ConceptSchema> {
    let mut sp = sws_trace::span!("core.decompose.hierarchies", kind = hier_tag(kind));
    let roots = query::hier_roots(g, kind);
    let out = parallel::map(&roots, |_, &root| {
        let (types, links) = query::hier_closure(g, kind, root);
        let mut cs = ConceptSchema::new(concept, root, g.type_name(root));
        cs.types.extend(types);
        cs.links.extend(links);
        cs
    });
    sp.record("schemas", out.len());
    sp.record("elements", total_elements(&out));
    out
}

fn hier_tag(kind: HierKind) -> &'static str {
    match kind {
        HierKind::PartOf => "part_of",
        HierKind::InstanceOf => "instance_of",
    }
}

/// Normalize every multi-root generalization component by inserting an
/// abstract supertype above its roots (paper §3.2: "any hierarchy with two
/// or more roots can be easily transformed by creating an abstract supertype
/// of the multiple roots"). Returns the names of the created root types.
pub fn normalize_single_root(g: &mut SchemaGraph) -> Vec<String> {
    let mut created = Vec::new();
    let components = query::generalization_components(g);
    for component in components {
        let roots = query::component_roots(g, &component);
        if roots.len() < 2 {
            continue;
        }
        // Synthesize a fresh, unique abstract root name.
        let base: String = roots
            .iter()
            .map(|&r| g.type_name(r).to_string())
            .collect::<Vec<_>>()[..2]
            .join("Or");
        let mut name = format!("Abstract{base}");
        let mut n = 1;
        while g.type_id(&name).is_some() {
            n += 1;
            name = format!("Abstract{base}{n}");
        }
        let root = g.add_type(&name).expect("fresh name");
        g.set_abstract(root, true).expect("live");
        for r in roots {
            g.add_supertype(r, root).expect("acyclic by construction");
        }
        created.push(name);
    }
    created
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::schema_to_graph;
    use sws_odl::parse_schema;

    /// The course-offering neighbourhood of Fig. 3 plus the student
    /// hierarchy of Fig. 4.
    const UNI: &str = r#"
    schema Uni {
        interface Course {
            attribute string number;
            instance_of set<CourseOffering> offerings inverse CourseOffering::course;
        }
        interface CourseOffering {
            attribute string(16) room;
            instance_of Course course inverse Course::offerings;
            relationship set<Student> enrolls inverse Student::enrolled_in;
            relationship TimeSlot offered_during inverse TimeSlot::offerings;
        }
        interface TimeSlot {
            relationship set<CourseOffering> offerings inverse CourseOffering::offered_during;
        }
        interface Student {
            relationship set<CourseOffering> enrolled_in inverse CourseOffering::enrolls;
        }
        interface Undergraduate : Student { }
        interface Graduate : Student { }
        interface Masters : Graduate { }
        interface PhD : Graduate { }
        interface House {
            part_of set<Roof> roofs inverse Roof::house;
        }
        interface Roof {
            part_of House house inverse House::roofs;
            part_of set<Shingle> shingles inverse Shingle::roof;
        }
        interface Shingle {
            part_of Roof roof inverse Roof::shingles;
        }
    }"#;

    fn uni() -> SchemaGraph {
        schema_to_graph(&parse_schema(UNI).unwrap()).unwrap()
    }

    #[test]
    fn one_wagon_wheel_per_type() {
        let g = uni();
        let d = decompose(&g);
        assert_eq!(d.wagon_wheels.len(), g.type_count());
        for cs in &d.wagon_wheels {
            assert!(cs.types.contains(&cs.focal));
        }
    }

    #[test]
    fn wagon_wheel_contents_match_figure3() {
        let g = uni();
        let d = decompose(&g);
        let co = g.type_id("CourseOffering").unwrap();
        let ww = d.wagon_wheel_of(co).unwrap();
        // Spokes: Course (instance-of), Student (enrolls), TimeSlot.
        let names: Vec<&str> = ww.types.iter().map(|&t| g.type_name(t)).collect();
        assert!(names.contains(&"Course"));
        assert!(names.contains(&"Student"));
        assert!(names.contains(&"TimeSlot"));
        assert_eq!(ww.attrs.len(), 1);
        assert_eq!(ww.rels.len(), 2);
        assert_eq!(ww.links.len(), 1);
    }

    #[test]
    fn generalization_component_rooted_at_student() {
        let g = uni();
        let d = decompose(&g);
        assert_eq!(d.generalizations.len(), 1);
        let gen = &d.generalizations[0];
        assert_eq!(gen.focal, g.type_id("Student").unwrap());
        assert_eq!(gen.types.len(), 5);
        assert_eq!(gen.gen_edges.len(), 4);
    }

    #[test]
    fn aggregation_rooted_at_house() {
        let g = uni();
        let d = decompose(&g);
        assert_eq!(d.aggregations.len(), 1);
        let agg = &d.aggregations[0];
        assert_eq!(agg.focal, g.type_id("House").unwrap());
        assert_eq!(agg.types.len(), 3);
        assert_eq!(agg.links.len(), 2);
    }

    #[test]
    fn instance_of_rooted_at_course() {
        let g = uni();
        let d = decompose(&g);
        assert_eq!(d.instance_ofs.len(), 1);
        assert_eq!(d.instance_ofs[0].focal, g.type_id("Course").unwrap());
    }

    #[test]
    fn union_of_wagon_wheels_covers_schema() {
        // §3.3.1: "The union of all the initial concept schemas gives the
        // original shrink wrap schema."
        let g = uni();
        let d = decompose(&g);
        let mut types = std::collections::BTreeSet::new();
        let mut attrs = std::collections::BTreeSet::new();
        let mut rels = std::collections::BTreeSet::new();
        let mut ops = std::collections::BTreeSet::new();
        let mut links = std::collections::BTreeSet::new();
        let mut edges = std::collections::BTreeSet::new();
        for cs in &d.wagon_wheels {
            types.extend(cs.types.iter().copied());
            attrs.extend(cs.attrs.iter().copied());
            rels.extend(cs.rels.iter().copied());
            ops.extend(cs.ops.iter().copied());
            links.extend(cs.links.iter().copied());
            edges.extend(cs.gen_edges.iter().copied());
        }
        assert_eq!(types.len(), g.type_count());
        assert_eq!(attrs.len(), g.attrs().count());
        assert_eq!(rels.len(), g.rels().count());
        assert_eq!(ops.len(), g.ops().count());
        assert_eq!(links.len(), g.links().count());
        let total_edges: usize = g.types().map(|(_, n)| n.supertypes.len()).sum();
        assert_eq!(edges.len(), total_edges);
    }

    #[test]
    fn normalize_multi_root_hierarchy() {
        let src = r#"
        interface A { }
        interface B { }
        interface C : A, B { }"#;
        let mut g = schema_to_graph(&parse_schema(src).unwrap()).unwrap();
        let created = normalize_single_root(&mut g);
        assert_eq!(created.len(), 1);
        let root = g.type_id(&created[0]).unwrap();
        assert!(g.ty(root).is_abstract);
        // Now the component has a single root.
        let components = query::generalization_components(&g);
        assert_eq!(components.len(), 1);
        assert_eq!(query::component_roots(&g, &components[0]), vec![root]);
        // Idempotent.
        assert!(normalize_single_root(&mut g).is_empty());
    }

    #[test]
    fn normalize_handles_name_collisions() {
        let src = r#"
        interface A { }
        interface B { }
        interface C : A, B { }
        interface AbstractAOrB { }"#;
        let mut g = schema_to_graph(&parse_schema(src).unwrap()).unwrap();
        let created = normalize_single_root(&mut g);
        assert_eq!(created.len(), 1);
        assert_ne!(created[0], "AbstractAOrB");
    }

    #[test]
    fn empty_schema_decomposes_empty() {
        let g = SchemaGraph::new("empty");
        let d = decompose(&g);
        assert!(d.is_empty());
        assert_eq!(d.all().count(), 0);
    }
}
