//! The explanation facility (paper §5, listed as a possible extension):
//! "An explanation facility for the existing concept schemas can be created
//! to explain the information represented in the concept schema to the
//! designer."
//!
//! [`explain`] renders a concept schema as prose, one sentence per fact,
//! in the style of the paper's own narration of its figures ("a
//! Non-thesis masters student object inherits the attributes and
//! operations defined on a Graduate student object type").

use crate::concept::{ConceptKind, ConceptSchema};
use sws_model::{query, SchemaGraph};
use sws_odl::Cardinality;

/// Explain a concept schema in prose.
pub fn explain(cs: &ConceptSchema, g: &SchemaGraph) -> String {
    match cs.kind {
        ConceptKind::WagonWheel => explain_wagon_wheel(cs, g),
        ConceptKind::Generalization => explain_generalization(cs, g),
        ConceptKind::Aggregation => explain_hierarchy(cs, g, "consists of", "is a component of"),
        ConceptKind::InstanceOf => explain_hierarchy(
            cs,
            g,
            "is the generic specification for",
            "is an instance of",
        ),
    }
}

fn explain_wagon_wheel(cs: &ConceptSchema, g: &SchemaGraph) -> String {
    let Some(node) = g.try_ty(cs.focal) else {
        return format!("The focal point of `{}` no longer exists.", cs.name);
    };
    let name = &node.name;
    let mut out = format!(
        "This concept schema presents one point of view centred on the object type `{name}`.\n"
    );
    if let Some(extent) = &node.extent {
        out.push_str(&format!(
            "All `{name}` objects are collected in the extent `{extent}`.\n"
        ));
    }
    if !node.keys.is_empty() {
        let keys: Vec<String> = node.keys.iter().map(|k| format!("`{k}`")).collect();
        out.push_str(&format!(
            "A `{name}` is uniquely identified by {}.\n",
            keys.join(" or ")
        ));
    }
    if !node.attrs.is_empty() {
        let attrs: Vec<String> = node
            .attrs
            .iter()
            .map(|&a| {
                let attr = g.attr(a);
                format!("`{}` ({})", attr.name, attr.ty)
            })
            .collect();
        out.push_str(&format!(
            "It carries the attributes {}.\n",
            attrs.join(", ")
        ));
    }
    for &(r, e) in &node.rel_ends {
        let rel = g.rel(r);
        let mine = rel.end(e);
        let other = rel.other(e);
        let target = g.type_name(other.owner);
        match mine.cardinality {
            Cardinality::One => out.push_str(&format!(
                "Through `{}` it relates to one `{target}`.\n",
                mine.path
            )),
            Cardinality::Many(kind) => out.push_str(&format!(
                "Through `{}` it relates to a {kind} of `{target}` objects.\n",
                mine.path
            )),
        }
    }
    for &l in &node.parent_links {
        let link = g.link(l);
        let verb = match link.kind {
            sws_odl::HierKind::PartOf => "consists of",
            sws_odl::HierKind::InstanceOf => "is the generic specification for",
        };
        out.push_str(&format!(
            "It {verb} `{}` objects (via `{}`).\n",
            g.type_name(link.child),
            link.parent_path
        ));
    }
    for &l in &node.child_links {
        let link = g.link(l);
        let verb = match link.kind {
            sws_odl::HierKind::PartOf => "is a component of",
            sws_odl::HierKind::InstanceOf => "is an instance of",
        };
        out.push_str(&format!(
            "It {verb} a `{}` (via `{}`).\n",
            g.type_name(link.parent),
            link.child_path
        ));
    }
    for &sup in &node.supertypes {
        out.push_str(&format!(
            "Every `{name}` is a `{}` and inherits its attributes and operations.\n",
            g.type_name(sup)
        ));
    }
    for &sub in &node.subtypes {
        out.push_str(&format!(
            "`{}` is a specialization of `{name}`.\n",
            g.type_name(sub)
        ));
    }
    for &o in &node.ops {
        let op = &g.op(o).op;
        out.push_str(&format!(
            "It offers the operation `{}`, returning {}.\n",
            op.name, op.return_type
        ));
    }
    out
}

fn explain_generalization(cs: &ConceptSchema, g: &SchemaGraph) -> String {
    let root = g.type_name(cs.focal);
    let mut out = format!(
        "This generalization hierarchy is rooted at `{root}` and shows the inheritance paths \
         among {} object types, apart from their other attributes and relationships.\n",
        cs.types.len()
    );
    for &(sub, sup) in &cs.gen_edges {
        if g.try_ty(sub).is_none() || g.try_ty(sup).is_none() {
            continue;
        }
        let inherited = query::visible_members(g, sup).len();
        out.push_str(&format!(
            "A `{}` is a `{}`{}.\n",
            g.type_name(sub),
            g.type_name(sup),
            if inherited > 0 {
                format!(", inheriting {inherited} member(s) through it")
            } else {
                String::new()
            }
        ));
    }
    out
}

fn explain_hierarchy(
    cs: &ConceptSchema,
    g: &SchemaGraph,
    parent_verb: &str,
    child_verb: &str,
) -> String {
    let root = g.type_name(cs.focal);
    let mut out = format!(
        "This {} is rooted at `{root}` and spans {} object types.\n",
        cs.kind,
        cs.types.len()
    );
    for &l in &cs.links {
        let Some(link) = g.try_link(l) else { continue };
        out.push_str(&format!(
            "Each `{}` {parent_verb} a {} of `{}` objects; each `{}` {child_verb} one `{}`.\n",
            g.type_name(link.parent),
            link.collection,
            g.type_name(link.child),
            g.type_name(link.child),
            g.type_name(link.parent),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::decompose;
    use sws_model::schema_to_graph;
    use sws_odl::parse_schema;

    fn graph(src: &str) -> SchemaGraph {
        schema_to_graph(&parse_schema(src).unwrap()).unwrap()
    }

    #[test]
    fn wagon_wheel_explanation_covers_spokes() {
        let g = graph(
            r#"
            interface Course {
                extent courses;
                attribute string(16) number;
                keys number;
                instance_of set<Offering> offerings inverse Offering::course;
                void archive();
            }
            interface Offering {
                instance_of Course course inverse Course::offerings;
                relationship set<Student> enrolls inverse Student::enrolled_in;
            }
            interface Student {
                relationship set<Offering> enrolled_in inverse Offering::enrolls;
            }
            "#,
        );
        let d = decompose(&g);
        let course = d.wagon_wheel_of(g.type_id("Course").unwrap()).unwrap();
        let text = explain(course, &g);
        assert!(text.contains("centred on the object type `Course`"));
        assert!(text.contains("extent `courses`"));
        assert!(text.contains("uniquely identified by `number`"));
        assert!(text.contains("generic specification for `Offering`"));
        assert!(text.contains("operation `archive`"));

        let offering = d.wagon_wheel_of(g.type_id("Offering").unwrap()).unwrap();
        let text = explain(offering, &g);
        assert!(text.contains("is an instance of a `Course`"));
        assert!(text.contains("relates to a set of `Student` objects"));
    }

    #[test]
    fn generalization_explanation_mentions_inheritance() {
        let g = graph(
            "interface Student { attribute string name; } \
             interface Graduate : Student { }",
        );
        let d = decompose(&g);
        let text = explain(&d.generalizations[0], &g);
        assert!(text.contains("rooted at `Student`"));
        assert!(text.contains("A `Graduate` is a `Student`, inheriting 1 member(s)"));
    }

    #[test]
    fn aggregation_explanation_uses_part_language() {
        let g = graph(
            "interface House { part_of set<Wall> walls inverse Wall::house; } \
             interface Wall { part_of House house inverse House::walls; }",
        );
        let d = decompose(&g);
        let text = explain(&d.aggregations[0], &g);
        assert!(text.contains("Each `House` consists of a set of `Wall` objects"));
        assert!(text.contains("each `Wall` is a component of one `House`"));
    }

    #[test]
    fn stale_view_explained_gracefully() {
        let mut g = graph("interface A { }");
        let d = decompose(&g);
        let ww = d.wagon_wheels[0].clone();
        g.remove_type(g.type_id("A").unwrap(), Default::default())
            .unwrap();
        let text = explain(&ww, &g);
        assert!(text.contains("no longer exists"));
    }
}
