//! The paper's primary contribution: shrink-wrap-schema reuse through
//! concept schemas and restricted schema-modification operations.
//!
//! A **shrink wrap schema** is a well-crafted, complete, global schema for an
//! application area. This crate implements the machinery the paper builds on
//! top of one:
//!
//! * [`concept`] — the four **concept schema types** (wagon wheel,
//!   generalization hierarchy, aggregation hierarchy, instance-of hierarchy)
//!   and the algorithmic decomposition of a schema into them (§3.3),
//! * [`ops`] — the complete set of **schema modification operations** from
//!   Appendix A, the per-concept-schema **permission matrix** (Table 1), the
//!   ODL-candidate **coverage tables** (Tables 2–3), and op-script synthesis
//!   from a schema diff (the §3.5 completeness construction),
//! * [`oplang`] — the textual **modification language** (Appendix A BNF):
//!   parser and printer,
//! * [`constraints`] — per-operation preconditions, including the paper's
//!   *semantic stability* rule (moves only within the generalization
//!   hierarchy established by the shrink wrap schema),
//! * [`workspace`] — the design workspace: the integrated, customized user
//!   schema, the operation log, and the apply pipeline
//!   (permission → constraints → mutation → propagation → feedback),
//! * [`impact`] and [`feedback`] — impact reports and cautionary feedback
//!   (activities 9–11),
//! * [`consistency`] — consistency checks over the customized schema,
//!   sharded across worker threads by [`parallel`] with a determinism
//!   guarantee (thread count never changes a report),
//! * [`mapping`] — the semantic correspondence between shrink wrap and
//!   custom schema (activity 10).
#![forbid(unsafe_code)]

pub mod advice;
pub mod aliases;
pub mod concept;
pub mod consistency;
pub mod constraints;
pub mod explain;
pub mod feedback;
pub mod impact;
pub mod interop;
pub mod mapping;
pub mod oplang;
pub mod ops;
pub mod parallel;
pub mod report;
pub mod workspace;

pub use advice::{advise, Suggestion};
pub use aliases::{AliasError, AliasTable};
pub use concept::{decompose, ConceptKind, ConceptSchema, Decomposition};
pub use consistency::{
    check_consistency, ConsistencyReport, ConsistencyState, CrossIssue, Severity,
};
pub use constraints::{
    check_preconditions, check_preconditions_cached, check_preconditions_view, ConstraintCategory,
    ConstraintViolation,
};
pub use explain::explain;
pub use feedback::Feedback;
pub use impact::{DirtySet, ImpactEntry, ImpactReport};
pub use interop::{common_objects, CommonObject, InteropSummary};
pub use mapping::{Construct, Disposition, MapEntry, Mapping};
pub use oplang::{parse_script, parse_statement, print_op};
pub use ops::{ModOp, OpError, OpKind};
pub use report::DesignReport;
pub use workspace::{AppliedOp, Workspace};
