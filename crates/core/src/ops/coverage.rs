//! Coverage of the ODL candidates for modification (paper §3.5, Tables
//! 2–3).
//!
//! The paper enumerates every construct expressible in (extended) ODL and
//! shows which operation adds, deletes, and modifies it. Addition and
//! deletion cover **every** candidate; modification covers everything except
//! *names*, which are immutable by the name-equivalence assumption.

use super::OpKind;

/// One ODL candidate for modification: a row of Tables 2–3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OdlCandidate {
    /// The row group (e.g. `"Relationship"`).
    pub group: &'static str,
    /// The candidate construct (e.g. `"Target type"`).
    pub item: &'static str,
}

impl OdlCandidate {
    const fn new(group: &'static str, item: &'static str) -> Self {
        OdlCandidate { group, item }
    }

    /// True if this candidate is a *name* (excluded from modification).
    pub fn is_name(&self) -> bool {
        self.item == "Type name"
            || self.item == "Name"
            || self.item == "Traversal path name"
            || self.item == "Inverse path name"
    }
}

/// Every ODL candidate, in the paper's table order.
pub const CANDIDATES: &[OdlCandidate] = &[
    OdlCandidate::new("Interface Definition", "Type name"),
    OdlCandidate::new("Type Properties", "Supertype (ISA)"),
    OdlCandidate::new("Type Properties", "Extent name"),
    OdlCandidate::new("Type Properties", "Key list"),
    OdlCandidate::new("Attribute", "Type"),
    OdlCandidate::new("Attribute", "Size"),
    OdlCandidate::new("Attribute", "Name"),
    OdlCandidate::new("Relationship", "Target type"),
    OdlCandidate::new("Relationship", "Traversal path name"),
    OdlCandidate::new("Relationship", "Inverse path name"),
    OdlCandidate::new("Relationship", "One way cardinality"),
    OdlCandidate::new("Relationship", "Order by list"),
    OdlCandidate::new("Operation", "Name"),
    OdlCandidate::new("Operation", "Return type"),
    OdlCandidate::new("Operation", "Argument list"),
    OdlCandidate::new("Operation", "Exceptions raised"),
    OdlCandidate::new("Part-of Relationship", "Target type"),
    OdlCandidate::new("Part-of Relationship", "Traversal path name"),
    OdlCandidate::new("Part-of Relationship", "Inverse path name"),
    OdlCandidate::new("Part-of Relationship", "One way cardinality"),
    OdlCandidate::new("Part-of Relationship", "Order by list"),
    OdlCandidate::new("Instance-of Relationship", "Target type"),
    OdlCandidate::new("Instance-of Relationship", "Traversal path name"),
    OdlCandidate::new("Instance-of Relationship", "Inverse path name"),
    OdlCandidate::new("Instance-of Relationship", "One way cardinality"),
    OdlCandidate::new("Instance-of Relationship", "Order by list"),
];

/// Table 2: the operation that *adds* this candidate.
pub fn add_op_for(c: &OdlCandidate) -> OpKind {
    match c.group {
        "Interface Definition" => OpKind::AddTypeDefinition,
        "Type Properties" => match c.item {
            "Supertype (ISA)" => OpKind::AddSupertype,
            "Extent name" => OpKind::AddExtentName,
            _ => OpKind::AddKeyList,
        },
        "Attribute" => OpKind::AddAttribute,
        "Relationship" => OpKind::AddRelationship,
        "Operation" => OpKind::AddOperation,
        "Part-of Relationship" => OpKind::AddPartOfRelationship,
        _ => OpKind::AddInstanceOfRelationship,
    }
}

/// Table 2 (mirror): the operation that *deletes* this candidate. The paper
/// notes the deletion table is identical to the addition table with `add`
/// replaced by `delete`.
pub fn delete_op_for(c: &OdlCandidate) -> OpKind {
    match add_op_for(c) {
        OpKind::AddTypeDefinition => OpKind::DeleteTypeDefinition,
        OpKind::AddSupertype => OpKind::DeleteSupertype,
        OpKind::AddExtentName => OpKind::DeleteExtentName,
        OpKind::AddKeyList => OpKind::DeleteKeyList,
        OpKind::AddAttribute => OpKind::DeleteAttribute,
        OpKind::AddRelationship => OpKind::DeleteRelationship,
        OpKind::AddOperation => OpKind::DeleteOperation,
        OpKind::AddPartOfRelationship => OpKind::DeletePartOfRelationship,
        OpKind::AddInstanceOfRelationship => OpKind::DeleteInstanceOfRelationship,
        other => unreachable!("non-add op {other} in add table"),
    }
}

/// Table 3: the operation that *modifies* this candidate, or `None` for
/// names (disallowed to support name equivalence).
pub fn modify_op_for(c: &OdlCandidate) -> Option<OpKind> {
    if c.is_name() {
        return None;
    }
    Some(match (c.group, c.item) {
        ("Type Properties", "Supertype (ISA)") => OpKind::ModifySupertype,
        ("Type Properties", "Extent name") => OpKind::ModifyExtentName,
        ("Type Properties", "Key list") => OpKind::ModifyKeyList,
        ("Attribute", "Type") => OpKind::ModifyAttributeType,
        ("Attribute", "Size") => OpKind::ModifyAttributeSize,
        ("Relationship", "Target type") => OpKind::ModifyRelationshipTargetType,
        ("Relationship", "One way cardinality") => OpKind::ModifyRelationshipCardinality,
        ("Relationship", "Order by list") => OpKind::ModifyRelationshipOrderBy,
        ("Operation", "Return type") => OpKind::ModifyOperationReturnType,
        ("Operation", "Argument list") => OpKind::ModifyOperationArgList,
        ("Operation", "Exceptions raised") => OpKind::ModifyOperationExceptionsRaised,
        ("Part-of Relationship", "Target type") => OpKind::ModifyPartOfTargetType,
        ("Part-of Relationship", "One way cardinality") => OpKind::ModifyPartOfCardinality,
        ("Part-of Relationship", "Order by list") => OpKind::ModifyPartOfOrderBy,
        ("Instance-of Relationship", "Target type") => OpKind::ModifyInstanceOfTargetType,
        ("Instance-of Relationship", "One way cardinality") => OpKind::ModifyInstanceOfCardinality,
        ("Instance-of Relationship", "Order by list") => OpKind::ModifyInstanceOfOrderBy,
        other => unreachable!("unmapped candidate {other:?}"),
    })
}

/// Render Table 1 in the paper's own layout: one row per ODL candidate,
/// one column per concept schema type, cells showing which of
/// **A**(dd), **D**(elete), **M**(odify) are permitted there (Table 1's
/// letter notation).
pub fn render_table1_candidates() -> String {
    use crate::concept::ConceptKind;
    use crate::ops::PermissionMatrix;
    let matrix = PermissionMatrix::new();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:<24} {:^12} {:^16} {:^12} {:^12}\n",
        "group", "candidate", "wagon wheel", "generalization", "aggregation", "instance-of"
    ));
    for c in CANDIDATES {
        let cell = |context: ConceptKind| -> String {
            let mut letters = String::new();
            if matrix.allows(context, add_op_for(c)) {
                letters.push('A');
            }
            if matrix.allows(context, delete_op_for(c)) {
                letters.push('D');
            }
            if let Some(m) = modify_op_for(c) {
                if matrix.allows(context, m) {
                    letters.push('M');
                }
            }
            if letters.is_empty() {
                letters.push('.');
            }
            letters
        };
        out.push_str(&format!(
            "{:<26} {:<24} {:^12} {:^16} {:^12} {:^12}\n",
            c.group,
            c.item,
            cell(ConceptKind::WagonWheel),
            cell(ConceptKind::Generalization),
            cell(ConceptKind::Aggregation),
            cell(ConceptKind::InstanceOf),
        ));
    }
    out
}

/// Render Table 2 (addition + deletion columns).
pub fn render_table2() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:<24} {:<32} {:<32}\n",
        "group", "candidate", "addition operation", "deletion operation"
    ));
    for c in CANDIDATES {
        out.push_str(&format!(
            "{:<26} {:<24} {:<32} {:<32}\n",
            c.group,
            c.item,
            add_op_for(c).name(),
            delete_op_for(c).name()
        ));
    }
    out
}

/// Render Table 3 (modification column; `-` marks the name-equivalence
/// exclusions).
pub fn render_table3() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:<24} {:<36}\n",
        "group", "candidate", "modify operation"
    ));
    for c in CANDIDATES {
        out.push_str(&format!(
            "{:<26} {:<24} {:<36}\n",
            c.group,
            c.item,
            modify_op_for(c).map(|k| k.name()).unwrap_or("-")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_candidate_has_add_and_delete() {
        // §3.5: "any construct present in the shrink wrap schema can be
        // deleted and any new construct can be added."
        for c in CANDIDATES {
            let add = add_op_for(c);
            let del = delete_op_for(c);
            assert!(add.name().starts_with("add_"), "{c:?} -> {add}");
            assert!(del.name().starts_with("delete_"), "{c:?} -> {del}");
        }
    }

    #[test]
    fn only_names_lack_modify_operations() {
        for c in CANDIDATES {
            assert_eq!(modify_op_for(c).is_none(), c.is_name(), "{c:?}");
        }
    }

    #[test]
    fn name_exclusions_are_exactly_the_paper_rows() {
        let names: Vec<&str> = CANDIDATES
            .iter()
            .filter(|c| c.is_name())
            .map(|c| c.group)
            .collect();
        assert_eq!(
            names,
            vec![
                "Interface Definition",
                "Attribute",
                "Relationship",
                "Relationship",
                "Operation",
                "Part-of Relationship",
                "Part-of Relationship",
                "Instance-of Relationship",
                "Instance-of Relationship",
            ]
        );
    }

    #[test]
    fn candidate_count_matches_paper() {
        assert_eq!(CANDIDATES.len(), 26);
    }

    #[test]
    fn paper_layout_table1_renders_letters() {
        let table = render_table1_candidates();
        // Attributes: full ADM in the wagon wheel, nothing in hierarchies
        // except the move (which is per-attribute, not per-property, so it
        // does not appear in a candidate row).
        let attr_type_row = table
            .lines()
            .find(|l| l.contains("Attribute") && l.contains("Type"))
            .unwrap();
        assert!(attr_type_row.contains("ADM"), "{attr_type_row}");
        // Supertype: ADM in the generalization hierarchy only.
        let sup_row = table.lines().find(|l| l.contains("Supertype")).unwrap();
        assert!(sup_row.contains("ADM"), "{sup_row}");
        // Part-of target type: AD in the wagon wheel, ADM in aggregation.
        let po_row = table
            .lines()
            .find(|l| l.contains("Part-of Relationship") && l.contains("Target type"))
            .unwrap();
        assert!(po_row.contains("AD") && po_row.contains("ADM"), "{po_row}");
    }

    #[test]
    fn tables_render() {
        let t2 = render_table2();
        assert!(t2.contains("add_part_of_relationship"));
        assert!(t2.contains("delete_instance_of_relationship"));
        let t3 = render_table3();
        assert!(t3.contains("modify_relationship_target_type"));
        assert!(t3.lines().filter(|l| l.trim_end().ends_with('-')).count() >= 9);
    }
}
