//! Applying modification operations to a schema graph.
//!
//! [`apply_op`] assumes the preconditions of
//! [`crate::constraints::check_preconditions`] have been verified; the graph
//! still defends its own invariants, and any refusal surfaces as
//! [`OpError::Model`]. Cascading effects (the paper's propagation rules)
//! are collected in the returned [`ApplyOutcome`].

use super::{ModOp, OpError};
use sws_model::{graph::LinkSide, CascadeReport, RemoveTypeMode, SchemaGraph, TypeId};
use sws_odl::{Cardinality, CollectionKind, HierKind};

/// What applying one operation did beyond the requested change.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Cascaded removals / rewires / prunes (propagation rules).
    pub cascade: CascadeReport,
    /// Free-form notes about automatic adjustments (e.g. a size constraint
    /// cleared because the new domain does not admit one).
    pub notes: Vec<String>,
}

fn require(g: &SchemaGraph, name: &str) -> Result<TypeId, OpError> {
    g.require_type(name).map_err(OpError::from)
}

/// Apply `op` to `g`. On error the graph is unchanged for single-mutation
/// operations; compound operations (`modify_supertype`, `modify_key_list`)
/// are validated by the constraints layer first, so mid-way failure
/// indicates a bug rather than user error.
pub fn apply_op(g: &mut SchemaGraph, op: &ModOp) -> Result<ApplyOutcome, OpError> {
    let mut outcome = ApplyOutcome::default();
    match op {
        ModOp::AddTypeDefinition { ty } => {
            g.add_type(ty)?;
        }
        ModOp::DeleteTypeDefinition { ty } => {
            let id = require(g, ty)?;
            outcome.cascade = g.remove_type(id, RemoveTypeMode::RewireSubtypes)?;
        }
        ModOp::AddSupertype { ty, supertype } => {
            let sub = require(g, ty)?;
            let sup = require(g, supertype)?;
            g.add_supertype(sub, sup)?;
        }
        ModOp::DeleteSupertype { ty, supertype } => {
            let sub = require(g, ty)?;
            let sup = require(g, supertype)?;
            g.remove_supertype(sub, sup)?;
        }
        ModOp::ModifySupertype { ty, old, new } => {
            let sub = require(g, ty)?;
            for sup_name in old {
                let sup = require(g, sup_name)?;
                g.remove_supertype(sub, sup)?;
            }
            for sup_name in new {
                let sup = require(g, sup_name)?;
                g.add_supertype(sub, sup)?;
            }
        }
        ModOp::AddExtentName { ty, extent }
        | ModOp::ModifyExtentName {
            ty, new: extent, ..
        } => {
            let id = require(g, ty)?;
            g.set_extent(id, Some(extent.clone()))?;
        }
        ModOp::DeleteExtentName { ty, .. } => {
            let id = require(g, ty)?;
            g.set_extent(id, None)?;
        }
        ModOp::AddKeyList { ty, keys } => {
            let id = require(g, ty)?;
            for key in keys {
                g.add_key(id, key.clone())?;
            }
        }
        ModOp::DeleteKeyList { ty, keys } => {
            let id = require(g, ty)?;
            for key in keys {
                g.remove_key(id, key)?;
            }
        }
        ModOp::ModifyKeyList { ty, old, new } => {
            let id = require(g, ty)?;
            for key in old {
                g.remove_key(id, key)?;
            }
            for key in new {
                g.add_key(id, key.clone())?;
            }
        }
        ModOp::AddAttribute {
            ty,
            domain,
            size,
            name,
        } => {
            let id = require(g, ty)?;
            g.add_attribute(id, name, domain.clone(), *size)?;
        }
        ModOp::DeleteAttribute { ty, name } => {
            let id = require(g, ty)?;
            let aid = g
                .find_attr(id, name)
                .ok_or_else(|| missing(g, id, name, "attribute"))?;
            outcome.cascade = g.remove_attribute(aid)?;
        }
        ModOp::ModifyAttribute { ty, name, new_ty } => {
            let id = require(g, ty)?;
            let dest = require(g, new_ty)?;
            let aid = g
                .find_attr(id, name)
                .ok_or_else(|| missing(g, id, name, "attribute"))?;
            outcome.cascade = g.move_attribute(aid, dest)?;
        }
        ModOp::ModifyAttributeType { ty, name, new, .. } => {
            let id = require(g, ty)?;
            let aid = g
                .find_attr(id, name)
                .ok_or_else(|| missing(g, id, name, "attribute"))?;
            let had_size = g.attr(aid).size;
            g.set_attr_type(aid, new.clone())?;
            if had_size.is_some() && !new.admits_size() {
                g.set_attr_size(aid, None)?;
                outcome.notes.push(format!(
                    "size constraint of `{ty}::{name}` cleared: `{new}` does not admit one"
                ));
            }
        }
        ModOp::ModifyAttributeSize { ty, name, new, .. } => {
            let id = require(g, ty)?;
            let aid = g
                .find_attr(id, name)
                .ok_or_else(|| missing(g, id, name, "attribute"))?;
            g.set_attr_size(aid, *new)?;
        }
        ModOp::AddRelationship {
            ty,
            target,
            cardinality,
            path,
            inverse_path,
            order_by,
        } => {
            let a = require(g, ty)?;
            let b = require(g, target)?;
            // The inverse end starts single-valued; the designer can widen
            // it with modify_relationship_cardinality afterwards.
            g.add_relationship(
                a,
                path,
                *cardinality,
                order_by.clone(),
                b,
                inverse_path,
                Cardinality::One,
                Vec::new(),
            )?;
        }
        ModOp::DeleteRelationship { ty, path } => {
            let id = require(g, ty)?;
            let (rid, _) = g
                .find_rel_end(id, path)
                .ok_or_else(|| missing(g, id, path, "relationship"))?;
            outcome.cascade = g.remove_relationship(rid)?;
        }
        ModOp::ModifyRelationshipTargetType {
            ty,
            path,
            new_target,
            ..
        } => {
            let id = require(g, ty)?;
            let dest = require(g, new_target)?;
            let (rid, e) = g
                .find_rel_end(id, path)
                .ok_or_else(|| missing(g, id, path, "relationship"))?;
            g.retarget_rel_end(rid, 1 - e, dest)?;
        }
        ModOp::ModifyRelationshipCardinality { ty, path, new, .. } => {
            let id = require(g, ty)?;
            let (rid, e) = g
                .find_rel_end(id, path)
                .ok_or_else(|| missing(g, id, path, "relationship"))?;
            g.set_rel_cardinality(rid, e, *new)?;
        }
        ModOp::ModifyRelationshipOrderBy { ty, path, new, .. } => {
            let id = require(g, ty)?;
            let (rid, e) = g
                .find_rel_end(id, path)
                .ok_or_else(|| missing(g, id, path, "relationship"))?;
            g.set_rel_order_by(rid, e, new.clone())?;
        }
        ModOp::AddOperation {
            ty,
            return_type,
            name,
            args,
            raises,
        } => {
            let id = require(g, ty)?;
            g.add_operation(
                id,
                sws_odl::Operation {
                    name: name.clone(),
                    return_type: return_type.clone(),
                    args: args.clone(),
                    raises: raises.clone(),
                },
            )?;
        }
        ModOp::DeleteOperation { ty, name } => {
            let id = require(g, ty)?;
            let oid = g
                .find_op(id, name)
                .ok_or_else(|| missing(g, id, name, "operation"))?;
            outcome.cascade = g.remove_operation(oid)?;
        }
        ModOp::ModifyOperation { ty, name, new_ty } => {
            let id = require(g, ty)?;
            let dest = require(g, new_ty)?;
            let oid = g
                .find_op(id, name)
                .ok_or_else(|| missing(g, id, name, "operation"))?;
            g.move_operation(oid, dest)?;
        }
        ModOp::ModifyOperationReturnType { ty, name, new, .. } => {
            let id = require(g, ty)?;
            let oid = g
                .find_op(id, name)
                .ok_or_else(|| missing(g, id, name, "operation"))?;
            g.set_op_return(oid, new.clone())?;
        }
        ModOp::ModifyOperationArgList { ty, name, new, .. } => {
            let id = require(g, ty)?;
            let oid = g
                .find_op(id, name)
                .ok_or_else(|| missing(g, id, name, "operation"))?;
            g.set_op_args(oid, new.clone())?;
        }
        ModOp::ModifyOperationExceptionsRaised { ty, name, new, .. } => {
            let id = require(g, ty)?;
            let oid = g
                .find_op(id, name)
                .ok_or_else(|| missing(g, id, name, "operation"))?;
            g.set_op_raises(oid, new.clone())?;
        }
        ModOp::AddPartOfRelationship {
            ty,
            collection,
            target,
            path,
            inverse_path,
            order_by,
        } => {
            add_link(
                g,
                HierKind::PartOf,
                ty,
                *collection,
                target,
                path,
                inverse_path,
                order_by,
            )?;
        }
        ModOp::DeletePartOfRelationship { ty, path } => {
            outcome.cascade = delete_link(g, HierKind::PartOf, ty, path)?;
        }
        ModOp::ModifyPartOfTargetType {
            ty,
            path,
            new_target,
            ..
        } => {
            retarget_link(g, HierKind::PartOf, ty, path, new_target)?;
        }
        ModOp::ModifyPartOfCardinality { ty, path, new, .. } => {
            set_link_collection(g, HierKind::PartOf, ty, path, *new)?;
        }
        ModOp::ModifyPartOfOrderBy { ty, path, new, .. } => {
            set_link_order_by(g, HierKind::PartOf, ty, path, new.clone())?;
        }
        ModOp::AddInstanceOfRelationship {
            ty,
            collection,
            target,
            path,
            inverse_path,
            order_by,
        } => {
            add_link(
                g,
                HierKind::InstanceOf,
                ty,
                *collection,
                target,
                path,
                inverse_path,
                order_by,
            )?;
        }
        ModOp::DeleteInstanceOfRelationship { ty, path } => {
            outcome.cascade = delete_link(g, HierKind::InstanceOf, ty, path)?;
        }
        ModOp::ModifyInstanceOfTargetType {
            ty,
            path,
            new_target,
            ..
        } => {
            retarget_link(g, HierKind::InstanceOf, ty, path, new_target)?;
        }
        ModOp::ModifyInstanceOfCardinality { ty, path, new, .. } => {
            set_link_collection(g, HierKind::InstanceOf, ty, path, *new)?;
        }
        ModOp::ModifyInstanceOfOrderBy { ty, path, new, .. } => {
            set_link_order_by(g, HierKind::InstanceOf, ty, path, new.clone())?;
        }
    }
    Ok(outcome)
}

fn missing(g: &SchemaGraph, id: TypeId, member: &str, what: &'static str) -> OpError {
    OpError::Violations(vec![
        crate::constraints::ConstraintViolation::UnknownMember {
            ty: g.type_name(id).to_string(),
            member: member.to_string(),
            what,
        },
    ])
}

#[allow(clippy::too_many_arguments)]
fn add_link(
    g: &mut SchemaGraph,
    kind: HierKind,
    ty: &str,
    collection: Option<CollectionKind>,
    target: &str,
    path: &str,
    inverse_path: &str,
    order_by: &[String],
) -> Result<(), OpError> {
    let a = require(g, ty)?;
    let b = require(g, target)?;
    match collection {
        // To-parts / to-instance-entities form: `ty` is the parent.
        Some(kind_coll) => {
            g.add_link(kind, a, path, kind_coll, order_by.to_vec(), b, inverse_path)?;
        }
        // To-whole / to-generic-entity form: `ty` is the child; the parent
        // side starts as a set.
        None => {
            g.add_link(
                kind,
                b,
                inverse_path,
                CollectionKind::Set,
                Vec::new(),
                a,
                path,
            )?;
        }
    }
    Ok(())
}

fn delete_link(
    g: &mut SchemaGraph,
    kind: HierKind,
    ty: &str,
    path: &str,
) -> Result<CascadeReport, OpError> {
    let id = require(g, ty)?;
    let (lid, _) = g
        .find_link(kind, id, path)
        .ok_or_else(|| missing(g, id, path, kind.noun()))?;
    Ok(g.remove_link(lid)?)
}

fn retarget_link(
    g: &mut SchemaGraph,
    kind: HierKind,
    ty: &str,
    path: &str,
    new_target: &str,
) -> Result<(), OpError> {
    let id = require(g, ty)?;
    let dest = require(g, new_target)?;
    let (lid, side) = g
        .find_link(kind, id, path)
        .ok_or_else(|| missing(g, id, path, kind.noun()))?;
    // The path belongs to `ty`; its *target* is the opposite side.
    let opposite = match side {
        LinkSide::Parent => LinkSide::Child,
        LinkSide::Child => LinkSide::Parent,
    };
    g.retarget_link_end(lid, opposite, dest)?;
    Ok(())
}

fn set_link_collection(
    g: &mut SchemaGraph,
    kind: HierKind,
    ty: &str,
    path: &str,
    collection: CollectionKind,
) -> Result<(), OpError> {
    let id = require(g, ty)?;
    let (lid, _) = g
        .find_link(kind, id, path)
        .ok_or_else(|| missing(g, id, path, kind.noun()))?;
    g.set_link_collection(lid, collection)?;
    Ok(())
}

fn set_link_order_by(
    g: &mut SchemaGraph,
    kind: HierKind,
    ty: &str,
    path: &str,
    order_by: Vec<String>,
) -> Result<(), OpError> {
    let id = require(g, ty)?;
    let (lid, _) = g
        .find_link(kind, id, path)
        .ok_or_else(|| missing(g, id, path, kind.noun()))?;
    g.set_link_order_by(lid, order_by)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::schema_to_graph;
    use sws_odl::{parse_schema, DomainType};

    fn dept() -> SchemaGraph {
        let src = r#"
        schema Dept {
            interface Person { attribute string name; }
            interface Employee : Person {
                relationship Department works_in_a inverse Department::has;
            }
            interface Department {
                relationship set<Employee> has inverse Employee::works_in_a;
            }
        }"#;
        schema_to_graph(&parse_schema(src).unwrap()).unwrap()
    }

    #[test]
    fn figure8_modify_relationship_target_type() {
        // The paper's §3.4 example, end to end: after
        // modify_relationship_target_type(Department, has, Employee, Person)
        // the Department side targets Person and works_in_a lives on Person.
        let mut g = dept();
        apply_op(
            &mut g,
            &ModOp::ModifyRelationshipTargetType {
                ty: "Department".into(),
                path: "has".into(),
                old_target: "Employee".into(),
                new_target: "Person".into(),
            },
        )
        .unwrap();
        let person = g.type_id("Person").unwrap();
        let employee = g.type_id("Employee").unwrap();
        assert!(g.find_rel_end(person, "works_in_a").is_some());
        assert!(g.find_rel_end(employee, "works_in_a").is_none());
    }

    #[test]
    fn add_and_delete_type() {
        let mut g = dept();
        apply_op(
            &mut g,
            &ModOp::AddTypeDefinition {
                ty: "Student".into(),
            },
        )
        .unwrap();
        assert!(g.type_id("Student").is_some());
        let out = apply_op(
            &mut g,
            &ModOp::DeleteTypeDefinition {
                ty: "Employee".into(),
            },
        )
        .unwrap();
        assert!(g.type_id("Employee").is_none());
        // The works_in_a relationship cascaded away.
        assert_eq!(out.cascade.removed_rels.len(), 1);
        assert_eq!(g.rels().count(), 0);
    }

    #[test]
    fn modify_attribute_type_clears_inadmissible_size() {
        let mut g = dept();
        let person = g.type_id("Person").unwrap();
        let aid = g.find_attr(person, "name").unwrap();
        g.set_attr_size(aid, Some(32)).unwrap();
        let out = apply_op(
            &mut g,
            &ModOp::ModifyAttributeType {
                ty: "Person".into(),
                name: "name".into(),
                old: DomainType::String,
                new: DomainType::Long,
            },
        )
        .unwrap();
        assert_eq!(g.attr(aid).ty, DomainType::Long);
        assert_eq!(g.attr(aid).size, None);
        assert_eq!(out.notes.len(), 1);
    }

    #[test]
    fn add_relationship_creates_inverse_side() {
        let mut g = dept();
        apply_op(
            &mut g,
            &ModOp::AddRelationship {
                ty: "Person".into(),
                target: "Department".into(),
                cardinality: Cardinality::Many(CollectionKind::Set),
                path: "liaises_with".into(),
                inverse_path: "liaisons".into(),
                order_by: vec![],
            },
        )
        .unwrap();
        let dept_id = g.type_id("Department").unwrap();
        let (rid, e) = g.find_rel_end(dept_id, "liaisons").unwrap();
        assert_eq!(g.rel(rid).end(e).cardinality, Cardinality::One);
    }

    #[test]
    fn part_of_both_forms() {
        let mut g = SchemaGraph::new("t");
        g.add_type("House").unwrap();
        g.add_type("Roof").unwrap();
        g.add_type("Shingle").unwrap();
        // Parent form.
        apply_op(
            &mut g,
            &ModOp::AddPartOfRelationship {
                ty: "House".into(),
                collection: Some(CollectionKind::Set),
                target: "Roof".into(),
                path: "roofs".into(),
                inverse_path: "house".into(),
                order_by: vec![],
            },
        )
        .unwrap();
        // Child form.
        apply_op(
            &mut g,
            &ModOp::AddPartOfRelationship {
                ty: "Shingle".into(),
                collection: None,
                target: "Roof".into(),
                path: "roof".into(),
                inverse_path: "shingles".into(),
                order_by: vec![],
            },
        )
        .unwrap();
        assert_eq!(g.links().count(), 2);
        let roof = g.type_id("Roof").unwrap();
        assert_eq!(g.ty(roof).parent_links.len(), 1);
        assert_eq!(g.ty(roof).child_links.len(), 1);
    }

    #[test]
    fn modify_supertype_rewires() {
        let mut g = dept();
        apply_op(&mut g, &ModOp::AddTypeDefinition { ty: "Agent".into() }).unwrap();
        apply_op(
            &mut g,
            &ModOp::ModifySupertype {
                ty: "Employee".into(),
                old: vec!["Person".into()],
                new: vec!["Agent".into()],
            },
        )
        .unwrap();
        let employee = g.type_id("Employee").unwrap();
        let agent = g.type_id("Agent").unwrap();
        assert_eq!(g.ty(employee).supertypes, vec![agent]);
    }

    #[test]
    fn key_list_ops() {
        let mut g = dept();
        apply_op(
            &mut g,
            &ModOp::AddKeyList {
                ty: "Person".into(),
                keys: vec![sws_odl::Key::single("name")],
            },
        )
        .unwrap();
        let person = g.type_id("Person").unwrap();
        assert_eq!(g.ty(person).keys.len(), 1);
        apply_op(
            &mut g,
            &ModOp::ModifyKeyList {
                ty: "Person".into(),
                old: vec![sws_odl::Key::single("name")],
                new: vec![sws_odl::Key::compound(["name", "name2"])],
            },
        )
        .unwrap();
        assert_eq!(g.ty(person).keys[0].0.len(), 2);
    }

    #[test]
    fn operation_lifecycle() {
        let mut g = dept();
        apply_op(
            &mut g,
            &ModOp::AddOperation {
                ty: "Employee".into(),
                return_type: DomainType::Float,
                name: "salary".into(),
                args: vec![],
                raises: vec!["NotSet".into()],
            },
        )
        .unwrap();
        apply_op(
            &mut g,
            &ModOp::ModifyOperationReturnType {
                ty: "Employee".into(),
                name: "salary".into(),
                old: DomainType::Float,
                new: DomainType::Double,
            },
        )
        .unwrap();
        apply_op(
            &mut g,
            &ModOp::ModifyOperation {
                ty: "Employee".into(),
                name: "salary".into(),
                new_ty: "Person".into(),
            },
        )
        .unwrap();
        let person = g.type_id("Person").unwrap();
        let oid = g.find_op(person, "salary").unwrap();
        assert_eq!(g.op(oid).op.return_type, DomainType::Double);
        apply_op(
            &mut g,
            &ModOp::DeleteOperation {
                ty: "Person".into(),
                name: "salary".into(),
            },
        )
        .unwrap();
        assert!(g.find_op(person, "salary").is_none());
    }

    #[test]
    fn extent_ops() {
        let mut g = dept();
        apply_op(
            &mut g,
            &ModOp::AddExtentName {
                ty: "Person".into(),
                extent: "people".into(),
            },
        )
        .unwrap();
        apply_op(
            &mut g,
            &ModOp::ModifyExtentName {
                ty: "Person".into(),
                old: "people".into(),
                new: "persons".into(),
            },
        )
        .unwrap();
        let person = g.type_id("Person").unwrap();
        assert_eq!(g.ty(person).extent.as_deref(), Some("persons"));
        apply_op(
            &mut g,
            &ModOp::DeleteExtentName {
                ty: "Person".into(),
                extent: "persons".into(),
            },
        )
        .unwrap();
        assert_eq!(g.ty(person).extent, None);
    }

    #[test]
    fn instance_of_target_move() {
        let mut g = SchemaGraph::new("t");
        g.add_type("App").unwrap();
        g.add_type("Version").unwrap();
        g.add_type("PatchVersion").unwrap();
        let version = g.type_id("Version").unwrap();
        let patch = g.type_id("PatchVersion").unwrap();
        g.add_supertype(patch, version).unwrap();
        apply_op(
            &mut g,
            &ModOp::AddInstanceOfRelationship {
                ty: "App".into(),
                collection: Some(CollectionKind::Set),
                target: "Version".into(),
                path: "versions".into(),
                inverse_path: "app".into(),
                order_by: vec![],
            },
        )
        .unwrap();
        apply_op(
            &mut g,
            &ModOp::ModifyInstanceOfTargetType {
                ty: "App".into(),
                path: "versions".into(),
                old_target: "Version".into(),
                new_target: "PatchVersion".into(),
            },
        )
        .unwrap();
        let (lid, _) = g
            .find_link(HierKind::InstanceOf, g.type_id("App").unwrap(), "versions")
            .unwrap();
        assert_eq!(g.link(lid).child, patch);
    }
}
