//! Synthesis of a modification-operation script from a schema pair — the
//! constructive form of the paper's §3.5 completeness argument: *any*
//! custom schema is reachable from *any* starting schema using the
//! operation set (in the extreme, delete everything and add everything).
//!
//! [`synthesize`] produces a script that, applied to `old`, yields `new`
//! exactly (canonical-AST equality). The script is ordered so every
//! operation passes the precondition constraints when applied in sequence:
//! type deletes (cascading) → type adds → supertype deletes → relationship /
//! link deletes → key deletes → member deletes and in-place modifies →
//! member adds → relationship / link re-adds → key adds → supertype adds →
//! extent changes.
//!
//! Changed relationships and hierarchy links are re-created (delete + add)
//! rather than modified in place: the in-place modify operations exist for
//! the designer's convenience, but delete+add is always sufficient and
//! avoids ordering hazards. Attribute and operation *property* changes use
//! the dedicated modify operations.
//!
//! Limitation: the `is_abstract` flag has no modification operation in the
//! paper's grammar, so synthesized scripts cannot toggle it.

use super::ModOp;
use std::collections::{BTreeMap, BTreeSet};
use sws_model::{graph_to_schema, SchemaGraph};
use sws_odl::{Cardinality, HierKind, Interface, Schema};

/// Synthesize an op script transforming `old` into `new`.
pub fn synthesize(old: &SchemaGraph, new: &SchemaGraph) -> Vec<ModOp> {
    synthesize_schemas(&graph_to_schema(old), &graph_to_schema(new))
}

/// Key identifying a relationship regardless of which side declared it.
type RelKey = ((String, String), (String, String));

/// Full relationship value: per-side (cardinality, order_by), keyed like
/// `RelKey`.
type RelVal = BTreeMap<(String, String), (Cardinality, Vec<String>)>;

fn rel_map(schema: &Schema) -> BTreeMap<RelKey, RelVal> {
    let mut out: BTreeMap<RelKey, RelVal> = BTreeMap::new();
    for iface in &schema.interfaces {
        for rel in &iface.relationships {
            let mine = (iface.name.clone(), rel.path.clone());
            let theirs = (rel.target.clone(), rel.inverse_path.clone());
            let key = if mine <= theirs {
                (mine.clone(), theirs)
            } else {
                (theirs, mine.clone())
            };
            out.entry(key)
                .or_default()
                .insert(mine, (rel.cardinality, rel.order_by.clone()));
        }
    }
    out
}

/// Key + value identifying one hierarchy link completely.
type LinkKey = (
    HierKind,
    String,
    String,
    String,
    String,
    String,
    Vec<String>,
);

fn link_set(schema: &Schema) -> BTreeSet<LinkKey> {
    let mut out = BTreeSet::new();
    for iface in &schema.interfaces {
        for (kind, links) in [
            (HierKind::PartOf, &iface.part_ofs),
            (HierKind::InstanceOf, &iface.instance_ofs),
        ] {
            for link in links {
                // Only record from the parent (Many) side; the child side is
                // its mirror.
                if let Cardinality::Many(coll) = link.cardinality {
                    out.insert((
                        kind,
                        iface.name.clone(),
                        link.path.clone(),
                        link.target.clone(),
                        link.inverse_path.clone(),
                        coll.keyword().to_string(),
                        link.order_by.clone(),
                    ));
                }
            }
        }
    }
    out
}

/// Synthesize from canonical ASTs.
pub fn synthesize_schemas(old: &Schema, new: &Schema) -> Vec<ModOp> {
    let mut script = Vec::new();
    let old_types: BTreeSet<&str> = old.interfaces.iter().map(|i| i.name.as_str()).collect();
    let new_types: BTreeSet<&str> = new.interfaces.iter().map(|i| i.name.as_str()).collect();
    let survives = |t: &str| old_types.contains(t) && new_types.contains(t);

    // 0. Delete every supertype edge that does not survive identically —
    // *before* any type deletion, so the delete-type propagation rule
    // (re-wire subtypes to the deleted type's supertypes) never fires and
    // the final edge set is exactly the new schema's.
    for iface in &old.interfaces {
        let kept_sups: Vec<&String> = new
            .interface(&iface.name)
            .map(|n| n.supertypes.iter().collect())
            .unwrap_or_default();
        for sup in &iface.supertypes {
            if !(survives(&iface.name) && survives(sup) && kept_sups.contains(&sup)) {
                script.push(ModOp::DeleteSupertype {
                    ty: iface.name.clone(),
                    supertype: sup.clone(),
                });
            }
        }
    }

    // 1. Delete vanished types (cascades their members and incident edges).
    for iface in &old.interfaces {
        if !new_types.contains(iface.name.as_str()) {
            script.push(ModOp::DeleteTypeDefinition {
                ty: iface.name.clone(),
            });
        }
    }
    // 2. Add fresh types.
    for iface in &new.interfaces {
        if !old_types.contains(iface.name.as_str()) {
            script.push(ModOp::AddTypeDefinition {
                ty: iface.name.clone(),
            });
        }
    }

    // 3. Relationship and link surgery: delete anything absent or changed.
    let old_rels = rel_map(old);
    let new_rels = rel_map(new);
    for (key, val) in &old_rels {
        if new_rels.get(key) != Some(val) {
            let ((ty_a, path_a), (ty_b, _)) = key;
            // Skip when a type deletion already cascaded the relationship.
            if survives(ty_a) && survives(ty_b) {
                script.push(ModOp::DeleteRelationship {
                    ty: ty_a.clone(),
                    path: path_a.clone(),
                });
            }
        }
    }
    let old_links = link_set(old);
    let new_links = link_set(new);
    for link in &old_links {
        if !new_links.contains(link) {
            let (kind, parent, path, child, ..) = link;
            if survives(parent) && survives(child) {
                script.push(match kind {
                    HierKind::PartOf => ModOp::DeletePartOfRelationship {
                        ty: parent.clone(),
                        path: path.clone(),
                    },
                    HierKind::InstanceOf => ModOp::DeleteInstanceOfRelationship {
                        ty: parent.clone(),
                        path: path.clone(),
                    },
                });
            }
        }
    }

    // 6. Delete removed keys (before attribute surgery, so explicit key
    // deletes never go stale through cascades).
    for iface in &old.interfaces {
        if !survives(&iface.name) {
            continue;
        }
        let new_iface = new.interface(&iface.name).expect("survives");
        let gone: Vec<_> = iface
            .keys
            .iter()
            .filter(|k| !new_iface.keys.contains(k))
            .cloned()
            .collect();
        if !gone.is_empty() {
            script.push(ModOp::DeleteKeyList {
                ty: iface.name.clone(),
                keys: gone,
            });
        }
    }

    // 7. Member deletes and in-place modifies.
    for iface in &old.interfaces {
        if !survives(&iface.name) {
            continue;
        }
        let new_iface = new.interface(&iface.name).expect("survives");
        member_surgery(iface, new_iface, &mut script);
    }

    // 8. Member adds on every new-schema type.
    for iface in &new.interfaces {
        let old_iface = old.interface(&iface.name);
        for attr in &iface.attributes {
            let existed = old_iface.is_some_and(|o| o.attribute(&attr.name).is_some());
            if !existed {
                script.push(ModOp::AddAttribute {
                    ty: iface.name.clone(),
                    domain: attr.ty.clone(),
                    size: attr.size,
                    name: attr.name.clone(),
                });
            }
        }
        for op in &iface.operations {
            let existed = old_iface.is_some_and(|o| o.operation(&op.name).is_some());
            if !existed {
                script.push(ModOp::AddOperation {
                    ty: iface.name.clone(),
                    return_type: op.return_type.clone(),
                    name: op.name.clone(),
                    args: op.args.clone(),
                    raises: op.raises.clone(),
                });
            }
        }
    }

    // 9. Re-add changed/added relationships.
    for (key, val) in &new_rels {
        let ((ty_a, path_a), (ty_b, path_b)) = key;
        let was_kept = old_rels.get(key) == Some(val) && survives(ty_a) && survives(ty_b);
        if was_kept {
            continue;
        }
        let (card_a, order_a) = &val[&(ty_a.clone(), path_a.clone())];
        let (card_b, order_b) = &val[&(ty_b.clone(), path_b.clone())];
        script.push(ModOp::AddRelationship {
            ty: ty_a.clone(),
            target: ty_b.clone(),
            cardinality: *card_a,
            path: path_a.clone(),
            inverse_path: path_b.clone(),
            order_by: order_a.clone(),
        });
        if *card_b != Cardinality::One {
            script.push(ModOp::ModifyRelationshipCardinality {
                ty: ty_b.clone(),
                path: path_b.clone(),
                old: Cardinality::One,
                new: *card_b,
            });
        }
        if !order_b.is_empty() {
            script.push(ModOp::ModifyRelationshipOrderBy {
                ty: ty_b.clone(),
                path: path_b.clone(),
                old: Vec::new(),
                new: order_b.clone(),
            });
        }
    }

    // 10. Re-add changed/added links.
    for link in &new_links {
        let (kind, parent, path, child, inverse_path, coll, order_by) = link;
        let survived = old_links.contains(link) && survives(parent) && survives(child);
        if survived {
            continue;
        }
        let collection = match coll.as_str() {
            "set" => sws_odl::CollectionKind::Set,
            "list" => sws_odl::CollectionKind::List,
            _ => sws_odl::CollectionKind::Bag,
        };
        let op = match kind {
            HierKind::PartOf => ModOp::AddPartOfRelationship {
                ty: parent.clone(),
                collection: Some(collection),
                target: child.clone(),
                path: path.clone(),
                inverse_path: inverse_path.clone(),
                order_by: order_by.clone(),
            },
            HierKind::InstanceOf => ModOp::AddInstanceOfRelationship {
                ty: parent.clone(),
                collection: Some(collection),
                target: child.clone(),
                path: path.clone(),
                inverse_path: inverse_path.clone(),
                order_by: order_by.clone(),
            },
        };
        script.push(op);
    }

    // 11. Add fresh keys.
    for iface in &new.interfaces {
        let old_keys = old
            .interface(&iface.name)
            .map(|o| o.keys.clone())
            .unwrap_or_default();
        let fresh: Vec<_> = iface
            .keys
            .iter()
            .filter(|k| !old_keys.contains(k))
            .cloned()
            .collect();
        if !fresh.is_empty() {
            script.push(ModOp::AddKeyList {
                ty: iface.name.clone(),
                keys: fresh,
            });
        }
    }

    // 12. Add fresh supertype edges.
    for iface in &new.interfaces {
        let old_sups = old
            .interface(&iface.name)
            .map(|o| o.supertypes.clone())
            .unwrap_or_default();
        for sup in &iface.supertypes {
            let kept = old_sups.contains(sup) && survives(&iface.name) && survives(sup);
            if !kept {
                script.push(ModOp::AddSupertype {
                    ty: iface.name.clone(),
                    supertype: sup.clone(),
                });
            }
        }
    }

    // 13. Extent changes.
    for iface in &new.interfaces {
        let old_extent = old.interface(&iface.name).and_then(|o| o.extent.clone());
        match (&old_extent, &iface.extent) {
            (None, Some(e)) => script.push(ModOp::AddExtentName {
                ty: iface.name.clone(),
                extent: e.clone(),
            }),
            (Some(o), Some(n)) if o != n => script.push(ModOp::ModifyExtentName {
                ty: iface.name.clone(),
                old: o.clone(),
                new: n.clone(),
            }),
            (Some(o), None) if survives(&iface.name) => script.push(ModOp::DeleteExtentName {
                ty: iface.name.clone(),
                extent: o.clone(),
            }),
            _ => {}
        }
    }

    script
}

fn member_surgery(old: &Interface, new: &Interface, script: &mut Vec<ModOp>) {
    for attr in &old.attributes {
        match new.attribute(&attr.name) {
            None => script.push(ModOp::DeleteAttribute {
                ty: old.name.clone(),
                name: attr.name.clone(),
            }),
            Some(new_attr) => {
                if new_attr.ty != attr.ty {
                    script.push(ModOp::ModifyAttributeType {
                        ty: old.name.clone(),
                        name: attr.name.clone(),
                        old: attr.ty.clone(),
                        new: new_attr.ty.clone(),
                    });
                }
                // Size after type: a type change may clear the size.
                let effective_old = if new_attr.ty != attr.ty && !new_attr.ty.admits_size() {
                    None
                } else {
                    attr.size
                };
                if new_attr.size != effective_old {
                    script.push(ModOp::ModifyAttributeSize {
                        ty: old.name.clone(),
                        name: attr.name.clone(),
                        old: effective_old,
                        new: new_attr.size,
                    });
                }
            }
        }
    }
    for op in &old.operations {
        match new.operation(&op.name) {
            None => script.push(ModOp::DeleteOperation {
                ty: old.name.clone(),
                name: op.name.clone(),
            }),
            Some(new_op) => {
                if new_op.return_type != op.return_type {
                    script.push(ModOp::ModifyOperationReturnType {
                        ty: old.name.clone(),
                        name: op.name.clone(),
                        old: op.return_type.clone(),
                        new: new_op.return_type.clone(),
                    });
                }
                if new_op.args != op.args {
                    script.push(ModOp::ModifyOperationArgList {
                        ty: old.name.clone(),
                        name: op.name.clone(),
                        old: op.args.clone(),
                        new: new_op.args.clone(),
                    });
                }
                if new_op.raises != op.raises {
                    script.push(ModOp::ModifyOperationExceptionsRaised {
                        ty: old.name.clone(),
                        name: op.name.clone(),
                        old: op.raises.clone(),
                        new: new_op.raises.clone(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::apply::apply_op;
    use sws_model::schema_to_graph;
    use sws_odl::parse_schema;

    fn graph(src: &str) -> SchemaGraph {
        schema_to_graph(&parse_schema(src).unwrap()).unwrap()
    }

    /// Apply a script with full precondition checking against `g` itself as
    /// shrink wrap (moves are not synthesized, so stability never triggers).
    fn run(old: &SchemaGraph, script: &[ModOp]) -> SchemaGraph {
        let mut g = old.clone();
        for op in script {
            let violations = crate::constraints::check_preconditions(op, &g, old);
            assert!(violations.is_empty(), "op {op:?} violates {violations:?}");
            apply_op(&mut g, op).unwrap();
        }
        g
    }

    fn assert_reaches(old_src: &str, new_src: &str) -> usize {
        let old = graph(old_src);
        let new = graph(new_src);
        let script = synthesize(&old, &new);
        let result = run(&old, &script);
        assert_eq!(
            graph_to_schema(&result),
            graph_to_schema(&new),
            "script: {script:#?}"
        );
        script.len()
    }

    #[test]
    fn identical_schemas_need_no_ops() {
        let src = r#"
        interface A { attribute long x; extent as_; keys x; }
        interface B : A { relationship A friend inverse A::friend_of; }
        "#;
        // NOTE: friend/friend_of would be unpaired; use a clean schema.
        let src = src.replace("relationship A friend inverse A::friend_of;", "");
        let old = graph(&src);
        assert!(synthesize(&old, &old).is_empty());
    }

    #[test]
    fn reaches_added_members() {
        assert_reaches(
            "interface A { }",
            r#"
            interface A {
                extent as_;
                attribute string(8) tag;
                keys tag;
                void refresh();
            }
            interface B : A { }
            "#,
        );
    }

    #[test]
    fn reaches_deleted_everything() {
        assert_reaches(
            r#"
            interface A { attribute long x; }
            interface B : A {
                relationship C c inverse C::b;
            }
            interface C {
                relationship B b inverse B::c;
                part_of set<D> ds inverse D::c;
            }
            interface D { part_of C c inverse C::ds; }
            "#,
            "interface Z { }",
        );
    }

    #[test]
    fn reaches_changed_relationships() {
        assert_reaches(
            r#"
            interface A { relationship set<B> bs inverse B::a; }
            interface B { relationship A a inverse A::bs; }
            "#,
            r#"
            interface A { relationship list<B> bs inverse B::a order_by (x); }
            interface B { attribute long x; relationship set<A> a inverse A::bs; }
            "#,
        );
    }

    #[test]
    fn reaches_link_rewiring() {
        assert_reaches(
            r#"
            interface House { part_of set<Wall> walls inverse Wall::house; }
            interface Wall { part_of House house inverse House::walls; }
            interface App { instance_of set<Ver> vers inverse Ver::app; }
            interface Ver { instance_of App app inverse App::vers; }
            "#,
            r#"
            interface House { part_of list<Wall> walls inverse Wall::house; }
            interface Wall { part_of House house inverse House::walls; }
            interface App { }
            interface Ver { }
            interface AppTwo { }
            "#,
        );
    }

    #[test]
    fn reaches_attribute_property_changes() {
        assert_reaches(
            "interface A { attribute string(16) s; attribute long n; }",
            "interface A { attribute string(64) s; attribute double n; }",
        );
    }

    #[test]
    fn reaches_operation_signature_changes() {
        assert_reaches(
            "interface A { void f(in long x); }",
            "interface A { long f(in long x, in string y) raises (Bad); }",
        );
    }

    #[test]
    fn reaches_supertype_rewiring() {
        assert_reaches(
            r#"
            interface Root { }
            interface Mid : Root { }
            interface Leaf : Mid { }
            "#,
            r#"
            interface Root { }
            interface Leaf : Root { }
            interface Side : Root { }
            "#,
        );
    }

    #[test]
    fn extent_transitions() {
        assert_reaches(
            "interface A { extent olds; } interface B { }",
            "interface A { extent news; } interface B { extent bs; }",
        );
        assert_reaches("interface A { extent gone; }", "interface A { }");
    }

    #[test]
    fn moved_attribute_via_delete_add() {
        // A "move" expressed as delete+add passes because deletes precede
        // adds.
        assert_reaches(
            r#"
            interface Person { }
            interface Employee : Person { attribute long badge; }
            "#,
            r#"
            interface Person { attribute long badge; }
            interface Employee : Person { }
            "#,
        );
    }
}
