//! The complete set of schema modification operations (paper Appendix A).
//!
//! Every operation the BNF grammar defines is a [`ModOp`] variant. The
//! fieldless [`OpKind`] mirror is used by the permission matrix (Table 1)
//! and the coverage tables (Tables 2–3). Operation *names* follow the
//! grammar exactly (`add_type_definition`, `modify_relationship_target_type`,
//! …); these are also the keywords of the modification language in
//! [`crate::oplang`].
//!
//! Per the paper's name-equivalence assumption, **no operation renames
//! anything** — there is deliberately no `modify_*_name` operation.

pub mod apply;
pub mod coverage;
pub mod matrix;
pub mod synthesize;

pub use matrix::PermissionMatrix;

use crate::constraints::ConstraintViolation;
use crate::ConceptKind;
use std::fmt;
use sws_model::ModelError;
use sws_odl::{Cardinality, CollectionKind, DomainType, Key, Param};

/// A schema modification operation. All referents are by name, per the
/// paper's name-equivalence and uniqueness assumptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModOp {
    // ---- interface definitions --------------------------------------
    /// `add_type_definition(T)`
    AddTypeDefinition { ty: String },
    /// `delete_type_definition(T)` — cascades per the propagation rules.
    DeleteTypeDefinition { ty: String },

    // ---- type properties --------------------------------------------
    /// `add_supertype(T, S)`
    AddSupertype { ty: String, supertype: String },
    /// `delete_supertype(T, S)`
    DeleteSupertype { ty: String, supertype: String },
    /// `modify_supertype(T, (old...), (new...))` — re-wires the ISA edges.
    ModifySupertype {
        ty: String,
        old: Vec<String>,
        new: Vec<String>,
    },
    /// `add_extent_name(T, e)`
    AddExtentName { ty: String, extent: String },
    /// `delete_extent_name(T, e)`
    DeleteExtentName { ty: String, extent: String },
    /// `modify_extent_name(T, old, new)`
    ModifyExtentName {
        ty: String,
        old: String,
        new: String,
    },
    /// `add_key_list(T, (keys...))`
    AddKeyList { ty: String, keys: Vec<Key> },
    /// `delete_key_list(T, (keys...))`
    DeleteKeyList { ty: String, keys: Vec<Key> },
    /// `modify_key_list(T, (old...), (new...))`
    ModifyKeyList {
        ty: String,
        old: Vec<Key>,
        new: Vec<Key>,
    },

    // ---- attributes ---------------------------------------------------
    /// `add_attribute(T, domain[(size)], name)`
    AddAttribute {
        ty: String,
        domain: DomainType,
        size: Option<u32>,
        name: String,
    },
    /// `delete_attribute(T, name)`
    DeleteAttribute { ty: String, name: String },
    /// `modify_attribute(T, name, NewT)` — move the attribute up/down the
    /// generalization hierarchy (semantic stability applies).
    ModifyAttribute {
        ty: String,
        name: String,
        new_ty: String,
    },
    /// `modify_attribute_type(T, name, old, new)`
    ModifyAttributeType {
        ty: String,
        name: String,
        old: DomainType,
        new: DomainType,
    },
    /// `modify_attribute_size(T, name, old, new)`
    ModifyAttributeSize {
        ty: String,
        name: String,
        old: Option<u32>,
        new: Option<u32>,
    },

    // ---- relationships -------------------------------------------------
    /// `add_relationship(T, set<U>|U, path, U::inverse_path [, (order_by)])`
    /// — creates both ends; the inverse end starts single-valued.
    AddRelationship {
        ty: String,
        target: String,
        cardinality: Cardinality,
        path: String,
        inverse_path: String,
        order_by: Vec<String>,
    },
    /// `delete_relationship(T, path)` — removes both ends.
    DeleteRelationship { ty: String, path: String },
    /// `modify_relationship_target_type(T, path, OldTarget, NewTarget)` —
    /// moves the opposite end up/down the generalization hierarchy (the
    /// paper's Fig. 8 example).
    ModifyRelationshipTargetType {
        ty: String,
        path: String,
        old_target: String,
        new_target: String,
    },
    /// `modify_relationship_cardinality(T, path, old, new)` where each side
    /// is `set<U>` / `list<U>` / `bag<U>` / `U`.
    ModifyRelationshipCardinality {
        ty: String,
        path: String,
        old: Cardinality,
        new: Cardinality,
    },
    /// `modify_relationship_order_by(T, path, (old...), (new...))`
    ModifyRelationshipOrderBy {
        ty: String,
        path: String,
        old: Vec<String>,
        new: Vec<String>,
    },

    // ---- operations ------------------------------------------------------
    /// `add_operation(T, return_type, name [, (args)] [, raises (ex...)])`
    AddOperation {
        ty: String,
        return_type: DomainType,
        name: String,
        args: Vec<Param>,
        raises: Vec<String>,
    },
    /// `delete_operation(T, name)`
    DeleteOperation { ty: String, name: String },
    /// `modify_operation(T, name, NewT)` — move up/down the hierarchy.
    ModifyOperation {
        ty: String,
        name: String,
        new_ty: String,
    },
    /// `modify_operation_return_type(T, name, old, new)`
    ModifyOperationReturnType {
        ty: String,
        name: String,
        old: DomainType,
        new: DomainType,
    },
    /// `modify_operation_arg_list(T, name, (old...), (new...))`
    ModifyOperationArgList {
        ty: String,
        name: String,
        old: Vec<Param>,
        new: Vec<Param>,
    },
    /// `modify_operation_exceptions_raised(T, name, (old...), (new...))`
    ModifyOperationExceptionsRaised {
        ty: String,
        name: String,
        old: Vec<String>,
        new: Vec<String>,
    },

    // ---- part-of relationships ---------------------------------------
    /// `add_part_of_relationship(...)`: with a collection type the op is the
    /// *to-part-of* form (`ty` is the whole); without, the *to-whole* form
    /// (`ty` is the component).
    AddPartOfRelationship {
        ty: String,
        collection: Option<CollectionKind>,
        target: String,
        path: String,
        inverse_path: String,
        order_by: Vec<String>,
    },
    /// `delete_part_of_relationship(T, path)`
    DeletePartOfRelationship { ty: String, path: String },
    /// `modify_part_of_target_type(T, path, Old, New)`
    ModifyPartOfTargetType {
        ty: String,
        path: String,
        old_target: String,
        new_target: String,
    },
    /// `modify_part_of_cardinality(T, path, old, new)` — only the to-parts
    /// end is collection-valued.
    ModifyPartOfCardinality {
        ty: String,
        path: String,
        old: CollectionKind,
        new: CollectionKind,
    },
    /// `modify_part_of_order_by(T, path, (old...), (new...))`
    ModifyPartOfOrderBy {
        ty: String,
        path: String,
        old: Vec<String>,
        new: Vec<String>,
    },

    // ---- instance-of relationships -------------------------------------
    /// `add_instance_of_relationship(...)`: with a collection type, the
    /// *to-instance-entities* form (`ty` is the generic entity); without,
    /// the *to-generic-entity* form.
    AddInstanceOfRelationship {
        ty: String,
        collection: Option<CollectionKind>,
        target: String,
        path: String,
        inverse_path: String,
        order_by: Vec<String>,
    },
    /// `delete_instance_of_relationship(T, path)`
    DeleteInstanceOfRelationship { ty: String, path: String },
    /// `modify_instance_of_target_type(T, path, Old, New)`
    ModifyInstanceOfTargetType {
        ty: String,
        path: String,
        old_target: String,
        new_target: String,
    },
    /// `modify_instance_of_cardinality(T, path, old, new)`
    ModifyInstanceOfCardinality {
        ty: String,
        path: String,
        old: CollectionKind,
        new: CollectionKind,
    },
    /// `modify_instance_of_order_by(T, path, (old...), (new...))`
    ModifyInstanceOfOrderBy {
        ty: String,
        path: String,
        old: Vec<String>,
        new: Vec<String>,
    },
}

impl ModOp {
    /// The fieldless kind of this operation.
    pub fn kind(&self) -> OpKind {
        match self {
            ModOp::AddTypeDefinition { .. } => OpKind::AddTypeDefinition,
            ModOp::DeleteTypeDefinition { .. } => OpKind::DeleteTypeDefinition,
            ModOp::AddSupertype { .. } => OpKind::AddSupertype,
            ModOp::DeleteSupertype { .. } => OpKind::DeleteSupertype,
            ModOp::ModifySupertype { .. } => OpKind::ModifySupertype,
            ModOp::AddExtentName { .. } => OpKind::AddExtentName,
            ModOp::DeleteExtentName { .. } => OpKind::DeleteExtentName,
            ModOp::ModifyExtentName { .. } => OpKind::ModifyExtentName,
            ModOp::AddKeyList { .. } => OpKind::AddKeyList,
            ModOp::DeleteKeyList { .. } => OpKind::DeleteKeyList,
            ModOp::ModifyKeyList { .. } => OpKind::ModifyKeyList,
            ModOp::AddAttribute { .. } => OpKind::AddAttribute,
            ModOp::DeleteAttribute { .. } => OpKind::DeleteAttribute,
            ModOp::ModifyAttribute { .. } => OpKind::ModifyAttribute,
            ModOp::ModifyAttributeType { .. } => OpKind::ModifyAttributeType,
            ModOp::ModifyAttributeSize { .. } => OpKind::ModifyAttributeSize,
            ModOp::AddRelationship { .. } => OpKind::AddRelationship,
            ModOp::DeleteRelationship { .. } => OpKind::DeleteRelationship,
            ModOp::ModifyRelationshipTargetType { .. } => OpKind::ModifyRelationshipTargetType,
            ModOp::ModifyRelationshipCardinality { .. } => OpKind::ModifyRelationshipCardinality,
            ModOp::ModifyRelationshipOrderBy { .. } => OpKind::ModifyRelationshipOrderBy,
            ModOp::AddOperation { .. } => OpKind::AddOperation,
            ModOp::DeleteOperation { .. } => OpKind::DeleteOperation,
            ModOp::ModifyOperation { .. } => OpKind::ModifyOperation,
            ModOp::ModifyOperationReturnType { .. } => OpKind::ModifyOperationReturnType,
            ModOp::ModifyOperationArgList { .. } => OpKind::ModifyOperationArgList,
            ModOp::ModifyOperationExceptionsRaised { .. } => {
                OpKind::ModifyOperationExceptionsRaised
            }
            ModOp::AddPartOfRelationship { .. } => OpKind::AddPartOfRelationship,
            ModOp::DeletePartOfRelationship { .. } => OpKind::DeletePartOfRelationship,
            ModOp::ModifyPartOfTargetType { .. } => OpKind::ModifyPartOfTargetType,
            ModOp::ModifyPartOfCardinality { .. } => OpKind::ModifyPartOfCardinality,
            ModOp::ModifyPartOfOrderBy { .. } => OpKind::ModifyPartOfOrderBy,
            ModOp::AddInstanceOfRelationship { .. } => OpKind::AddInstanceOfRelationship,
            ModOp::DeleteInstanceOfRelationship { .. } => OpKind::DeleteInstanceOfRelationship,
            ModOp::ModifyInstanceOfTargetType { .. } => OpKind::ModifyInstanceOfTargetType,
            ModOp::ModifyInstanceOfCardinality { .. } => OpKind::ModifyInstanceOfCardinality,
            ModOp::ModifyInstanceOfOrderBy { .. } => OpKind::ModifyInstanceOfOrderBy,
        }
    }

    /// The primary object type this operation addresses.
    pub fn subject_type(&self) -> &str {
        match self {
            ModOp::AddTypeDefinition { ty }
            | ModOp::DeleteTypeDefinition { ty }
            | ModOp::AddSupertype { ty, .. }
            | ModOp::DeleteSupertype { ty, .. }
            | ModOp::ModifySupertype { ty, .. }
            | ModOp::AddExtentName { ty, .. }
            | ModOp::DeleteExtentName { ty, .. }
            | ModOp::ModifyExtentName { ty, .. }
            | ModOp::AddKeyList { ty, .. }
            | ModOp::DeleteKeyList { ty, .. }
            | ModOp::ModifyKeyList { ty, .. }
            | ModOp::AddAttribute { ty, .. }
            | ModOp::DeleteAttribute { ty, .. }
            | ModOp::ModifyAttribute { ty, .. }
            | ModOp::ModifyAttributeType { ty, .. }
            | ModOp::ModifyAttributeSize { ty, .. }
            | ModOp::AddRelationship { ty, .. }
            | ModOp::DeleteRelationship { ty, .. }
            | ModOp::ModifyRelationshipTargetType { ty, .. }
            | ModOp::ModifyRelationshipCardinality { ty, .. }
            | ModOp::ModifyRelationshipOrderBy { ty, .. }
            | ModOp::AddOperation { ty, .. }
            | ModOp::DeleteOperation { ty, .. }
            | ModOp::ModifyOperation { ty, .. }
            | ModOp::ModifyOperationReturnType { ty, .. }
            | ModOp::ModifyOperationArgList { ty, .. }
            | ModOp::ModifyOperationExceptionsRaised { ty, .. }
            | ModOp::AddPartOfRelationship { ty, .. }
            | ModOp::DeletePartOfRelationship { ty, .. }
            | ModOp::ModifyPartOfTargetType { ty, .. }
            | ModOp::ModifyPartOfCardinality { ty, .. }
            | ModOp::ModifyPartOfOrderBy { ty, .. }
            | ModOp::AddInstanceOfRelationship { ty, .. }
            | ModOp::DeleteInstanceOfRelationship { ty, .. }
            | ModOp::ModifyInstanceOfTargetType { ty, .. }
            | ModOp::ModifyInstanceOfCardinality { ty, .. }
            | ModOp::ModifyInstanceOfOrderBy { ty, .. } => ty,
        }
    }
}

impl fmt::Display for ModOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::oplang::print_op(self))
    }
}

macro_rules! op_kinds {
    ($(($variant:ident, $name:literal, $category:expr)),+ $(,)?) => {
        /// The fieldless kind of a [`ModOp`], used by Table 1 (permission
        /// matrix) and Tables 2–3 (coverage).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub enum OpKind {
            $(#[doc = $name] $variant),+
        }

        impl OpKind {
            /// Every operation kind, in grammar order.
            pub const ALL: &'static [OpKind] = &[$(OpKind::$variant),+];

            /// The grammar name of this operation.
            pub fn name(self) -> &'static str {
                match self {
                    $(OpKind::$variant => $name),+
                }
            }

            /// Which group of ODL candidates this operation addresses.
            pub fn category(self) -> OpCategory {
                match self {
                    $(OpKind::$variant => $category),+
                }
            }

            /// Parse a grammar name.
            pub fn from_name(name: &str) -> Option<OpKind> {
                match name {
                    $($name => Some(OpKind::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

/// The ODL-candidate group an operation addresses (the row groups of the
/// paper's Tables 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpCategory {
    /// Interface definitions and type properties (supertype, extent, keys).
    TypeDefinition,
    /// Attribute instance properties.
    Attribute,
    /// (Association) relationship instance properties.
    Relationship,
    /// Operation signatures.
    Operation,
    /// Part-of relationships.
    PartOf,
    /// Instance-of relationships.
    InstanceOf,
}

impl OpCategory {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            OpCategory::TypeDefinition => "type definition",
            OpCategory::Attribute => "attribute",
            OpCategory::Relationship => "relationship",
            OpCategory::Operation => "operation",
            OpCategory::PartOf => "part-of relationship",
            OpCategory::InstanceOf => "instance-of relationship",
        }
    }
}

op_kinds![
    (
        AddTypeDefinition,
        "add_type_definition",
        OpCategory::TypeDefinition
    ),
    (
        DeleteTypeDefinition,
        "delete_type_definition",
        OpCategory::TypeDefinition
    ),
    (AddSupertype, "add_supertype", OpCategory::TypeDefinition),
    (
        DeleteSupertype,
        "delete_supertype",
        OpCategory::TypeDefinition
    ),
    (
        ModifySupertype,
        "modify_supertype",
        OpCategory::TypeDefinition
    ),
    (AddExtentName, "add_extent_name", OpCategory::TypeDefinition),
    (
        DeleteExtentName,
        "delete_extent_name",
        OpCategory::TypeDefinition
    ),
    (
        ModifyExtentName,
        "modify_extent_name",
        OpCategory::TypeDefinition
    ),
    (AddKeyList, "add_key_list", OpCategory::TypeDefinition),
    (DeleteKeyList, "delete_key_list", OpCategory::TypeDefinition),
    (ModifyKeyList, "modify_key_list", OpCategory::TypeDefinition),
    (AddAttribute, "add_attribute", OpCategory::Attribute),
    (DeleteAttribute, "delete_attribute", OpCategory::Attribute),
    (ModifyAttribute, "modify_attribute", OpCategory::Attribute),
    (
        ModifyAttributeType,
        "modify_attribute_type",
        OpCategory::Attribute
    ),
    (
        ModifyAttributeSize,
        "modify_attribute_size",
        OpCategory::Attribute
    ),
    (
        AddRelationship,
        "add_relationship",
        OpCategory::Relationship
    ),
    (
        DeleteRelationship,
        "delete_relationship",
        OpCategory::Relationship
    ),
    (
        ModifyRelationshipTargetType,
        "modify_relationship_target_type",
        OpCategory::Relationship
    ),
    (
        ModifyRelationshipCardinality,
        "modify_relationship_cardinality",
        OpCategory::Relationship
    ),
    (
        ModifyRelationshipOrderBy,
        "modify_relationship_order_by",
        OpCategory::Relationship
    ),
    (AddOperation, "add_operation", OpCategory::Operation),
    (DeleteOperation, "delete_operation", OpCategory::Operation),
    (ModifyOperation, "modify_operation", OpCategory::Operation),
    (
        ModifyOperationReturnType,
        "modify_operation_return_type",
        OpCategory::Operation
    ),
    (
        ModifyOperationArgList,
        "modify_operation_arg_list",
        OpCategory::Operation
    ),
    (
        ModifyOperationExceptionsRaised,
        "modify_operation_exceptions_raised",
        OpCategory::Operation
    ),
    (
        AddPartOfRelationship,
        "add_part_of_relationship",
        OpCategory::PartOf
    ),
    (
        DeletePartOfRelationship,
        "delete_part_of_relationship",
        OpCategory::PartOf
    ),
    (
        ModifyPartOfTargetType,
        "modify_part_of_target_type",
        OpCategory::PartOf
    ),
    (
        ModifyPartOfCardinality,
        "modify_part_of_cardinality",
        OpCategory::PartOf
    ),
    (
        ModifyPartOfOrderBy,
        "modify_part_of_order_by",
        OpCategory::PartOf
    ),
    (
        AddInstanceOfRelationship,
        "add_instance_of_relationship",
        OpCategory::InstanceOf
    ),
    (
        DeleteInstanceOfRelationship,
        "delete_instance_of_relationship",
        OpCategory::InstanceOf
    ),
    (
        ModifyInstanceOfTargetType,
        "modify_instance_of_target_type",
        OpCategory::InstanceOf
    ),
    (
        ModifyInstanceOfCardinality,
        "modify_instance_of_cardinality",
        OpCategory::InstanceOf
    ),
    (
        ModifyInstanceOfOrderBy,
        "modify_instance_of_order_by",
        OpCategory::InstanceOf
    ),
];

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an operation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpError {
    /// Table 1 does not permit this operation in this concept-schema
    /// context.
    NotPermitted { op: OpKind, context: ConceptKind },
    /// One or more precondition constraints failed.
    Violations(Vec<ConstraintViolation>),
    /// The graph refused the mutation (should be prevented by the
    /// constraints; kept as a defensive layer).
    Model(ModelError),
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::NotPermitted { op, context } => {
                write!(
                    f,
                    "operation `{op}` is not permitted in a {context} concept schema"
                )
            }
            OpError::Violations(vs) => {
                write!(f, "constraint violation(s): ")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            OpError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OpError {}

impl From<ModelError> for OpError {
    fn from(e: ModelError) -> Self {
        OpError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trip() {
        for &k in OpKind::ALL {
            assert_eq!(OpKind::from_name(k.name()), Some(k));
        }
        assert_eq!(OpKind::from_name("rename_type"), None);
    }

    #[test]
    fn all_has_37_operations() {
        // 11 type-definition + 5 attribute + 5 relationship + 6 operation
        // + 5 part-of + 5 instance-of = 37 operations in the grammar.
        assert_eq!(OpKind::ALL.len(), 37);
    }

    #[test]
    fn no_rename_operations_exist() {
        // Name equivalence: no operation may modify a name.
        for &k in OpKind::ALL {
            assert!(!k.name().contains("name") || k.name().contains("extent_name"));
        }
    }

    #[test]
    fn categories_partition_the_operations() {
        use OpCategory::*;
        let count = |c: OpCategory| OpKind::ALL.iter().filter(|k| k.category() == c).count();
        assert_eq!(count(TypeDefinition), 11);
        assert_eq!(count(Attribute), 5);
        assert_eq!(count(Relationship), 5);
        assert_eq!(count(Operation), 6);
        assert_eq!(count(PartOf), 5);
        assert_eq!(count(InstanceOf), 5);
    }

    #[test]
    fn mod_op_kind_and_subject() {
        let op = ModOp::AddAttribute {
            ty: "Person".into(),
            domain: DomainType::String,
            size: Some(32),
            name: "name".into(),
        };
        assert_eq!(op.kind(), OpKind::AddAttribute);
        assert_eq!(op.subject_type(), "Person");
        let op = ModOp::ModifyRelationshipTargetType {
            ty: "Department".into(),
            path: "has".into(),
            old_target: "Employee".into(),
            new_target: "Person".into(),
        };
        assert_eq!(op.kind(), OpKind::ModifyRelationshipTargetType);
    }
}
