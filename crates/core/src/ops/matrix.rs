//! The permission matrix of paper Table 1: which operations are allowed in
//! which concept-schema context.
//!
//! Reconstruction notes (see DESIGN.md §3): Table 1's prose says wagon
//! wheels do not support *modification* of supertype / part-of / instance-of
//! information, while the Appendix-A grammar grants wagon wheels
//! `add`/`delete` of part-of and instance-of links (the Fig. 7 elaboration
//! adds an aggregation link inside the course-offering wagon wheel). We
//! follow the grammar:
//!
//! * **Wagon wheel** — everything centred on one object type: type
//!   add/delete; extent, key list A/D/M; attribute A/D + type/size
//!   modification; relationship A/D + cardinality/order-by modification;
//!   operation A/D + return/args/exceptions modification; part-of and
//!   instance-of A/D (no modify). No supertype operations, no moves.
//! * **Generalization hierarchy** — supertype A/D/M (re-wiring); type
//!   add/delete; the three *move* operations (`modify_attribute`,
//!   `modify_operation`, `modify_relationship_target_type`).
//! * **Aggregation hierarchy** — part-of A/D + target-type / cardinality /
//!   order-by modification; type add/delete.
//! * **Instance-of hierarchy** — instance-of A/D + target-type /
//!   cardinality / order-by modification; type add/delete.
//!
//! Disallowed everywhere: any renaming (name equivalence, §3.2) — such
//! operations simply do not exist in the grammar.

use super::OpKind;
use crate::ConceptKind;

/// The Table 1 permission matrix. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PermissionMatrix;

impl PermissionMatrix {
    /// Create the matrix.
    pub fn new() -> Self {
        PermissionMatrix
    }

    /// Is `op` permitted in the context of a `context` concept schema?
    pub fn allows(&self, context: ConceptKind, op: OpKind) -> bool {
        use ConceptKind::*;
        use OpKind::*;
        match context {
            WagonWheel => matches!(
                op,
                AddTypeDefinition
                    | DeleteTypeDefinition
                    | AddExtentName
                    | DeleteExtentName
                    | ModifyExtentName
                    | AddKeyList
                    | DeleteKeyList
                    | ModifyKeyList
                    | AddAttribute
                    | DeleteAttribute
                    | ModifyAttributeType
                    | ModifyAttributeSize
                    | AddRelationship
                    | DeleteRelationship
                    | ModifyRelationshipCardinality
                    | ModifyRelationshipOrderBy
                    | AddOperation
                    | DeleteOperation
                    | ModifyOperationReturnType
                    | ModifyOperationArgList
                    | ModifyOperationExceptionsRaised
                    | AddPartOfRelationship
                    | DeletePartOfRelationship
                    | AddInstanceOfRelationship
                    | DeleteInstanceOfRelationship
            ),
            Generalization => matches!(
                op,
                AddTypeDefinition
                    | DeleteTypeDefinition
                    | AddSupertype
                    | DeleteSupertype
                    | ModifySupertype
                    | ModifyAttribute
                    | ModifyOperation
                    | ModifyRelationshipTargetType
            ),
            Aggregation => matches!(
                op,
                AddTypeDefinition
                    | DeleteTypeDefinition
                    | AddPartOfRelationship
                    | DeletePartOfRelationship
                    | ModifyPartOfTargetType
                    | ModifyPartOfCardinality
                    | ModifyPartOfOrderBy
            ),
            InstanceOf => matches!(
                op,
                AddTypeDefinition
                    | DeleteTypeDefinition
                    | AddInstanceOfRelationship
                    | DeleteInstanceOfRelationship
                    | ModifyInstanceOfTargetType
                    | ModifyInstanceOfCardinality
                    | ModifyInstanceOfOrderBy
            ),
        }
    }

    /// Every operation permitted in `context`, in grammar order.
    pub fn permitted_ops(&self, context: ConceptKind) -> Vec<OpKind> {
        OpKind::ALL
            .iter()
            .copied()
            .filter(|&op| self.allows(context, op))
            .collect()
    }

    /// Every concept-schema context in which `op` is permitted.
    pub fn permitting_contexts(&self, op: OpKind) -> Vec<ConceptKind> {
        ConceptKind::ALL
            .iter()
            .copied()
            .filter(|&c| self.allows(c, op))
            .collect()
    }

    /// Render the matrix as the rows of Table 1: one row per operation,
    /// with `A`/`D`/`M` spelled out as a checkmark per context column.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<36} {:^12} {:^16} {:^12} {:^12}\n",
            "operation", "wagon wheel", "generalization", "aggregation", "instance-of"
        ));
        for &op in OpKind::ALL {
            let cell = |c: ConceptKind| if self.allows(c, op) { "x" } else { "." };
            out.push_str(&format!(
                "{:<36} {:^12} {:^16} {:^12} {:^12}\n",
                op.name(),
                cell(ConceptKind::WagonWheel),
                cell(ConceptKind::Generalization),
                cell(ConceptKind::Aggregation),
                cell(ConceptKind::InstanceOf),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpCategory;

    #[test]
    fn every_operation_is_permitted_somewhere() {
        // Table 1 covers the full grammar: no orphan operations.
        let m = PermissionMatrix::new();
        for &op in OpKind::ALL {
            assert!(
                !m.permitting_contexts(op).is_empty(),
                "operation {op} permitted nowhere"
            );
        }
    }

    #[test]
    fn moves_only_in_generalization_hierarchies() {
        // Semantic stability: the move operations belong to the
        // generalization concept schema exclusively.
        let m = PermissionMatrix::new();
        for op in [
            OpKind::ModifyAttribute,
            OpKind::ModifyOperation,
            OpKind::ModifyRelationshipTargetType,
        ] {
            assert_eq!(m.permitting_contexts(op), vec![ConceptKind::Generalization]);
        }
    }

    #[test]
    fn wagon_wheel_cannot_touch_supertypes() {
        let m = PermissionMatrix::new();
        for op in [
            OpKind::AddSupertype,
            OpKind::DeleteSupertype,
            OpKind::ModifySupertype,
        ] {
            assert!(!m.allows(ConceptKind::WagonWheel, op));
            assert!(m.allows(ConceptKind::Generalization, op));
        }
    }

    #[test]
    fn wagon_wheel_adds_but_does_not_modify_hier_links() {
        let m = PermissionMatrix::new();
        assert!(m.allows(ConceptKind::WagonWheel, OpKind::AddPartOfRelationship));
        assert!(m.allows(ConceptKind::WagonWheel, OpKind::DeletePartOfRelationship));
        assert!(!m.allows(ConceptKind::WagonWheel, OpKind::ModifyPartOfTargetType));
        assert!(!m.allows(ConceptKind::WagonWheel, OpKind::ModifyPartOfCardinality));
        assert!(m.allows(ConceptKind::WagonWheel, OpKind::AddInstanceOfRelationship));
        assert!(!m.allows(ConceptKind::WagonWheel, OpKind::ModifyInstanceOfOrderBy));
    }

    #[test]
    fn hierarchies_own_their_modify_ops() {
        let m = PermissionMatrix::new();
        assert!(m.allows(ConceptKind::Aggregation, OpKind::ModifyPartOfCardinality));
        assert!(!m.allows(ConceptKind::InstanceOf, OpKind::ModifyPartOfCardinality));
        assert!(m.allows(ConceptKind::InstanceOf, OpKind::ModifyInstanceOfTargetType));
        assert!(!m.allows(ConceptKind::Aggregation, OpKind::ModifyInstanceOfTargetType));
    }

    #[test]
    fn type_add_delete_permitted_everywhere() {
        let m = PermissionMatrix::new();
        for &c in &ConceptKind::ALL {
            assert!(m.allows(c, OpKind::AddTypeDefinition));
            assert!(m.allows(c, OpKind::DeleteTypeDefinition));
        }
    }

    #[test]
    fn wagon_wheel_owns_the_largest_share() {
        // §3.4: "The largest portion of the modifications are supported in
        // wagon wheel concept schemas."
        let m = PermissionMatrix::new();
        let ww = m.permitted_ops(ConceptKind::WagonWheel).len();
        for c in [
            ConceptKind::Generalization,
            ConceptKind::Aggregation,
            ConceptKind::InstanceOf,
        ] {
            assert!(ww > m.permitted_ops(c).len());
        }
        assert_eq!(ww, 25);
    }

    #[test]
    fn non_move_attribute_ops_are_wagon_wheel_only() {
        let m = PermissionMatrix::new();
        for op in OpKind::ALL
            .iter()
            .filter(|k| k.category() == OpCategory::Attribute)
        {
            if *op == OpKind::ModifyAttribute {
                continue;
            }
            assert_eq!(m.permitting_contexts(*op), vec![ConceptKind::WagonWheel]);
        }
    }

    #[test]
    fn render_table_mentions_every_operation() {
        let table = PermissionMatrix::new().render_table();
        for &op in OpKind::ALL {
            assert!(table.contains(op.name()));
        }
    }
}
