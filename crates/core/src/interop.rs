//! Interoperation through common objects (paper §5):
//!
//! > "In general, systems built from the same shrink wrap schema (i.e.,
//! > common objects) can be integrated for information interchange because
//! > the semantically identical constructs have already been identified."
//!
//! Given the mappings of two design sessions over the *same* shrink wrap
//! schema, [`common_objects`] returns the constructs both custom schemas
//! reused — the shared vocabulary an integration layer can rely on. A
//! construct is common when **both** mappings carry it over (unchanged,
//! modified, or moved); its per-system disposition tells the integrator
//! whether any adaptation (e.g. a moved relationship end) is needed.

use crate::mapping::{Construct, Disposition, Mapping};

/// One construct shared by two systems built from the same shrink wrap
/// schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommonObject {
    /// The shrink-wrap-side identity (the shared name).
    pub construct: Construct,
    /// How system A treated it.
    pub in_a: Disposition,
    /// How system B treated it.
    pub in_b: Disposition,
}

impl CommonObject {
    /// True when both systems kept the construct byte-identical — no
    /// adaptation needed for interchange.
    pub fn identical(&self) -> bool {
        self.in_a == Disposition::Unchanged && self.in_b == Disposition::Unchanged
    }
}

/// Compute the common objects of two customizations of one shrink wrap
/// schema. Both mappings must have been derived against the same shrink
/// wrap; constructs present only as additions are never common (they were
/// not part of the shared vocabulary).
pub fn common_objects(a: &Mapping, b: &Mapping) -> Vec<CommonObject> {
    let mut out = Vec::new();
    for entry_a in &a.entries {
        if !entry_a.disposition.is_reused() {
            continue;
        }
        let Some(entry_b) = b
            .entries
            .iter()
            .find(|e| e.construct == entry_a.construct && e.disposition.is_reused())
        else {
            continue;
        };
        out.push(CommonObject {
            construct: entry_a.construct.clone(),
            in_a: entry_a.disposition.clone(),
            in_b: entry_b.disposition.clone(),
        });
    }
    out
}

/// Summary statistics for an integration report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InteropSummary {
    /// Constructs shared by both systems.
    pub common: usize,
    /// Shared constructs identical on both sides.
    pub identical: usize,
    /// Shrink wrap constructs (denominator).
    pub shrink_wrap_total: usize,
}

impl InteropSummary {
    /// Fraction of the shrink wrap vocabulary usable for interchange.
    pub fn interchange_fraction(&self) -> f64 {
        if self.shrink_wrap_total == 0 {
            return 0.0;
        }
        self.common as f64 / self.shrink_wrap_total as f64
    }
}

/// Summarize [`common_objects`] for two mappings.
pub fn summarize(a: &Mapping, b: &Mapping) -> InteropSummary {
    let common = common_objects(a, b);
    InteropSummary {
        common: common.len(),
        identical: common.iter().filter(|c| c.identical()).count(),
        shrink_wrap_total: a.summary().shrink_wrap_total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::ConceptKind;
    use crate::ops::ModOp;
    use crate::workspace::Workspace;
    use sws_model::schema_to_graph;
    use sws_odl::parse_schema;

    fn shrink_wrap() -> sws_model::SchemaGraph {
        schema_to_graph(
            &parse_schema(
                r#"
            interface Person { attribute string name; attribute date born; }
            interface Employee : Person {
                attribute long badge;
                relationship Department works_in_a inverse Department::has;
            }
            interface Department { attribute string dname; relationship set<Employee> has inverse Employee::works_in_a; }
            "#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn shared_constructs_survive_divergent_customization() {
        let sw = shrink_wrap();
        // System A: drops `born`, adds projects.
        let mut a = Workspace::new(sw.clone());
        a.apply(
            ConceptKind::WagonWheel,
            ModOp::DeleteAttribute {
                ty: "Person".into(),
                name: "born".into(),
            },
        )
        .unwrap();
        a.apply(
            ConceptKind::WagonWheel,
            ModOp::AddTypeDefinition {
                ty: "Project".into(),
            },
        )
        .unwrap();
        // System B: moves badge up, keeps `born`.
        let mut b = Workspace::new(sw);
        b.apply(
            ConceptKind::Generalization,
            ModOp::ModifyAttribute {
                ty: "Employee".into(),
                name: "badge".into(),
                new_ty: "Person".into(),
            },
        )
        .unwrap();

        let map_a = Mapping::derive(&a);
        let map_b = Mapping::derive(&b);
        let common = common_objects(&map_a, &map_b);

        // `born` is gone from A: not common.
        assert!(!common
            .iter()
            .any(|c| matches!(&c.construct, Construct::Attribute(_, n) if n == "born")));
        // `Project` is an addition: not common.
        assert!(!common
            .iter()
            .any(|c| matches!(&c.construct, Construct::Type(n) if n == "Project")));
        // `badge` is common, but moved in B — the integrator sees that.
        let badge = common
            .iter()
            .find(|c| matches!(&c.construct, Construct::Attribute(_, n) if n == "badge"))
            .expect("badge is shared");
        assert_eq!(badge.in_a, Disposition::Unchanged);
        assert!(matches!(&badge.in_b, Disposition::Moved { to, .. } if to == "Person"));
        assert!(!badge.identical());
        // The works_in_a relationship is untouched in both.
        let rel = common
            .iter()
            .find(|c| matches!(&c.construct, Construct::Relationship(..)))
            .expect("relationship shared");
        assert!(rel.identical());

        let summary = summarize(&map_a, &map_b);
        assert_eq!(summary.shrink_wrap_total, 9);
        assert_eq!(summary.common, 8); // everything but `born`
        assert!(summary.interchange_fraction() > 0.8);
    }

    #[test]
    fn untouched_sessions_share_everything() {
        let sw = shrink_wrap();
        let a = Mapping::derive(&Workspace::new(sw.clone()));
        let b = Mapping::derive(&Workspace::new(sw));
        let summary = summarize(&a, &b);
        assert_eq!(summary.common, summary.shrink_wrap_total);
        assert_eq!(summary.identical, summary.common);
        assert!((summary.interchange_fraction() - 1.0).abs() < 1e-9);
    }
}
