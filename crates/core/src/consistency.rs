//! Consistency checks over the customized user schema (paper §1.2:
//! "consistency checks to provide feedback to the designer about
//! interactions among the concept schemas").
//!
//! Because every concept schema is a view over the one integrated working
//! schema, interactions between customizations of *different* concept
//! schemas surface as global findings here: a type deleted from one wagon
//! wheel leaving dangling attribute domains referenced from another, a key
//! lost to an attribute move, an isolated type left behind by deletions,
//! and so on. Structural findings come from `sws-model`'s well-formedness
//! pass; shrink-wrap-relative findings are computed against the original
//! schema.

use std::fmt;
use sws_model::{check_well_formed, query, SchemaGraph, WfIssue};
use sws_odl::HierKind;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Should be fixed before the custom schema is used.
    Error,
    /// Probably unintended; the designer should review it.
    Warning,
    /// Worth knowing.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// One consistency finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrossIssue {
    /// A structural well-formedness problem.
    Wf(WfIssue),
    /// The shrink wrap type had keys; the custom type has none left.
    LostKey { ty: String },
    /// The shrink wrap type had an extent; the custom type has none.
    LostExtent { ty: String },
    /// A type with no members, relationships, links, or ISA edges —
    /// typically an orphan left behind by deletions in other concept
    /// schemas.
    IsolatedType { ty: String },
    /// An abstract type with no remaining subtypes.
    AbstractLeaf { ty: String },
    /// A type that is the generic entity of more than one instance-of link
    /// (the paper observed linear chains; branching is legal but notable).
    BranchingInstanceOf { ty: String, count: usize },
}

impl CrossIssue {
    /// The severity of this finding.
    pub fn severity(&self) -> Severity {
        match self {
            CrossIssue::Wf(_) => Severity::Error,
            CrossIssue::LostKey { .. } => Severity::Warning,
            CrossIssue::IsolatedType { .. } => Severity::Warning,
            CrossIssue::AbstractLeaf { .. } => Severity::Warning,
            CrossIssue::LostExtent { .. } => Severity::Info,
            CrossIssue::BranchingInstanceOf { .. } => Severity::Info,
        }
    }
}

impl fmt::Display for CrossIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossIssue::Wf(issue) => write!(f, "{issue}"),
            CrossIssue::LostKey { ty } => write!(
                f,
                "`{ty}` had key(s) in the shrink wrap schema but has none in the custom schema"
            ),
            CrossIssue::LostExtent { ty } => {
                write!(
                    f,
                    "`{ty}` lost its extent relative to the shrink wrap schema"
                )
            }
            CrossIssue::IsolatedType { ty } => write!(
                f,
                "`{ty}` is isolated (no members, relationships, links, or ISA edges)"
            ),
            CrossIssue::AbstractLeaf { ty } => {
                write!(f, "abstract type `{ty}` has no subtypes left")
            }
            CrossIssue::BranchingInstanceOf { ty, count } => write!(
                f,
                "`{ty}` is the generic entity of {count} instance-of links (branching chain)"
            ),
        }
    }
}

/// The full consistency report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// All findings, errors first.
    pub findings: Vec<CrossIssue>,
}

impl ConsistencyReport {
    /// Findings at [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &CrossIssue> {
        self.findings
            .iter()
            .filter(|i| i.severity() == Severity::Error)
    }

    /// Findings at [`Severity::Warning`].
    pub fn warnings(&self) -> impl Iterator<Item = &CrossIssue> {
        self.findings
            .iter()
            .filter(|i| i.severity() == Severity::Warning)
    }

    /// Findings at [`Severity::Info`].
    pub fn infos(&self) -> impl Iterator<Item = &CrossIssue> {
        self.findings
            .iter()
            .filter(|i| i.severity() == Severity::Info)
    }

    /// True if nothing was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the report, one finding per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for finding in &self.findings {
            out.push_str(&format!("{}: {}\n", finding.severity(), finding));
        }
        out
    }
}

/// Run all consistency checks on `working` relative to `shrink_wrap`.
pub fn check_consistency(working: &SchemaGraph, shrink_wrap: &SchemaGraph) -> ConsistencyReport {
    let mut sp = sws_trace::span!("core.consistency", types = working.type_count());

    let mut findings = check_named(working, "well_formed", |working, findings| {
        findings.extend(check_well_formed(working).into_iter().map(CrossIssue::Wf));
    });
    findings.append(&mut check_named(
        working,
        "shrink_wrap_relative",
        |working, findings| {
            findings.append(&mut check_shrink_wrap_relative(working, shrink_wrap));
        },
    ));
    findings.append(&mut check_named(
        working,
        "structure",
        |working, findings| {
            findings.append(&mut check_structure(working));
        },
    ));

    findings.sort_by_key(|f| f.severity());
    sp.record("findings", findings.len());
    sws_trace::counter("consistency.findings", findings.len() as u64);
    ConsistencyReport { findings }
}

/// Run one named check under a `core.consistency.<name>` span, recording how
/// many findings it produced.
fn check_named(
    working: &SchemaGraph,
    name: &'static str,
    check: impl FnOnce(&SchemaGraph, &mut Vec<CrossIssue>),
) -> Vec<CrossIssue> {
    let mut sp = sws_trace::span!("core.consistency.check", check = name);
    let mut findings = Vec::new();
    check(working, &mut findings);
    sp.record("findings", findings.len());
    findings
}

/// Keys and extents present in the shrink wrap schema but lost from the
/// same-named custom type.
fn check_shrink_wrap_relative(working: &SchemaGraph, shrink_wrap: &SchemaGraph) -> Vec<CrossIssue> {
    let mut findings = Vec::new();
    for (_, node) in working.types() {
        if let Some(sw_id) = shrink_wrap.type_id(&node.name) {
            let sw_node = shrink_wrap.ty(sw_id);
            if !sw_node.keys.is_empty() && node.keys.is_empty() {
                findings.push(CrossIssue::LostKey {
                    ty: node.name.clone(),
                });
            }
            if sw_node.extent.is_some() && node.extent.is_none() {
                findings.push(CrossIssue::LostExtent {
                    ty: node.name.clone(),
                });
            }
        }
    }
    findings
}

/// Structural findings: isolated types, abstract leaves, branching
/// instance-of chains.
fn check_structure(working: &SchemaGraph) -> Vec<CrossIssue> {
    let mut findings = Vec::new();
    for (id, node) in working.types() {
        let isolated = node.attrs.is_empty()
            && node.ops.is_empty()
            && node.rel_ends.is_empty()
            && node.parent_links.is_empty()
            && node.child_links.is_empty()
            && node.supertypes.is_empty()
            && node.subtypes.is_empty()
            && node.keys.is_empty();
        if isolated {
            findings.push(CrossIssue::IsolatedType {
                ty: node.name.clone(),
            });
        }
        if node.is_abstract && node.subtypes.is_empty() {
            findings.push(CrossIssue::AbstractLeaf {
                ty: node.name.clone(),
            });
        }
        let outgoing = query::hier_children(working, HierKind::InstanceOf, id).len();
        if outgoing > 1 {
            findings.push(CrossIssue::BranchingInstanceOf {
                ty: node.name.clone(),
                count: outgoing,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::ConceptKind;
    use crate::ops::ModOp;
    use crate::workspace::Workspace;
    use sws_model::schema_to_graph;
    use sws_odl::parse_schema;

    fn graph(src: &str) -> SchemaGraph {
        schema_to_graph(&parse_schema(src).unwrap()).unwrap()
    }

    #[test]
    fn clean_schema_is_clean() {
        let g = graph("interface A { attribute long x; keys x; extent as_; } interface B : A { }");
        let report = check_consistency(&g, &g);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn lost_key_and_extent_detected() {
        let sw = graph("interface A { attribute long x; keys x; extent as_; }");
        let mut ws = Workspace::new(sw);
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::DeleteKeyList {
                ty: "A".into(),
                keys: vec![sws_odl::Key::single("x")],
            },
        )
        .unwrap();
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::DeleteExtentName {
                ty: "A".into(),
                extent: "as_".into(),
            },
        )
        .unwrap();
        let report = check_consistency(ws.working(), ws.shrink_wrap());
        assert!(report
            .warnings()
            .any(|f| matches!(f, CrossIssue::LostKey { .. })));
        assert!(report
            .infos()
            .any(|f| matches!(f, CrossIssue::LostExtent { .. })));
    }

    #[test]
    fn dangling_reference_after_cross_concept_delete() {
        // Wagon wheel A references B via an attribute domain; deleting B
        // from its own wagon wheel leaves a dangling domain — exactly the
        // cross-concept-schema interaction the designer must hear about.
        let sw = graph("interface A { attribute set<B> bs; } interface B { attribute long x; }");
        let mut ws = Workspace::new(sw);
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::DeleteTypeDefinition { ty: "B".into() },
        )
        .unwrap();
        let report = check_consistency(ws.working(), ws.shrink_wrap());
        assert!(report
            .errors()
            .any(|f| matches!(f, CrossIssue::Wf(WfIssue::DanglingAttrDomain { .. }))));
    }

    #[test]
    fn isolated_type_detected() {
        let g = graph("interface Loner { } interface A { attribute long x; }");
        let report = check_consistency(&g, &g);
        assert!(report
            .warnings()
            .any(|f| matches!(f, CrossIssue::IsolatedType { ty } if ty == "Loner")));
    }

    #[test]
    fn abstract_leaf_detected() {
        let g = graph("abstract interface Root { attribute long x; }");
        let report = check_consistency(&g, &g);
        assert!(report
            .warnings()
            .any(|f| matches!(f, CrossIssue::AbstractLeaf { .. })));
    }

    #[test]
    fn branching_instance_of_reported() {
        let g = graph(
            r#"
            interface App {
                attribute string name;
                instance_of set<Ver> vers inverse Ver::app;
                instance_of set<Build> builds inverse Build::app;
            }
            interface Ver { attribute long n; instance_of App app inverse App::vers; }
            interface Build { attribute long n; instance_of App app inverse App::builds; }
            "#,
        );
        let report = check_consistency(&g, &g);
        assert!(report
            .infos()
            .any(|f| matches!(f, CrossIssue::BranchingInstanceOf { count: 2, .. })));
    }

    #[test]
    fn report_orders_errors_first() {
        let g =
            graph("interface Loner { } interface A { attribute set<Ghost> gs; attribute long x; }");
        let report = check_consistency(&g, &g);
        assert!(!report.is_clean());
        let severities: Vec<Severity> = report.findings.iter().map(|f| f.severity()).collect();
        let mut sorted = severities.clone();
        sorted.sort();
        assert_eq!(severities, sorted);
        assert!(report.render().contains("error:"));
    }
}
