//! Consistency checks over the customized user schema (paper §1.2:
//! "consistency checks to provide feedback to the designer about
//! interactions among the concept schemas").
//!
//! Because every concept schema is a view over the one integrated working
//! schema, interactions between customizations of *different* concept
//! schemas surface as global findings here: a type deleted from one wagon
//! wheel leaving dangling attribute domains referenced from another, a key
//! lost to an attribute move, an isolated type left behind by deletions,
//! and so on. Structural findings come from `sws-model`'s well-formedness
//! pass; shrink-wrap-relative findings are computed against the original
//! schema.
//!
//! Every check decomposes **per type**: the full report is exactly the
//! concatenation (in arena order, check-major) of each live type's own
//! findings, severity-sorted. [`ConsistencyState`] exploits that to recheck
//! incrementally — after an operation, only the types in the expanded
//! [`DirtySet`](crate::impact::DirtySet) are re-examined and their stored
//! findings replaced; the rest of the report is reused verbatim.
//!
//! The same decomposition makes the checks parallel: types are sharded
//! across worker threads (see [`crate::parallel`]), every worker traverses
//! one shared, frozen [`ClosureIndex`] with a worker-local [`WfScratch`],
//! and the per-type findings are merged back in arena order before the
//! stable severity sort — so the report is **byte identical** at every
//! thread count. `SWS_THREADS=1` takes the exact serial path on the graph's
//! own adjacency, reusing the engine's persistent scratch.
//!
//! The serial incremental recheck is the steady-state hot path and is
//! **allocation-free**: type names are interned [`Symbol`]s (equality is an
//! integer compare), the traversal scratch is warmed before the
//! `core.consistency.recheck` span opens, and a clean type produces three
//! empty (never-allocated) finding vectors. `tests/alloc_attribution.rs`
//! pins this at zero allocations.

use crate::impact::DirtySet;
use crate::parallel;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use sws_model::{
    check_type_into, Adjacency, ClosureIndex, SchemaGraph, Symbol, TypeId, WfIssue, WfScratch,
};
use sws_odl::HierKind;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Should be fixed before the custom schema is used.
    Error,
    /// Probably unintended; the designer should review it.
    Warning,
    /// Worth knowing.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// One consistency finding. Type names are interned [`Symbol`]s; they
/// render as the name itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrossIssue {
    /// A structural well-formedness problem.
    Wf(WfIssue),
    /// The shrink wrap type had keys; the custom type has none left.
    LostKey { ty: Symbol },
    /// The shrink wrap type had an extent; the custom type has none.
    LostExtent { ty: Symbol },
    /// A type with no members, relationships, links, or ISA edges —
    /// typically an orphan left behind by deletions in other concept
    /// schemas.
    IsolatedType { ty: Symbol },
    /// An abstract type with no remaining subtypes.
    AbstractLeaf { ty: Symbol },
    /// A type that is the generic entity of more than one instance-of link
    /// (the paper observed linear chains; branching is legal but notable).
    BranchingInstanceOf { ty: Symbol, count: usize },
}

impl CrossIssue {
    /// The severity of this finding.
    pub fn severity(&self) -> Severity {
        match self {
            CrossIssue::Wf(_) => Severity::Error,
            CrossIssue::LostKey { .. } => Severity::Warning,
            CrossIssue::IsolatedType { .. } => Severity::Warning,
            CrossIssue::AbstractLeaf { .. } => Severity::Warning,
            CrossIssue::LostExtent { .. } => Severity::Info,
            CrossIssue::BranchingInstanceOf { .. } => Severity::Info,
        }
    }
}

impl fmt::Display for CrossIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossIssue::Wf(issue) => write!(f, "{issue}"),
            CrossIssue::LostKey { ty } => write!(
                f,
                "`{ty}` had key(s) in the shrink wrap schema but has none in the custom schema"
            ),
            CrossIssue::LostExtent { ty } => {
                write!(
                    f,
                    "`{ty}` lost its extent relative to the shrink wrap schema"
                )
            }
            CrossIssue::IsolatedType { ty } => write!(
                f,
                "`{ty}` is isolated (no members, relationships, links, or ISA edges)"
            ),
            CrossIssue::AbstractLeaf { ty } => {
                write!(f, "abstract type `{ty}` has no subtypes left")
            }
            CrossIssue::BranchingInstanceOf { ty, count } => write!(
                f,
                "`{ty}` is the generic entity of {count} instance-of links (branching chain)"
            ),
        }
    }
}

/// The full consistency report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// All findings, errors first.
    pub findings: Vec<CrossIssue>,
}

impl ConsistencyReport {
    /// Findings at [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &CrossIssue> {
        self.findings
            .iter()
            .filter(|i| i.severity() == Severity::Error)
    }

    /// Findings at [`Severity::Warning`].
    pub fn warnings(&self) -> impl Iterator<Item = &CrossIssue> {
        self.findings
            .iter()
            .filter(|i| i.severity() == Severity::Warning)
    }

    /// Findings at [`Severity::Info`].
    pub fn infos(&self) -> impl Iterator<Item = &CrossIssue> {
        self.findings
            .iter()
            .filter(|i| i.severity() == Severity::Info)
    }

    /// True if nothing was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the report, one finding per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for finding in &self.findings {
            out.push_str(&format!("{}: {}\n", finding.severity(), finding));
        }
        out
    }
}

/// Run all consistency checks on `working` relative to `shrink_wrap`.
///
/// Types are sharded across [`crate::parallel::workers`] worker threads
/// over one shared frozen [`ClosureIndex`]; the per-type findings are
/// merged back in arena order (check-major) before the stable severity
/// sort, so the report does not depend on the thread count.
pub fn check_consistency(working: &SchemaGraph, shrink_wrap: &SchemaGraph) -> ConsistencyReport {
    let mut sp = sws_trace::span!("core.consistency", types = working.type_count());

    let ids: Vec<TypeId> = working.types().map(|(id, _)| id).collect();
    let mut scratch = WfScratch::default();
    let per_type = compute_findings_for(working, shrink_wrap, &mut scratch, &ids);
    let findings = assemble_findings(per_type.iter());

    sp.record("findings", findings.len());
    sws_trace::counter("consistency.findings", findings.len() as u64);
    ConsistencyReport { findings }
}

/// All three per-type checks for every id in `ids`, in order. Serial runs
/// (one worker, or fewer than the parallel threshold) traverse the graph's
/// own adjacency with the caller's scratch; parallel runs freeze one
/// [`ClosureIndex`] and share it read-only across all workers, each with a
/// worker-local scratch. The two backends produce byte-identical
/// traversals (pinned by tests in `sws-model`), so the findings do not
/// depend on which path ran.
fn compute_findings_for(
    working: &SchemaGraph,
    shrink_wrap: &SchemaGraph,
    scratch: &mut WfScratch,
    ids: &[TypeId],
) -> Vec<TypeFindings> {
    let check_gen_cycles = working.type_count() < 10_000;
    if parallel::parallelism_for(ids.len()) <= 1 {
        scratch.ensure_slots(working.type_slots(), working.link_slots());
        ids.iter()
            .map(|&id| {
                compute_type_findings(working, shrink_wrap, working, scratch, check_gen_cycles, id)
            })
            .collect()
    } else {
        let index = ClosureIndex::build(working);
        parallel::map_with(ids, WfScratch::default, |scratch, _, &id| {
            scratch.ensure_slots(working.type_slots(), working.link_slots());
            compute_type_findings(working, shrink_wrap, &index, scratch, check_gen_cycles, id)
        })
    }
}

/// Concatenate per-type findings check-major (all wf, then all
/// shrink-wrap-relative, then all structure — each in the order of
/// `per_type`), then severity-sort stably: exactly the order every
/// consistency report in this crate uses.
fn assemble_findings<'a>(
    per_type: impl Iterator<Item = &'a TypeFindings> + Clone,
) -> Vec<CrossIssue> {
    let mut findings = Vec::new();
    for group in 0..3 {
        for tf in per_type.clone() {
            let src = match group {
                0 => &tf.wf,
                1 => &tf.relative,
                _ => &tf.structure,
            };
            findings.extend(src.iter().cloned());
        }
    }
    findings.sort_by_key(|f| f.severity());
    findings
}

/// Shrink-wrap-relative findings for one type. Both graphs share the
/// global interner, so the cross-graph name lookup is a hash of one `u32`.
fn type_shrink_wrap_relative(
    working: &SchemaGraph,
    shrink_wrap: &SchemaGraph,
    id: TypeId,
    findings: &mut Vec<CrossIssue>,
) {
    let node = working.ty(id);
    if let Some(sw_id) = shrink_wrap.type_id_sym(node.name) {
        let sw_node = shrink_wrap.ty(sw_id);
        if !sw_node.keys.is_empty() && node.keys.is_empty() {
            findings.push(CrossIssue::LostKey { ty: node.name });
        }
        if sw_node.extent.is_some() && node.extent.is_none() {
            findings.push(CrossIssue::LostExtent { ty: node.name });
        }
    }
}

/// Structural findings for one type: isolated types, abstract leaves,
/// branching instance-of chains.
fn type_structure(working: &SchemaGraph, id: TypeId, findings: &mut Vec<CrossIssue>) {
    let node = working.ty(id);
    let isolated = node.attrs.is_empty()
        && node.ops.is_empty()
        && node.rel_ends.is_empty()
        && node.parent_links.is_empty()
        && node.child_links.is_empty()
        && node.supertypes.is_empty()
        && node.subtypes.is_empty()
        && node.keys.is_empty();
    if isolated {
        findings.push(CrossIssue::IsolatedType { ty: node.name });
    }
    if node.is_abstract && node.subtypes.is_empty() {
        findings.push(CrossIssue::AbstractLeaf { ty: node.name });
    }
    let outgoing = node
        .parent_links
        .iter()
        .filter(|&&l| working.link(l).kind == HierKind::InstanceOf)
        .count();
    if outgoing > 1 {
        findings.push(CrossIssue::BranchingInstanceOf {
            ty: node.name,
            count: outgoing,
        });
    }
}

/// Findings for one type, grouped by the check that produced them. The
/// groups are kept separate so a report can be assembled in exactly the
/// order [`check_consistency`] produces: check-major, arena-order-minor,
/// then a stable severity sort.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct TypeFindings {
    wf: Vec<CrossIssue>,
    relative: Vec<CrossIssue>,
    structure: Vec<CrossIssue>,
}

/// Persistent, incrementally-maintained consistency findings, keyed by
/// interned type name.
///
/// Owned by [`Workspace`](crate::workspace::Workspace). After each applied
/// operation the workspace records the op's [`DirtySet`]; the next call to
/// [`ConsistencyState::sync`] expands the accumulated seed along the
/// generalization hierarchy and order-by/reference dependencies, re-runs the
/// per-type checks for just those types, and merges the results into the
/// stored per-type findings. [`ConsistencyState::report`] then assembles a
/// [`ConsistencyReport`] identical to what [`check_consistency`] would
/// compute from scratch.
///
/// The state owns a persistent [`WfScratch`] so the steady-state serial
/// recheck touches no allocator at all — the `core.consistency.recheck`
/// span is the zero-allocation window the alloc-attribution tests measure.
#[derive(Debug, Clone)]
pub struct ConsistencyState {
    by_type: HashMap<Symbol, TypeFindings>,
    pending: DirtySet,
    /// Everything must be recomputed (initial state, or after a reset /
    /// rollback / explicit invalidation).
    full_pending: bool,
    /// Reusable traversal scratch for the serial recheck path.
    scratch: WfScratch,
}

impl Default for ConsistencyState {
    fn default() -> Self {
        ConsistencyState::new()
    }
}

impl ConsistencyState {
    /// A state with everything pending: the first [`sync`](Self::sync) runs
    /// a full recheck.
    pub fn new() -> Self {
        ConsistencyState {
            by_type: HashMap::new(),
            pending: DirtySet::default(),
            full_pending: true,
            scratch: WfScratch::default(),
        }
    }

    /// Record the dirty seed of one applied operation.
    pub fn record(&mut self, dirty: &DirtySet) {
        if !self.full_pending {
            self.pending.merge(dirty);
        }
    }

    /// Forget everything; the next sync recomputes from scratch.
    pub fn invalidate(&mut self) {
        self.full_pending = true;
        self.pending = DirtySet::default();
    }

    /// Bring the stored findings up to date with `working`.
    ///
    /// Incremental path: expand the pending seed (self + ancestors +
    /// descendants of every touched live type, plus relationship/link
    /// partners whose order-bys depend on them, plus every type referencing
    /// an added/deleted name in a domain or signature), recheck those types,
    /// drop entries for dead types. Returns the number of types rechecked.
    pub fn sync(&mut self, working: &SchemaGraph, shrink_wrap: &SchemaGraph) -> usize {
        if self.full_pending {
            let mut sp =
                sws_trace::span!("core.consistency.full_sync", types = working.type_count());
            self.by_type.clear();
            let ids: Vec<TypeId> = working.types().map(|(id, _)| id).collect();
            let per_type = compute_findings_for(working, shrink_wrap, &mut self.scratch, &ids);
            let rechecked = ids.len();
            for (id, findings) in ids.into_iter().zip(per_type) {
                self.by_type.insert(working.ty(id).name, findings);
            }
            self.full_pending = false;
            self.pending = DirtySet::default();
            sp.record("rechecked", rechecked);
            return rechecked;
        }
        if self.pending.is_empty() {
            return 0;
        }
        let dirty = std::mem::take(&mut self.pending);
        let mut sp = sws_trace::span!("core.consistency.incremental_sync");

        // 1. Types referencing an added/deleted name in an attribute domain
        //    or operation signature may gain/lose a dangling-reference
        //    finding.
        let mut names: BTreeSet<Symbol> = dirty.touched;
        if !dirty.existence_changed.is_empty() {
            let mut esp = sws_trace::span!(
                "core.consistency.existence_scan",
                changed = dirty.existence_changed.len()
            );
            // The reference scan visits every live type; on large graphs it
            // dominates the incremental sync, so shard it too.
            let ids: Vec<TypeId> = working.types().map(|(id, _)| id).collect();
            let hits = parallel::map(&ids, |_, &id| {
                type_references_any(working, working.ty(id), &dirty.existence_changed)
            });
            let before = names.len();
            for (&id, hit) in ids.iter().zip(hits) {
                if hit {
                    names.insert(working.ty(id).name);
                }
            }
            esp.record("referencing", names.len() - before);
        }

        let closure = {
            let mut csp = sws_trace::span!("core.consistency.closure", seeds = names.len());
            self.scratch
                .ensure_slots(working.type_slots(), working.link_slots());

            // 2. Hierarchy closure: inherited members, key/order-by
            //    visibility, and inheritance conflicts travel along ISA
            //    edges both ways.
            let mut closure: BTreeSet<TypeId> = BTreeSet::new();
            let mut reach: Vec<TypeId> = Vec::new();
            for &name in &names {
                if let Some(id) = working.type_id_sym(name) {
                    closure.insert(id);
                    self.scratch.closure.ancestors_into(working, id, &mut reach);
                    closure.extend(reach.iter().copied());
                    self.scratch
                        .closure
                        .descendants_into(working, id, &mut reach);
                    closure.extend(reach.iter().copied());
                } else {
                    // Deleted type: drop its stored findings.
                    self.by_type.remove(&name);
                }
            }

            // 3. Order-by dependents: a relationship end's order-by is
            //    checked against the *target* type's visible attributes, and
            //    a link parent's order-by against the *child*'s. If T
            //    changed, every partner whose order-by looks at T must be
            //    rechecked too.
            let mut dependents: BTreeSet<TypeId> = BTreeSet::new();
            for &t in &closure {
                let node = working.ty(t);
                for &(r, e) in &node.rel_ends {
                    dependents.insert(working.rel(r).other(e).owner);
                }
                for &l in &node.child_links {
                    dependents.insert(working.link(l).parent);
                }
            }
            closure.extend(dependents);
            csp.record("expanded", closure.len());
            closure
        };

        let ids: Vec<TypeId> = closure.into_iter().collect();
        let rechecked = ids.len();
        let check_gen_cycles = working.type_count() < 10_000;
        if parallel::parallelism_for(rechecked) <= 1 {
            // Warm the scratch *before* the span opens: everything inside
            // the recheck span is steady-state and allocation-free.
            self.scratch
                .ensure_slots(working.type_slots(), working.link_slots());
            let _rsp = sws_trace::span!("core.consistency.recheck", types = rechecked);
            for &id in &ids {
                let tf = compute_type_findings(
                    working,
                    shrink_wrap,
                    working,
                    &mut self.scratch,
                    check_gen_cycles,
                    id,
                );
                self.by_type.insert(working.ty(id).name, tf);
            }
        } else {
            let _rsp = sws_trace::span!("core.consistency.recheck", types = rechecked);
            let index = ClosureIndex::build(working);
            let per_type = parallel::map_with(&ids, WfScratch::default, |scratch, _, &id| {
                scratch.ensure_slots(working.type_slots(), working.link_slots());
                compute_type_findings(working, shrink_wrap, &index, scratch, check_gen_cycles, id)
            });
            for (&id, tf) in ids.iter().zip(per_type) {
                self.by_type.insert(working.ty(id).name, tf);
            }
        }
        sp.record("rechecked", rechecked);
        sws_trace::counter("consistency.dirty_types", rechecked as u64);
        sws_trace::counter("consistency.incremental_syncs", 1);
        rechecked
    }

    /// Assemble the report from the stored per-type findings, in exactly
    /// the order [`check_consistency`] produces.
    pub fn report(&self, working: &SchemaGraph) -> ConsistencyReport {
        debug_assert!(!self.full_pending, "report() before sync()");
        let mut sp = sws_trace::span!("core.consistency.report", types = self.by_type.len());
        let mut findings = Vec::new();
        for group in 0..3 {
            for (_, node) in working.types() {
                if let Some(tf) = self.by_type.get(&node.name) {
                    let src = match group {
                        0 => &tf.wf,
                        1 => &tf.relative,
                        _ => &tf.structure,
                    };
                    findings.extend(src.iter().cloned());
                }
            }
        }
        findings.sort_by_key(|f| f.severity());
        sp.record("findings", findings.len());
        ConsistencyReport { findings }
    }
}

/// All three per-type checks for one type, traversing `adj` (the graph
/// itself on the serial path, a shared frozen [`ClosureIndex`] on the
/// parallel path). Allocation-free when the type is clean and the scratch
/// is warm: the three finding vectors stay at capacity zero.
fn compute_type_findings<A: Adjacency>(
    working: &SchemaGraph,
    shrink_wrap: &SchemaGraph,
    adj: &A,
    scratch: &mut WfScratch,
    check_gen_cycles: bool,
    id: TypeId,
) -> TypeFindings {
    let mut issues = Vec::new();
    check_type_into(working, adj, scratch, id, check_gen_cycles, &mut issues);
    let mut tf = TypeFindings {
        wf: issues.into_iter().map(CrossIssue::Wf).collect(),
        ..TypeFindings::default()
    };
    type_shrink_wrap_relative(working, shrink_wrap, id, &mut tf.relative);
    type_structure(working, id, &mut tf.structure);
    tf
}

/// Does any attribute domain or operation signature of `node` mention one
/// of `names`? The referenced names come back as `&str`; the non-inserting
/// [`Symbol::try_lookup`] makes the membership probe allocation-free, and a
/// miss is a sound negative — a name that was never interned cannot name
/// any graph construct.
fn type_references_any(
    g: &SchemaGraph,
    node: &sws_model::TypeNode,
    names: &BTreeSet<Symbol>,
) -> bool {
    let mut refs: Vec<&str> = Vec::new();
    for &a in &node.attrs {
        g.attr(a).ty.referenced_types(&mut refs);
    }
    for &o in &node.ops {
        let op = &g.op(o).op;
        op.return_type.referenced_types(&mut refs);
        for p in &op.args {
            p.ty.referenced_types(&mut refs);
        }
    }
    refs.iter()
        .any(|r| Symbol::try_lookup(r).is_some_and(|s| names.contains(&s)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::ConceptKind;
    use crate::ops::ModOp;
    use crate::workspace::Workspace;
    use sws_model::schema_to_graph;
    use sws_odl::parse_schema;

    fn graph(src: &str) -> SchemaGraph {
        schema_to_graph(&parse_schema(src).unwrap()).unwrap()
    }

    #[test]
    fn clean_schema_is_clean() {
        let g = graph("interface A { attribute long x; keys x; extent as_; } interface B : A { }");
        let report = check_consistency(&g, &g);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn lost_key_and_extent_detected() {
        let sw = graph("interface A { attribute long x; keys x; extent as_; }");
        let mut ws = Workspace::new(sw);
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::DeleteKeyList {
                ty: "A".into(),
                keys: vec![sws_odl::Key::single("x")],
            },
        )
        .unwrap();
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::DeleteExtentName {
                ty: "A".into(),
                extent: "as_".into(),
            },
        )
        .unwrap();
        let report = check_consistency(ws.working(), ws.shrink_wrap());
        assert!(report
            .warnings()
            .any(|f| matches!(f, CrossIssue::LostKey { .. })));
        assert!(report
            .infos()
            .any(|f| matches!(f, CrossIssue::LostExtent { .. })));
    }

    #[test]
    fn dangling_reference_after_cross_concept_delete() {
        // Wagon wheel A references B via an attribute domain; deleting B
        // from its own wagon wheel leaves a dangling domain — exactly the
        // cross-concept-schema interaction the designer must hear about.
        let sw = graph("interface A { attribute set<B> bs; } interface B { attribute long x; }");
        let mut ws = Workspace::new(sw);
        ws.apply(
            ConceptKind::WagonWheel,
            ModOp::DeleteTypeDefinition { ty: "B".into() },
        )
        .unwrap();
        let report = check_consistency(ws.working(), ws.shrink_wrap());
        assert!(report
            .errors()
            .any(|f| matches!(f, CrossIssue::Wf(WfIssue::DanglingAttrDomain { .. }))));
    }

    #[test]
    fn isolated_type_detected() {
        let g = graph("interface Loner { } interface A { attribute long x; }");
        let report = check_consistency(&g, &g);
        assert!(report
            .warnings()
            .any(|f| matches!(f, CrossIssue::IsolatedType { ty } if ty == "Loner")));
    }

    #[test]
    fn abstract_leaf_detected() {
        let g = graph("abstract interface Root { attribute long x; }");
        let report = check_consistency(&g, &g);
        assert!(report
            .warnings()
            .any(|f| matches!(f, CrossIssue::AbstractLeaf { .. })));
    }

    #[test]
    fn branching_instance_of_reported() {
        let g = graph(
            r#"
            interface App {
                attribute string name;
                instance_of set<Ver> vers inverse Ver::app;
                instance_of set<Build> builds inverse Build::app;
            }
            interface Ver { attribute long n; instance_of App app inverse App::vers; }
            interface Build { attribute long n; instance_of App app inverse App::builds; }
            "#,
        );
        let report = check_consistency(&g, &g);
        assert!(report
            .infos()
            .any(|f| matches!(f, CrossIssue::BranchingInstanceOf { count: 2, .. })));
    }

    #[test]
    fn report_orders_errors_first() {
        let g =
            graph("interface Loner { } interface A { attribute set<Ghost> gs; attribute long x; }");
        let report = check_consistency(&g, &g);
        assert!(!report.is_clean());
        let severities: Vec<Severity> = report.findings.iter().map(|f| f.severity()).collect();
        let mut sorted = severities.clone();
        sorted.sort();
        assert_eq!(severities, sorted);
        assert!(report.render().contains("error:"));
    }
}
