//! Impact reports: "all of the changes that follow from a given change"
//! (paper activity 9).
//!
//! An [`ImpactReport`] is the designer-facing rendering of the propagation
//! a modification triggered — built from the graph's
//! [`sws_model::CascadeReport`] plus any notes from the apply layer.

use crate::ops::ModOp;
use std::collections::BTreeSet;
use std::fmt;
use sws_model::{CascadeReport, Symbol};
use sws_odl::HierKind;

/// One propagated change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImpactEntry {
    /// An attribute was removed with its type.
    RemovedAttribute { ty: Symbol, name: Symbol },
    /// An operation was removed with its type.
    RemovedOperation { ty: Symbol, name: Symbol },
    /// A relationship was removed (an endpoint vanished).
    RemovedRelationship {
        ty_a: Symbol,
        path_a: Symbol,
        ty_b: Symbol,
        path_b: Symbol,
    },
    /// A part-of / instance-of link was removed.
    RemovedLink {
        kind: HierKind,
        parent: Symbol,
        path: Symbol,
        child: Symbol,
    },
    /// A supertype edge was removed.
    RemovedSupertypeEdge { sub: Symbol, sup: Symbol },
    /// A subtype was re-wired to a new supertype.
    RewiredSubtype { sub: Symbol, new_sup: Symbol },
    /// A subtype was left without supertypes.
    DetachedSubtype { sub: Symbol },
    /// A key was pruned because an attribute it used vanished.
    PrunedKey { ty: Symbol, key: String },
    /// An order-by entry was pruned.
    PrunedOrderBy {
        ty: Symbol,
        path: Symbol,
        attribute: Symbol,
    },
    /// A free-form automatic adjustment.
    Note(String),
}

impl fmt::Display for ImpactEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ImpactEntry::*;
        match self {
            RemovedAttribute { ty, name } => write!(f, "removed attribute `{ty}::{name}`"),
            RemovedOperation { ty, name } => write!(f, "removed operation `{ty}::{name}`"),
            RemovedRelationship {
                ty_a,
                path_a,
                ty_b,
                path_b,
            } => write!(
                f,
                "removed relationship `{ty_a}::{path_a}` <-> `{ty_b}::{path_b}`"
            ),
            RemovedLink {
                kind,
                parent,
                path,
                child,
            } => {
                write!(f, "removed {kind} link `{parent}::{path}` -> `{child}`")
            }
            RemovedSupertypeEdge { sub, sup } => {
                write!(f, "removed supertype edge `{sub}` isa `{sup}`")
            }
            RewiredSubtype { sub, new_sup } => {
                write!(f, "re-wired subtype `{sub}` to supertype `{new_sup}`")
            }
            DetachedSubtype { sub } => write!(f, "subtype `{sub}` left without supertypes"),
            PrunedKey { ty, key } => write!(f, "pruned key `{key}` of `{ty}`"),
            PrunedOrderBy {
                ty,
                path,
                attribute,
            } => {
                write!(
                    f,
                    "pruned `{attribute}` from the order-by of `{ty}::{path}`"
                )
            }
            Note(s) => f.write_str(s),
        }
    }
}

/// Every propagated change of one applied operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImpactReport {
    /// The entries, in propagation order.
    pub entries: Vec<ImpactEntry>,
}

impl ImpactReport {
    /// Build a report from a cascade plus apply-layer notes.
    pub fn from_cascade(cascade: &CascadeReport, notes: &[String]) -> Self {
        let mut entries = Vec::new();
        for &(ty, name) in &cascade.removed_attrs {
            entries.push(ImpactEntry::RemovedAttribute { ty, name });
        }
        for &(ty, name) in &cascade.removed_ops {
            entries.push(ImpactEntry::RemovedOperation { ty, name });
        }
        for &(ty_a, path_a, ty_b, path_b) in &cascade.removed_rels {
            entries.push(ImpactEntry::RemovedRelationship {
                ty_a,
                path_a,
                ty_b,
                path_b,
            });
        }
        for &(kind, parent, path, child, _) in &cascade.removed_links {
            entries.push(ImpactEntry::RemovedLink {
                kind,
                parent,
                path,
                child,
            });
        }
        for &(sub, sup) in &cascade.removed_supertype_edges {
            entries.push(ImpactEntry::RemovedSupertypeEdge { sub, sup });
        }
        for &(sub, new_sup) in &cascade.rewired_subtypes {
            entries.push(ImpactEntry::RewiredSubtype { sub, new_sup });
        }
        for &sub in &cascade.detached_subtypes {
            entries.push(ImpactEntry::DetachedSubtype { sub });
        }
        for (ty, key) in &cascade.keys_pruned {
            entries.push(ImpactEntry::PrunedKey {
                ty: *ty,
                key: key.clone(),
            });
        }
        for &(ty, path, attribute) in &cascade.order_by_pruned {
            entries.push(ImpactEntry::PrunedOrderBy {
                ty,
                path,
                attribute,
            });
        }
        for note in notes {
            entries.push(ImpactEntry::Note(note.clone()));
        }
        ImpactReport { entries }
    }

    /// True if the operation had no propagated effects.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The type names an applied operation (plus its cascade) may have affected
/// — the *seed* of the incremental consistency recheck.
///
/// `touched` names types whose own definition, edges, or members changed.
/// `existence_changed` names types that were created or deleted; any type
/// referencing such a name in an attribute domain or operation signature may
/// gain or lose a dangling-reference finding, so the consistency engine
/// scans for referents of these names specifically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    /// Names of types whose definition may have changed.
    pub touched: BTreeSet<Symbol>,
    /// Names of types that were added or deleted.
    pub existence_changed: BTreeSet<Symbol>,
}

impl DirtySet {
    /// Derive the seed from an operation and the cascade it triggered.
    ///
    /// Deliberately conservative: every type name mentioned by the op or by
    /// any cascade entry is included. The consistency engine expands this
    /// seed along the hierarchy before rechecking.
    pub fn from_op(op: &ModOp, cascade: &CascadeReport) -> Self {
        let mut set = DirtySet::default();
        set.add_op(op);
        set.add_cascade(cascade);
        set
    }

    /// True if nothing was touched.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty() && self.existence_changed.is_empty()
    }

    /// Number of distinct names in the seed (touched plus
    /// existence-changed). The incremental consistency sync reports this
    /// as its dirty-set size when deciding whether to fan out.
    pub fn len(&self) -> usize {
        self.touched.len() + self.existence_changed.len()
    }

    /// Fold another dirty set into this one.
    pub fn merge(&mut self, other: &DirtySet) {
        self.touched.extend(other.touched.iter().copied());
        self.existence_changed
            .extend(other.existence_changed.iter().copied());
    }

    fn touch(&mut self, name: &str) {
        self.touched.insert(Symbol::intern(name));
    }

    fn add_op(&mut self, op: &ModOp) {
        use ModOp::*;
        // Every op names its subject type.
        self.touch(op.subject_type());
        match op {
            AddTypeDefinition { ty } | DeleteTypeDefinition { ty } => {
                self.existence_changed.insert(Symbol::intern(ty));
            }
            AddSupertype { supertype, .. } | DeleteSupertype { supertype, .. } => {
                self.touch(supertype);
            }
            ModifySupertype { old, new, .. } => {
                for s in old.iter().chain(new.iter()) {
                    self.touch(s);
                }
            }
            ModifyAttribute { new_ty, .. } | ModifyOperation { new_ty, .. } => {
                self.touch(new_ty);
            }
            AddRelationship { target, .. }
            | AddPartOfRelationship { target, .. }
            | AddInstanceOfRelationship { target, .. } => {
                self.touch(target);
            }
            ModifyRelationshipTargetType {
                old_target,
                new_target,
                ..
            }
            | ModifyPartOfTargetType {
                old_target,
                new_target,
                ..
            }
            | ModifyInstanceOfTargetType {
                old_target,
                new_target,
                ..
            } => {
                self.touch(old_target);
                self.touch(new_target);
            }
            _ => {}
        }
    }

    fn add_cascade(&mut self, cascade: &CascadeReport) {
        for (ty, _) in &cascade.removed_attrs {
            self.touch(ty);
        }
        for (ty, _) in &cascade.removed_ops {
            self.touch(ty);
        }
        for (a, _, b, _) in &cascade.removed_rels {
            self.touch(a);
            self.touch(b);
        }
        for (_, parent, _, child, _) in &cascade.removed_links {
            self.touch(parent);
            self.touch(child);
        }
        for (sub, sup) in &cascade.removed_supertype_edges {
            self.touch(sub);
            self.touch(sup);
        }
        for (sub, new_sup) in &cascade.rewired_subtypes {
            self.touch(sub);
            self.touch(new_sup);
        }
        for sub in &cascade.detached_subtypes {
            self.touch(sub);
        }
        for (ty, _) in &cascade.keys_pruned {
            self.touch(ty);
        }
        for (ty, _, _) in &cascade.order_by_pruned {
            self.touch(ty);
        }
    }
}

impl fmt::Display for ImpactReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for entry in &self.entries {
            writeln!(f, "  - {entry}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_cascade_collects_everything() {
        let cascade = CascadeReport {
            removed_attrs: vec![("B".into(), "x".into())],
            removed_ops: vec![("B".into(), "f".into())],
            removed_rels: vec![("B".into(), "r".into(), "A".into(), "inv".into())],
            removed_links: vec![(
                HierKind::PartOf,
                "B".into(),
                "parts".into(),
                "C".into(),
                "whole".into(),
            )],
            removed_supertype_edges: vec![("B".into(), "A".into())],
            rewired_subtypes: vec![("C".into(), "A".into())],
            detached_subtypes: vec!["D".into()],
            keys_pruned: vec![("B".into(), "x".into())],
            order_by_pruned: vec![("A".into(), "bs".into(), "x".into())],
        };
        let report = ImpactReport::from_cascade(&cascade, &["note".into()]);
        assert_eq!(report.len(), 10);
        let text = report.to_string();
        assert!(text.contains("removed attribute `B::x`"));
        assert!(text.contains("re-wired subtype `C`"));
        assert!(text.contains("note"));
    }

    #[test]
    fn empty_report() {
        let report = ImpactReport::from_cascade(&CascadeReport::default(), &[]);
        assert!(report.is_empty());
        assert_eq!(report.to_string(), "");
    }

    #[test]
    fn dirty_set_collects_op_and_cascade_names() {
        let cascade = CascadeReport {
            removed_rels: vec![("B".into(), "r".into(), "A".into(), "inv".into())],
            rewired_subtypes: vec![("C".into(), "A".into())],
            ..CascadeReport::default()
        };
        let set = DirtySet::from_op(&ModOp::DeleteTypeDefinition { ty: "B".into() }, &cascade);
        for name in ["A", "B", "C"] {
            assert!(
                set.touched.contains(&Symbol::intern(name)),
                "{name} missing: {set:?}"
            );
        }
        assert!(set.existence_changed.contains(&Symbol::intern("B")));
        assert!(!set.is_empty());

        let mut merged = DirtySet::default();
        merged.merge(&set);
        assert_eq!(merged, set);
    }

    #[test]
    fn dirty_set_covers_move_endpoints() {
        let set = DirtySet::from_op(
            &ModOp::ModifyRelationshipTargetType {
                ty: "Dept".into(),
                path: "has".into(),
                old_target: "Employee".into(),
                new_target: "Person".into(),
            },
            &CascadeReport::default(),
        );
        for name in ["Dept", "Employee", "Person"] {
            assert!(
                set.touched.contains(&Symbol::intern(name)),
                "{name} missing: {set:?}"
            );
        }
        assert!(set.existence_changed.is_empty());
    }
}
