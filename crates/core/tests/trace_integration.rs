//! Integration test: the tracing threaded through the schema-reuse
//! pipeline. Runs a whole parse → decompose → modify session under a
//! thread-local recorder and checks the span stream: one `ws.apply` span
//! per operation with the right op-kind field, pipeline-stage spans nested
//! under it, counters that add up, and a JSONL export that the hand-written
//! checker accepts.

use sws_core::{ConceptKind, ModOp, Workspace};
use sws_model::schema_to_graph;
use sws_odl::parse_schema;
use sws_trace::{to_jsonl, Event, EventKind, FieldValue, Recorder};

const SRC: &str = r#"
schema Dept {
    interface Person { attribute string name; }
    interface Employee : Person {
        relationship Department works_in_a inverse Department::has;
    }
    interface Department {
        relationship set<Employee> has inverse Employee::works_in_a;
    }
}"#;

fn open_spans<'a>(events: &'a [Event], name: &str) -> Vec<&'a Event> {
    events
        .iter()
        .filter(|e| e.name == name && matches!(e.kind, EventKind::SpanOpen))
        .collect()
}

fn field<'a>(e: &'a Event, key: &str) -> &'a FieldValue {
    e.fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("span `{}` missing field `{key}`", e.name))
}

#[test]
fn pipeline_session_traces_every_layer() {
    let rec = Recorder::new();
    let _guard = rec.install_thread();

    let schema = parse_schema(SRC).unwrap();
    let graph = schema_to_graph(&schema).unwrap();
    let mut ws = Workspace::new(graph);
    let _decomp = ws.concept_schemas();

    let ops = vec![
        ModOp::AddTypeDefinition {
            ty: "Campus".into(),
        },
        ModOp::AddAttribute {
            ty: "Campus".into(),
            domain: sws_odl::DomainType::String,
            size: None,
            name: "city".into(),
        },
        ModOp::AddTypeDefinition { ty: "Lab".into() },
    ];
    ws.apply_script(ConceptKind::WagonWheel, ops.clone())
        .unwrap();

    let session = rec.take();

    // One ws.apply span per op, each carrying its op kind and context.
    let applies = open_spans(&session.events, "ws.apply");
    assert_eq!(applies.len(), ops.len());
    let kinds: Vec<_> = applies.iter().map(|e| field(e, "op").clone()).collect();
    assert_eq!(
        kinds,
        vec![
            FieldValue::Str("add_type_definition".into()),
            FieldValue::Str("add_attribute".into()),
            FieldValue::Str("add_type_definition".into()),
        ]
    );
    for e in &applies {
        assert_eq!(*field(e, "context"), FieldValue::Str("wagon_wheel".into()));
    }

    // Pipeline stages are children of their ws.apply span.
    let pre = open_spans(&session.events, "core.preconditions");
    let mutate = open_spans(&session.events, "core.apply_op");
    assert_eq!(pre.len(), ops.len());
    assert_eq!(mutate.len(), ops.len());
    let apply_ids: Vec<u64> = applies.iter().map(|e| e.span_id).collect();
    for (p, m) in pre.iter().zip(&mutate) {
        assert!(apply_ids.contains(&p.parent), "preconditions not nested");
        assert!(apply_ids.contains(&m.parent), "apply_op not nested");
    }

    // The ws.apply spans themselves sit inside the ws.apply_script span.
    let script = open_spans(&session.events, "ws.apply_script");
    assert_eq!(script.len(), 1);
    for e in &applies {
        assert_eq!(e.parent, script[0].span_id);
    }

    // Parse and decomposition layers traced too.
    assert_eq!(open_spans(&session.events, "odl.parse").len(), 1);
    assert_eq!(open_spans(&session.events, "core.decompose").len(), 1);
    assert!(!open_spans(&session.events, "core.decompose.wagon_wheels").is_empty());

    // Counters add up; span-close auto-feeds the latency histogram.
    assert_eq!(session.counter("ws.ops_applied"), ops.len() as u64);
    assert_eq!(session.counter("ws.ops_rejected"), 0);
    assert!(session.counter("odl.tokens") > 0);
    let hist = session.histogram("ws.apply").expect("ws.apply histogram");
    assert_eq!(hist.count(), ops.len() as u64);

    // The whole session exports as checker-valid JSONL.
    let jsonl = to_jsonl(&session);
    let lines = sws_trace::export::jsonl::check(&jsonl).unwrap();
    assert!(lines >= session.events.len());
}

#[test]
fn rejected_op_records_verdict_and_counter() {
    let rec = Recorder::new();
    let _guard = rec.install_thread();

    let graph = schema_to_graph(&parse_schema(SRC).unwrap()).unwrap();
    let mut ws = Workspace::new(graph);
    // A move issued from a wagon wheel is rejected by the Table 1 matrix.
    ws.apply(
        ConceptKind::WagonWheel,
        ModOp::ModifyAttribute {
            ty: "Person".into(),
            name: "name".into(),
            new_ty: "Employee".into(),
        },
    )
    .unwrap_err();

    let session = rec.take();
    let close = session
        .closed_spans("ws.apply")
        .next()
        .expect("ws.apply span closed");
    assert_eq!(
        *field(close, "verdict"),
        FieldValue::Str("not_permitted".into())
    );
    assert_eq!(session.counter("ws.ops_rejected"), 1);
    assert_eq!(session.counter("ws.ops_applied"), 0);
}

#[test]
fn consistency_check_traces_span_and_findings_counter() {
    let rec = Recorder::new();
    let _guard = rec.install_thread();

    let graph = schema_to_graph(&parse_schema("interface Loner { }").unwrap()).unwrap();
    let report = sws_core::check_consistency(&graph, &graph);
    assert!(!report.is_clean());

    let session = rec.take();
    let spans = open_spans(&session.events, "core.consistency");
    assert_eq!(spans.len(), 1);
    assert_eq!(*field(spans[0], "types"), FieldValue::U64(1));
    assert_eq!(
        session.counter("consistency.findings"),
        report.findings.len() as u64
    );
}

#[test]
fn parallel_consistency_traces_worker_activity() {
    // A graph big enough to clear PAR_MIN_ITEMS, checked with a forced
    // multi-worker fan-out: the per-worker spans and counters from inside
    // the scoped threads must land in the parent's recorder.
    let src: String = (0..32)
        .map(|i| format!("interface T{i} {{ attribute long x; }} "))
        .collect();
    let graph = schema_to_graph(&parse_schema(&src).unwrap()).unwrap();

    let rec = Recorder::new();
    let serial = {
        let _guard = rec.install_thread();
        sws_core::parallel::with_workers(1, || sws_core::check_consistency(&graph, &graph))
    };
    let serial_session = rec.take();
    assert_eq!(
        serial_session.counter("core.parallel.workers"),
        0,
        "one worker = exact serial path, no fan-out"
    );

    let rec = Recorder::new();
    let parallel = {
        let _guard = rec.install_thread();
        sws_core::parallel::with_workers(4, || sws_core::check_consistency(&graph, &graph))
    };
    assert_eq!(parallel, serial, "thread count changed the report");

    let session = rec.take();
    assert!(session.counter("core.parallel.workers") >= 1);
    assert!(session.counter("core.parallel.chunks") >= 1);
    assert!(session.closed_spans("core.parallel.worker").count() >= 1);
    let shard = session
        .histogram("core.parallel.shard_items")
        .expect("shard-size histogram");
    assert_eq!(shard.count(), session.counter("core.parallel.chunks"));
}
