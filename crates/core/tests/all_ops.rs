//! One success path and one failure path for every one of the 37
//! modification operations, driven through the full workspace pipeline in
//! a permitted concept-schema context.

use std::collections::BTreeSet;
use sws_core::oplang::parse_statement;
use sws_core::ops::PermissionMatrix;
use sws_core::{ConceptKind, ModOp, OpError, OpKind, Workspace};
use sws_model::schema_to_graph;
use sws_odl::parse_schema;

/// A fixture exercising every construct kind.
const FIXTURE: &str = r#"
schema Fixture {
    interface Person {
        extent people;
        attribute string(64) name;
        attribute date born;
        keys name;
        float age();
    }
    interface Student : Person {
        attribute unsigned_long sid;
    }
    interface Employee : Person {
        attribute long badge;
        relationship Department works_in_a inverse Department::has;
        void clock_in(in time when) raises (Locked);
    }
    interface Department {
        extent departments;
        attribute string(32) dname;
        keys dname;
        relationship set<Employee> has inverse Employee::works_in_a order_by (badge);
    }
    interface Machine {
        attribute string(32) serial;
        part_of set<Component> components inverse Component::machine order_by (serial);
    }
    interface Component {
        attribute string(32) serial;
        part_of Machine machine inverse Machine::components;
    }
    interface Design {
        attribute string(32) code;
        instance_of set<Machine> builds inverse Machine::design;
    }
}
"#;

// Machine needs the child side of the instance_of — declare it via a
// fix-up below (keeps FIXTURE readable).
fn workspace() -> Workspace {
    let fixed = FIXTURE.replace(
        "part_of set<Component> components inverse Component::machine order_by (serial);",
        "part_of set<Component> components inverse Component::machine order_by (serial);\n        instance_of Design design inverse Design::builds;",
    );
    Workspace::new(schema_to_graph(&parse_schema(&fixed).unwrap()).unwrap())
}

fn context_for(op: &ModOp) -> ConceptKind {
    let matrix = PermissionMatrix::new();
    if matrix.allows(ConceptKind::WagonWheel, op.kind()) {
        ConceptKind::WagonWheel
    } else {
        matrix.permitting_contexts(op.kind())[0]
    }
}

/// (operation kind, success statement, failing statement)
fn cases() -> Vec<(OpKind, &'static str, &'static str)> {
    vec![
        (
            OpKind::AddTypeDefinition,
            "add_type_definition(Project)",
            "add_type_definition(Person)",
        ),
        (
            OpKind::DeleteTypeDefinition,
            "delete_type_definition(Student)",
            "delete_type_definition(Ghost)",
        ),
        (
            OpKind::AddSupertype,
            "add_supertype(Machine, Design)",
            "add_supertype(Person, Student)", // cycle
        ),
        (
            OpKind::DeleteSupertype,
            "delete_supertype(Student, Person)",
            "delete_supertype(Person, Student)",
        ),
        (
            OpKind::ModifySupertype,
            "modify_supertype(Employee, (Person), ())",
            "modify_supertype(Employee, (Department), (Person))", // stale old
        ),
        (
            OpKind::AddExtentName,
            "add_extent_name(Student, students)",
            "add_extent_name(Student, people)", // extent in use
        ),
        (
            OpKind::DeleteExtentName,
            "delete_extent_name(Person, people)",
            "delete_extent_name(Student, anything)", // no extent
        ),
        (
            OpKind::ModifyExtentName,
            "modify_extent_name(Person, people, persons)",
            "modify_extent_name(Person, wrong_old, persons)",
        ),
        (
            OpKind::AddKeyList,
            "add_key_list(Employee, (badge))",
            "add_key_list(Employee, (ghost_attr))",
        ),
        (
            OpKind::DeleteKeyList,
            "delete_key_list(Person, (name))",
            "delete_key_list(Person, (born))", // not a key
        ),
        (
            OpKind::ModifyKeyList,
            "modify_key_list(Person, (name), ((name, born)))",
            "modify_key_list(Person, (born), (name))", // stale old
        ),
        (
            OpKind::AddAttribute,
            "add_attribute(Department, string(64), location)",
            "add_attribute(Student, string, name)", // shadows Person::name
        ),
        (
            OpKind::DeleteAttribute,
            "delete_attribute(Person, born)",
            "delete_attribute(Person, ghost)",
        ),
        (
            OpKind::ModifyAttribute,
            "modify_attribute(Employee, badge, Person)",
            "modify_attribute(Employee, badge, Department)", // stability
        ),
        (
            OpKind::ModifyAttributeType,
            "modify_attribute_type(Employee, badge, long, unsigned_long)",
            "modify_attribute_type(Employee, badge, string, long)", // stale
        ),
        (
            OpKind::ModifyAttributeSize,
            "modify_attribute_size(Person, name, 64, 128)",
            "modify_attribute_size(Employee, badge, none, 8)", // long has no size
        ),
        (
            OpKind::AddRelationship,
            "add_relationship(Department, Person, chair, Person::chairs)",
            "add_relationship(Department, Employee, has, Employee::x)", // path taken
        ),
        (
            OpKind::DeleteRelationship,
            "delete_relationship(Department, has)",
            "delete_relationship(Department, ghost)",
        ),
        (
            OpKind::ModifyRelationshipTargetType,
            "modify_relationship_target_type(Department, has, Employee, Person)",
            "modify_relationship_target_type(Department, has, Student, Person)", // stale
        ),
        (
            OpKind::ModifyRelationshipCardinality,
            "modify_relationship_cardinality(Department, has, set, list)",
            "modify_relationship_cardinality(Department, has, one, set)", // stale
        ),
        (
            OpKind::ModifyRelationshipOrderBy,
            "modify_relationship_order_by(Department, has, (badge), (badge, name))",
            "modify_relationship_order_by(Department, has, (badge), (ghost))",
        ),
        (
            OpKind::AddOperation,
            "add_operation(Department, unsigned_long, headcount)",
            "add_operation(Employee, void, badge)", // name clash with attr
        ),
        (
            OpKind::DeleteOperation,
            "delete_operation(Employee, clock_in)",
            "delete_operation(Employee, ghost)",
        ),
        (
            OpKind::ModifyOperation,
            "modify_operation(Employee, clock_in, Person)",
            "modify_operation(Employee, clock_in, Machine)", // stability
        ),
        (
            OpKind::ModifyOperationReturnType,
            "modify_operation_return_type(Person, age, float, double)",
            "modify_operation_return_type(Person, age, void, double)", // stale
        ),
        (
            OpKind::ModifyOperationArgList,
            "modify_operation_arg_list(Employee, clock_in, (in time when), (in time when, in boolean manual))",
            "modify_operation_arg_list(Employee, clock_in, (), (in long x))", // stale
        ),
        (
            OpKind::ModifyOperationExceptionsRaised,
            "modify_operation_exceptions_raised(Employee, clock_in, (Locked), ())",
            "modify_operation_exceptions_raised(Employee, clock_in, (), (Oops))", // stale
        ),
        (
            OpKind::AddPartOfRelationship,
            "add_part_of_relationship(Component, set<Design>, subdesigns, Design::part_of_component)",
            "add_part_of_relationship(Component, set<Machine>, machines, Machine::comp)", // cycle
        ),
        (
            OpKind::DeletePartOfRelationship,
            "delete_part_of_relationship(Machine, components)",
            "delete_part_of_relationship(Machine, ghost)",
        ),
        (
            OpKind::ModifyPartOfTargetType,
            "modify_part_of_target_type(Component, machine, Machine, Machine)",
            "modify_part_of_target_type(Component, machine, Machine, Person)", // stability
        ),
        (
            OpKind::ModifyPartOfCardinality,
            "modify_part_of_cardinality(Machine, components, set, list)",
            "modify_part_of_cardinality(Component, machine, set, list)", // child end
        ),
        (
            OpKind::ModifyPartOfOrderBy,
            "modify_part_of_order_by(Machine, components, (serial), ())",
            "modify_part_of_order_by(Machine, components, (), (serial))", // stale
        ),
        (
            OpKind::AddInstanceOfRelationship,
            "add_instance_of_relationship(Design, set<Component>, stock_parts, Component::design_of)",
            "add_instance_of_relationship(Machine, set<Design>, redesigns, Design::machine_of)", // cycle
        ),
        (
            OpKind::DeleteInstanceOfRelationship,
            "delete_instance_of_relationship(Design, builds)",
            "delete_instance_of_relationship(Design, ghost)",
        ),
        (
            OpKind::ModifyInstanceOfTargetType,
            "modify_instance_of_target_type(Design, builds, Machine, Machine)",
            "modify_instance_of_target_type(Design, builds, Component, Machine)", // stale
        ),
        (
            OpKind::ModifyInstanceOfCardinality,
            "modify_instance_of_cardinality(Design, builds, set, bag)",
            "modify_instance_of_cardinality(Machine, design, set, bag)", // child end
        ),
        (
            OpKind::ModifyInstanceOfOrderBy,
            "modify_instance_of_order_by(Design, builds, (), (serial))",
            "modify_instance_of_order_by(Design, builds, (serial), ())", // stale
        ),
    ]
}

#[test]
fn every_operation_has_a_passing_and_failing_case() {
    let covered: BTreeSet<OpKind> = cases().iter().map(|(k, _, _)| *k).collect();
    assert_eq!(covered.len(), OpKind::ALL.len(), "cover all 37 operations");

    for (kind, good, bad) in cases() {
        // Success path: fresh workspace each time.
        let mut ws = workspace();
        let op = parse_statement(good).unwrap_or_else(|e| panic!("{kind}: {good}: {e}"));
        assert_eq!(op.kind(), kind, "statement exercises the intended op");
        let context = context_for(&op);
        ws.apply(context, op)
            .unwrap_or_else(|e| panic!("{kind}: success case `{good}` failed: {e}"));

        // Failure path: rejected with violations, workspace untouched.
        let mut ws = workspace();
        let before = sws_model::graph_to_schema(ws.working());
        let op = parse_statement(bad).unwrap_or_else(|e| panic!("{kind}: {bad}: {e}"));
        assert_eq!(op.kind(), kind);
        let context = context_for(&op);
        let err = ws.apply(context, op).expect_err(&format!(
            "{kind}: failure case `{bad}` unexpectedly applied"
        ));
        assert!(
            matches!(err, OpError::Violations(_)),
            "{kind}: expected constraint violations, got {err:?}"
        );
        assert_eq!(
            sws_model::graph_to_schema(ws.working()),
            before,
            "{kind}: failed op must not mutate"
        );
        assert!(ws.log().is_empty(), "{kind}: failed op must not log");
    }
}

#[test]
fn every_operation_rejected_in_some_context() {
    // Each operation has at least one context where Table 1 denies it —
    // and the denial fires before constraints do.
    let matrix = PermissionMatrix::new();
    for (kind, good, _) in cases() {
        let denied = ConceptKind::ALL
            .iter()
            .copied()
            .find(|&c| !matrix.allows(c, kind));
        let Some(denied) = denied else {
            // add/delete type are allowed everywhere — skip.
            continue;
        };
        let mut ws = workspace();
        let op = parse_statement(good).unwrap();
        let err = ws
            .apply(denied, op)
            .expect_err("denied context must reject");
        assert!(
            matches!(err, OpError::NotPermitted { .. }),
            "{kind}: {err:?}"
        );
    }
}
