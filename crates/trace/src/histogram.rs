//! Log2-bucketed histograms for latency (and other non-negative) samples.
//!
//! Bucket `k` holds samples in `[2^(k-1), 2^k)`; bucket 0 holds zero.
//! Recording is one increment plus three comparisons, so it is cheap
//! enough to run on every span close. Quantiles are answered from the
//! bucket boundaries (exact count, value resolution one octave), which is
//! plenty for p50/p99 latency reporting.

/// Number of buckets: zero plus one per bit of a `u64`.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Upper edge (inclusive) of bucket `k`.
    fn bucket_top(k: usize) -> u64 {
        if k == 0 {
            0
        } else if k >= 64 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`): the upper edge of the bucket that
    /// contains the `ceil(q * count)`-th smallest sample, clamped to the
    /// observed min/max. Empty histograms answer 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_top(k).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Shorthand for [`Histogram::quantile`] at 0.50.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Shorthand for [`Histogram::quantile`] at 0.99.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(upper_edge, count)` pairs, smallest first.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| (Self::bucket_top(k), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_top(2), 3);
        assert_eq!(Histogram::bucket_top(64), u64::MAX);
    }

    #[test]
    fn quantiles_land_in_the_right_octave() {
        let mut h = Histogram::new();
        // 99 samples at ~100ns, 1 sample at ~1ms.
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        // p50 falls in the 100ns bucket [64, 127].
        assert!(h.p50() >= 100 && h.p50() <= 127, "{}", h.p50());
        // p99 still in the small bucket (99 of 100 samples).
        assert!(h.p99() <= 127);
        // max catches the outlier exactly.
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn min_max_sum_mean_are_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
        assert_eq!(h.sum(), 60);
        assert_eq!(h.mean(), 20);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
        assert_eq!(a.buckets().count(), 2);
    }

    #[test]
    fn zero_samples_are_representable() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
    }
}
