//! Time sources for the recorder.
//!
//! All timestamps are nanoseconds on a monotonic axis whose origin is the
//! clock's creation. Production code uses [`MonotonicClock`] (backed by
//! [`std::time::Instant`]); tests inject a [`MockClock`] and advance it by
//! hand, which makes span durations and histogram contents exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's origin.
    fn now_ns(&self) -> u64;
}

/// The real monotonic clock, anchored at creation.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturate rather than wrap: a session outliving u64 nanoseconds
        // (~584 years) is not a case worth branching for.
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// A hand-advanced clock for deterministic tests.
///
/// Clone the `Arc` before handing it to a recorder so the test keeps a
/// handle for [`MockClock::advance`].
#[derive(Debug, Default)]
pub struct MockClock {
    now: AtomicU64,
}

impl MockClock {
    /// A mock clock at t = 0, wrapped for sharing with a recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(MockClock::default())
    }

    /// Advance the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }

    /// Set the clock to an absolute instant.
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_is_exact() {
        let c = MockClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(250);
        assert_eq!(c.now_ns(), 250);
        c.set(1_000);
        assert_eq!(c.now_ns(), 1_000);
    }
}
