//! The self-profiler: fold a span event stream into an
//! inclusive/exclusive-time call tree.
//!
//! Spans with the same name under the same parent path merge into one
//! node, accumulating invocation counts and inclusive time; exclusive
//! time is a node's inclusive time minus its children's. Two exports:
//!
//! * [`Profile::render_table`] / [`Profile::hot_paths`] — the top-N
//!   hot-path table embedded in `DesignReport`,
//! * [`Profile::collapsed`] — flamegraph-compatible collapsed stacks
//!   (`a;b;c <weight>`, weight = exclusive nanoseconds), directly
//!   loadable by `flamegraph.pl` / `inferno` / speedscope.
//!
//! Spans opened on worker threads carry parent 0 (each thread has its own
//! span stack), so they appear as separate roots — by design: a profile
//! of `core.parallel` shows the dispatch span and the worker spans side
//! by side.

use crate::export::fmt_ns;
use crate::recorder::{Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Debug)]
struct Node {
    name: &'static str,
    children: BTreeMap<&'static str, usize>,
    count: u64,
    inclusive_ns: u64,
    exclusive_ns: u64,
}

impl Node {
    fn new(name: &'static str) -> Self {
        Node {
            name,
            children: BTreeMap::new(),
            count: 0,
            inclusive_ns: 0,
            exclusive_ns: 0,
        }
    }
}

/// One row of the hot-path table.
#[derive(Debug, Clone, PartialEq)]
pub struct HotPath {
    /// Semicolon-joined span-name path from the root (`a;b;c`).
    pub path: String,
    /// Invocations of this node.
    pub count: u64,
    /// Total time inside this node, nanoseconds.
    pub inclusive_ns: u64,
    /// Inclusive time minus children's inclusive time, nanoseconds.
    pub exclusive_ns: u64,
}

/// A call tree aggregated from a span event stream.
#[derive(Debug)]
pub struct Profile {
    /// Arena; index 0 is the synthetic root.
    nodes: Vec<Node>,
}

impl Profile {
    /// Aggregate `events` (emission order) into a call tree.
    pub fn from_events(events: &[Event]) -> Self {
        let mut nodes = vec![Node::new("")];
        // Open span id -> node index.
        let mut open: BTreeMap<u64, usize> = BTreeMap::new();
        for event in events {
            match &event.kind {
                EventKind::SpanOpen => {
                    let parent_idx = open.get(&event.parent).copied().unwrap_or(0);
                    let idx = match nodes[parent_idx].children.get(event.name) {
                        Some(&idx) => idx,
                        None => {
                            let idx = nodes.len();
                            nodes.push(Node::new(event.name));
                            nodes[parent_idx].children.insert(event.name, idx);
                            idx
                        }
                    };
                    nodes[idx].count += 1;
                    open.insert(event.span_id, idx);
                }
                EventKind::SpanClose { dur_ns } => {
                    if let Some(idx) = open.remove(&event.span_id) {
                        nodes[idx].inclusive_ns += dur_ns;
                    }
                }
                EventKind::Point => {}
            }
        }
        // Exclusive = inclusive - sum(children inclusive). Saturating:
        // a span that never closed has inclusive 0 but closed children.
        for idx in 0..nodes.len() {
            let child_sum: u64 = nodes[idx]
                .children
                .values()
                .map(|&c| nodes[c].inclusive_ns)
                .sum();
            nodes[idx].exclusive_ns = nodes[idx].inclusive_ns.saturating_sub(child_sum);
        }
        Profile { nodes }
    }

    /// True if no spans were seen.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    fn walk(&self, idx: usize, path: &mut Vec<&'static str>, out: &mut Vec<HotPath>) {
        for &child in self.nodes[idx].children.values() {
            let node = &self.nodes[child];
            path.push(node.name);
            out.push(HotPath {
                path: path.join(";"),
                count: node.count,
                inclusive_ns: node.inclusive_ns,
                exclusive_ns: node.exclusive_ns,
            });
            self.walk(child, path, out);
            path.pop();
        }
    }

    /// Every node as a [`HotPath`], depth-first with siblings in name
    /// order — a deterministic flattening of the tree.
    pub fn all_paths(&self) -> Vec<HotPath> {
        let mut out = Vec::new();
        self.walk(0, &mut Vec::new(), &mut out);
        out
    }

    /// The `n` hottest nodes by exclusive time (ties broken by path).
    pub fn hot_paths(&self, n: usize) -> Vec<HotPath> {
        let mut all = self.all_paths();
        all.sort_by(|a, b| {
            b.exclusive_ns
                .cmp(&a.exclusive_ns)
                .then_with(|| a.path.cmp(&b.path))
        });
        all.truncate(n);
        all
    }

    /// Flamegraph collapsed-stack format: one `path <weight>` line per
    /// node (weight = exclusive nanoseconds), depth-first with siblings
    /// in name order. Loadable by `flamegraph.pl`, `inferno`, and
    /// speedscope.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for p in self.all_paths() {
            let _ = writeln!(out, "{} {}", p.path, p.exclusive_ns);
        }
        out
    }

    fn render_node(&self, idx: usize, depth: usize, out: &mut String) {
        for &child in self.nodes[idx].children.values() {
            let node = &self.nodes[child];
            let _ = writeln!(
                out,
                "{}{}  x{}  incl {}  excl {}",
                "  ".repeat(depth),
                node.name,
                node.count,
                fmt_ns(node.inclusive_ns),
                fmt_ns(node.exclusive_ns),
            );
            self.render_node(child, depth + 1, out);
        }
    }

    /// Human-readable indented call tree with counts and incl/excl times
    /// (`swsd --profile=tree`).
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        self.render_node(0, 0, &mut out);
        out
    }

    /// The hot-path table as indented plain text, `n` rows.
    pub fn render_table(&self, n: usize) -> String {
        let mut out = String::new();
        for p in self.hot_paths(n) {
            let _ = writeln!(
                out,
                "    {}  x{}  excl {}  incl {}",
                p.path,
                p.count,
                fmt_ns(p.exclusive_ns),
                fmt_ns(p.inclusive_ns),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use crate::{span, Recorder};

    /// a { +100ns; b { +200ns } ; c { +300ns } } — inclusive/exclusive
    /// times are exact under the mock clock.
    fn session() -> crate::recorder::TraceSession {
        let clock = MockClock::new();
        let rec = Recorder::with_clock(clock.clone());
        let _guard = rec.install_thread();
        {
            let _a = span("a");
            clock.advance(100);
            {
                let _b = span("b");
                clock.advance(200);
            }
            {
                let _c = span("c");
                clock.advance(300);
            }
        }
        rec.take()
    }

    #[test]
    fn inclusive_and_exclusive_times_are_exact() {
        let profile = Profile::from_events(&session().events);
        let paths = profile.all_paths();
        assert_eq!(paths.len(), 3);
        assert_eq!(
            paths[0],
            HotPath {
                path: "a".into(),
                count: 1,
                inclusive_ns: 600,
                exclusive_ns: 100
            }
        );
        assert_eq!(paths[1].path, "a;b");
        assert_eq!((paths[1].inclusive_ns, paths[1].exclusive_ns), (200, 200));
        assert_eq!(paths[2].path, "a;c");
        assert_eq!((paths[2].inclusive_ns, paths[2].exclusive_ns), (300, 300));
    }

    #[test]
    fn collapsed_stacks_are_flamegraph_shaped() {
        let profile = Profile::from_events(&session().events);
        assert_eq!(profile.collapsed(), "a 100\na;b 200\na;c 300\n");
    }

    #[test]
    fn hot_paths_rank_by_exclusive_time() {
        let profile = Profile::from_events(&session().events);
        let hot = profile.hot_paths(2);
        assert_eq!(hot[0].path, "a;c");
        assert_eq!(hot[1].path, "a;b");
    }

    #[test]
    fn repeated_spans_merge_and_count() {
        let clock = MockClock::new();
        let rec = Recorder::with_clock(clock.clone());
        let _guard = rec.install_thread();
        for _ in 0..3 {
            let _sp = span("op");
            clock.advance(10);
        }
        let profile = Profile::from_events(&rec.take().events);
        let paths = profile.all_paths();
        assert_eq!(paths.len(), 1);
        assert_eq!((paths[0].count, paths[0].inclusive_ns), (3, 30));
    }

    #[test]
    fn orphan_parents_attach_at_root() {
        // A worker-thread span (parent id unknown to this stream).
        let clock = MockClock::new();
        let rec = Recorder::with_clock(clock.clone());
        let _guard = rec.install_thread();
        {
            let _sp = span("main");
            clock.advance(5);
        }
        let mut events = rec.take().events;
        // Forge a span whose parent was never opened in this stream.
        let mut open = events[0].clone();
        open.kind = EventKind::SpanOpen;
        open.name = "worker";
        open.span_id = 9999;
        open.parent = 4242;
        let mut close = open.clone();
        close.kind = EventKind::SpanClose { dur_ns: 7 };
        events.push(open);
        events.push(close);
        let profile = Profile::from_events(&events);
        let paths: Vec<String> = profile.all_paths().into_iter().map(|p| p.path).collect();
        assert_eq!(paths, vec!["main".to_string(), "worker".to_string()]);
    }

    #[test]
    fn empty_profile() {
        let profile = Profile::from_events(&[]);
        assert!(profile.is_empty());
        assert_eq!(profile.collapsed(), "");
        assert_eq!(profile.render_tree(), "");
    }
}
