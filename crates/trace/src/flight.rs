//! The flight recorder: a fixed-capacity, always-on ring buffer of recent
//! span/point events, plus live counters and the set of currently-open
//! spans.
//!
//! A full [`Recorder`](crate::Recorder) captures *everything* and is
//! therefore opt-in per run (`swsd --trace`). The flight recorder is the
//! complement: cheap enough to leave on for every session, it retains only
//! the last `capacity` events — exactly what a crash dump needs to explain
//! *what the process was doing when it died*. `swsd` installs one at
//! startup and its panic hook serializes [`FlightRecorder::snapshot`] into
//! `crash-report.json`.
//!
//! # Cost model
//!
//! When no flight recorder is installed, instrumentation sites pay one
//! extra relaxed atomic load (see [`crate::enabled`]). When one is
//! installed, each span open/close or point event takes an uncontended
//! mutex and writes one fixed-size ring slot; counters are one map bump.
//! `bench_trace_overhead` pins the always-on p50 overhead at ≤ 1.05x of
//! the fully-disabled path.
//!
//! # Poison tolerance
//!
//! Every lock here survives poisoning: the flight recorder exists to be
//! read *during a panic*, so a panic elsewhere must never cascade into a
//! second panic inside the dump path.

use crate::clock::{Clock, MonotonicClock};
use crate::recorder::{Event, EventKind, Field};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Default ring capacity (events retained), overridable per recorder with
/// [`FlightRecorder::with_capacity`].
pub const DEFAULT_CAPACITY: usize = 256;

/// A span that has opened but not yet closed.
#[derive(Debug, Clone)]
pub struct OpenSpan {
    /// Span id.
    pub id: u64,
    /// Enclosing span id (0 = root).
    pub parent: u64,
    /// Span name.
    pub name: &'static str,
    /// Open timestamp on the flight recorder's clock.
    pub open_ts_ns: u64,
}

#[derive(Default)]
struct FlightState {
    ring: VecDeque<Event>,
    seq: u64,
    dropped: u64,
    counters: BTreeMap<&'static str, u64>,
    open: BTreeMap<u64, OpenSpan>,
}

struct Inner {
    capacity: usize,
    clock: Arc<dyn Clock>,
    state: Mutex<FlightState>,
}

/// Everything the flight recorder retains, copied out at dump time.
#[derive(Debug, Clone, Default)]
pub struct FlightSnapshot {
    /// The retained events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring since installation.
    pub dropped: u64,
    /// Live counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Spans open at snapshot time, sorted by id (open order).
    pub open_spans: Vec<OpenSpan>,
}

impl FlightSnapshot {
    /// The active span stack ending at `leaf` (a span id, usually
    /// [`crate::current_span_id`] of the crashing thread), root first.
    /// Unknown ids terminate the walk, so a truncated ring still yields
    /// the suffix of the stack it knows about.
    pub fn stack_from(&self, leaf: u64) -> Vec<&'static str> {
        let mut stack = Vec::new();
        let mut id = leaf;
        while id != 0 {
            match self.open_spans.iter().find(|s| s.id == id) {
                Some(span) => {
                    stack.push(span.name);
                    id = span.parent;
                }
                None => break,
            }
        }
        stack.reverse();
        stack
    }
}

/// The fixed-capacity always-on event ring. Cheap to clone (shared
/// interior).
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

fn lock(state: &Mutex<FlightState>) -> MutexGuard<'_, FlightState> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl FlightRecorder {
    /// A flight recorder with [`DEFAULT_CAPACITY`] on the real clock.
    pub fn new() -> Self {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }

    /// A flight recorder retaining the last `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder::with_clock(capacity, Arc::new(MonotonicClock::new()))
    }

    /// A flight recorder on an injected clock (tests).
    pub fn with_clock(capacity: usize, clock: Arc<dyn Clock>) -> Self {
        FlightRecorder {
            inner: Arc::new(Inner {
                capacity: capacity.max(1),
                clock,
                state: Mutex::new(FlightState::default()),
            }),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    fn push(
        &self,
        state: &mut FlightState,
        kind: EventKind,
        name: &'static str,
        span_id: u64,
        parent: u64,
        fields: Vec<Field>,
    ) {
        if state.ring.len() == self.inner.capacity {
            state.ring.pop_front();
            state.dropped += 1;
        }
        let seq = state.seq;
        state.seq += 1;
        state.ring.push_back(Event {
            seq,
            ts_ns: self.inner.clock.now_ns(),
            kind,
            name,
            span_id,
            parent,
            fields,
        });
    }

    /// Record a span open (called by the [`crate::span!`] machinery).
    pub fn record_open(&self, id: u64, parent: u64, name: &'static str, fields: &[Field]) {
        let open_ts_ns = self.inner.clock.now_ns();
        let mut state = lock(&self.inner.state);
        state.open.insert(
            id,
            OpenSpan {
                id,
                parent,
                name,
                open_ts_ns,
            },
        );
        self.push(
            &mut state,
            EventKind::SpanOpen,
            name,
            id,
            parent,
            fields.to_vec(),
        );
    }

    /// Record a span close; the duration is measured on this recorder's
    /// own clock from the matching [`FlightRecorder::record_open`].
    pub fn record_close(&self, id: u64, parent: u64, name: &'static str, fields: &[Field]) {
        let now = self.inner.clock.now_ns();
        let mut state = lock(&self.inner.state);
        let dur_ns = match state.open.remove(&id) {
            Some(open) => now.saturating_sub(open.open_ts_ns),
            None => 0,
        };
        self.push(
            &mut state,
            EventKind::SpanClose { dur_ns },
            name,
            id,
            parent,
            fields.to_vec(),
        );
    }

    /// Record a point event.
    pub fn record_point(&self, parent: u64, name: &'static str, fields: &[Field]) {
        let mut state = lock(&self.inner.state);
        self.push(
            &mut state,
            EventKind::Point,
            name,
            0,
            parent,
            fields.to_vec(),
        );
    }

    /// Add `delta` to the named live counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        let mut state = lock(&self.inner.state);
        *state.counters.entry(name).or_insert(0) += delta;
    }

    /// Copy out everything currently retained. Never panics, even if a
    /// lock was poisoned by a panicking thread.
    pub fn snapshot(&self) -> FlightSnapshot {
        let state = lock(&self.inner.state);
        FlightSnapshot {
            events: state.ring.iter().cloned().collect(),
            dropped: state.dropped,
            counters: state
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            open_spans: state.open.values().cloned().collect(),
        }
    }

    /// Install this flight recorder process-globally. Replaces any
    /// previous one.
    pub fn install_global(&self) {
        let mut slot = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = Some(self.clone());
        ACTIVE.store(true, Ordering::Release);
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Option<FlightRecorder>> = Mutex::new(None);

/// One relaxed load: is a flight recorder installed? The fast gate the
/// instrumentation sites check.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// The installed flight recorder, if any.
#[inline]
pub fn active() -> Option<FlightRecorder> {
    if !is_active() {
        return None;
    }
    GLOBAL
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Remove the global flight recorder, returning it.
pub fn uninstall_global() -> Option<FlightRecorder> {
    let mut slot = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
    ACTIVE.store(false, Ordering::Release);
    slot.take()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;

    #[test]
    fn ring_retains_only_the_last_capacity_events() {
        let fr = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            fr.record_point(0, "tick", &[("i", crate::FieldValue::U64(i))]);
        }
        let snap = fr.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.dropped, 2);
        // Oldest first, and the retained tail is the last three.
        let is: Vec<u64> = snap
            .events
            .iter()
            .map(|e| match &e.fields[0].1 {
                crate::FieldValue::U64(v) => *v,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(is, vec![2, 3, 4]);
        // Sequence numbers keep counting across evictions.
        assert_eq!(snap.events.last().unwrap().seq, 4);
    }

    #[test]
    fn open_spans_and_stack_walk() {
        let clock = MockClock::new();
        let fr = FlightRecorder::with_clock(16, clock.clone());
        fr.record_open(1, 0, "outer", &[]);
        clock.advance(100);
        fr.record_open(2, 1, "inner", &[]);
        let snap = fr.snapshot();
        assert_eq!(snap.open_spans.len(), 2);
        assert_eq!(snap.stack_from(2), vec!["outer", "inner"]);
        assert_eq!(snap.stack_from(1), vec!["outer"]);
        assert!(snap.stack_from(99).is_empty());

        clock.advance(50);
        fr.record_close(2, 1, "inner", &[]);
        let snap = fr.snapshot();
        assert_eq!(snap.open_spans.len(), 1);
        let close = snap.events.last().unwrap();
        assert_eq!(close.kind, EventKind::SpanClose { dur_ns: 50 });
    }

    #[test]
    fn counters_are_live_totals() {
        let fr = FlightRecorder::new();
        fr.add("ops", 2);
        fr.add("ops", 3);
        let snap = fr.snapshot();
        assert_eq!(snap.counters, vec![("ops".to_string(), 5)]);
    }

    #[test]
    fn close_without_open_reports_zero_duration() {
        let fr = FlightRecorder::new();
        fr.record_close(7, 0, "orphan", &[]);
        let snap = fr.snapshot();
        assert_eq!(snap.events[0].kind, EventKind::SpanClose { dur_ns: 0 });
    }
}
