//! `sws-trace` — zero-dependency structured tracing and metrics for the
//! shrink-wrap-schema pipeline.
//!
//! The paper's tool is interactive: the designer's confidence rests on the
//! system explaining itself. This crate is the measurement substrate that
//! makes the engine observable — and gives every performance PR a baseline:
//!
//! * **hierarchical spans** with monotonic nanosecond timings
//!   ([`span!`], [`Span`]); the clock is injectable
//!   ([`clock::MockClock`]) so tests see exact durations,
//! * **counters** and **log2-bucketed latency histograms**
//!   ([`histogram::Histogram`]) — every span close also feeds the
//!   histogram named after the span, so p50/p99 per instrumentation site
//!   come for free,
//! * a **structured event stream** (`span_open` / `span_close` / `event`
//!   with key=value fields),
//! * two exporters: a human-readable **tree** ([`export::render_tree`])
//!   and hand-serialized **JSON lines** ([`export::to_jsonl`]), plus a
//!   hand-written JSONL checker ([`export::jsonl`]) used by the tests.
//!
//! # Cost model
//!
//! Instrumented code calls [`span!`] / [`counter`] unconditionally. When no
//! recorder is installed (the default), each call is one relaxed atomic
//! load and a branch; field expressions are not even evaluated. Recording
//! is opt-in per process ([`set_global`]) or per thread
//! ([`Recorder::install_thread`]), and an installed recorder can be muted
//! with [`Recorder::set_enabled`].
//!
//! # Example
//!
//! ```
//! use sws_trace::{export, Recorder};
//!
//! let rec = Recorder::new();
//! let guard = rec.install_thread();
//! {
//!     let mut sp = sws_trace::span!("parse", bytes = 120usize);
//!     sws_trace::counter("tokens", 42);
//!     sp.record("interfaces", 3usize);
//! }
//! drop(guard);
//! let session = rec.take();
//! assert_eq!(session.counter("tokens"), 42);
//! assert!(export::render_tree(&session.events).contains("parse bytes=120 interfaces=3"));
//! assert!(export::jsonl::check(&export::to_jsonl(&session)).unwrap() >= 3);
//! ```
#![cfg_attr(not(feature = "alloc-stats"), forbid(unsafe_code))]

#[cfg(feature = "alloc-stats")]
pub mod alloc_stats;
pub mod clock;
pub mod export;
pub mod flight;
pub mod histogram;
pub mod profile;
mod recorder;

pub use clock::{Clock, MockClock, MonotonicClock};
pub use export::{fmt_ns, render_tree, to_jsonl, AllocStats, HistStats, TraceSummary};
pub use flight::{FlightRecorder, FlightSnapshot};
pub use histogram::Histogram;
pub use profile::{HotPath, Profile};
pub use recorder::{
    clear_global, counter, current, current_span_id, enabled, event_with, global, next_span_id,
    record_value, set_global, span, span_with, Event, EventKind, Field, FieldValue, IntoField,
    Recorder, Span, SpanHandle, ThreadGuard, TraceSession,
};
