//! Feature-gated counting `#[global_allocator]` (`alloc-stats`).
//!
//! When the `alloc-stats` feature is enabled, every allocation in the
//! process bumps two relaxed atomics, and every recorded [`Span`]
//! (crate::Span) attaches `alloc.count` / `alloc.bytes` delta fields to
//! its close event. Aggregated per span name by
//! [`TraceSummary`](crate::TraceSummary), this is the baseline the
//! arena/CSR layout refactor will be judged against: "allocation-free
//! steady-state rechecks" becomes a measurable claim.
//!
//! The feature is off by default because a global allocator shim taxes
//! every binary that links this crate; enable it only for measurement
//! runs (`cargo test --features alloc-stats`, `swsd` built with
//! `--features alloc-stats`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNT: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// The system allocator with relaxed-atomic allocation accounting.
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counters touch no allocator
// state.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        COUNT.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is accounted as one allocation of the added bytes; a
        // shrink is free.
        COUNT.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(
            (new_size as u64).saturating_sub(layout.size() as u64),
            Ordering::Relaxed,
        );
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL_ALLOCATOR: CountingAllocator = CountingAllocator;

/// Process-lifetime totals: `(allocation count, bytes requested)`.
pub fn totals() -> (u64, u64) {
    (COUNT.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    #[test]
    fn allocations_are_counted() {
        let before = super::totals();
        let v: Vec<u64> = (0..1024).collect();
        let after = super::totals();
        assert!(after.0 > before.0, "count did not advance");
        assert!(
            after.1 >= before.1 + 8 * 1024,
            "bytes did not cover the vec: {} -> {}",
            before.1,
            after.1
        );
        drop(v);
    }
}
