//! The recorder: event sink, counters, histograms, and span guards.
//!
//! # Installation
//!
//! Instrumented library code never takes a recorder parameter; it calls the
//! free functions / macros of this crate, which resolve the *current*
//! recorder:
//!
//! 1. a thread-local recorder installed with [`Recorder::install_thread`]
//!    (tests and embedded use — no cross-test interference), else
//! 2. the process-global recorder installed with [`set_global`]
//!    (binaries: `swsd --trace`, the bench harness).
//!
//! When neither is installed — the common production case — every
//! instrumentation point is a single relaxed atomic load and a branch.
//! An installed recorder can additionally be muted with
//! [`Recorder::set_enabled`], which keeps the same ~free fast path.

use crate::clock::{Clock, MonotonicClock};
use crate::histogram::Histogram;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A typed field value on a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::Str(s) => f.write_str(s),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Conversion into a [`FieldValue`]; implemented for the types that appear
/// at instrumentation sites.
pub trait IntoField {
    /// Convert.
    fn into_field(self) -> FieldValue;
}

impl IntoField for FieldValue {
    fn into_field(self) -> FieldValue {
        self
    }
}
impl IntoField for &str {
    fn into_field(self) -> FieldValue {
        FieldValue::Str(self.to_string())
    }
}
impl IntoField for String {
    fn into_field(self) -> FieldValue {
        FieldValue::Str(self)
    }
}
impl IntoField for &String {
    fn into_field(self) -> FieldValue {
        FieldValue::Str(self.clone())
    }
}
impl IntoField for u64 {
    fn into_field(self) -> FieldValue {
        FieldValue::U64(self)
    }
}
impl IntoField for u32 {
    fn into_field(self) -> FieldValue {
        FieldValue::U64(self as u64)
    }
}
impl IntoField for usize {
    fn into_field(self) -> FieldValue {
        FieldValue::U64(self as u64)
    }
}
impl IntoField for i64 {
    fn into_field(self) -> FieldValue {
        FieldValue::I64(self)
    }
}
impl IntoField for i32 {
    fn into_field(self) -> FieldValue {
        FieldValue::I64(self as i64)
    }
}
impl IntoField for f64 {
    fn into_field(self) -> FieldValue {
        FieldValue::F64(self)
    }
}
impl IntoField for bool {
    fn into_field(self) -> FieldValue {
        FieldValue::Bool(self)
    }
}

/// A named field.
pub type Field = (&'static str, FieldValue);

/// What an [`Event`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span started.
    SpanOpen,
    /// A span ended after `dur_ns` nanoseconds.
    SpanClose {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A point event.
    Point,
}

/// One structured event in the session stream.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global sequence number within the recorder (emission order).
    pub seq: u64,
    /// Timestamp (nanoseconds on the recorder clock's axis).
    pub ts_ns: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Span / event name (a static instrumentation-site label).
    pub name: &'static str,
    /// Id of the span this event belongs to (0 for point events outside
    /// any span).
    pub span_id: u64,
    /// Id of the enclosing span (0 = root).
    pub parent: u64,
    /// Key=value payload.
    pub fields: Vec<Field>,
}

#[derive(Default)]
struct State {
    events: Vec<Event>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    seq: u64,
}

struct Inner {
    enabled: AtomicBool,
    clock: Arc<dyn Clock>,
    state: Mutex<State>,
}

/// Process-wide span-id allocator, shared by every [`Recorder`] and the
/// flight recorder so that one logical span carries the same id in every
/// sink it reaches.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh process-unique span id (never 0).
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Everything a recorder captured: the event stream plus the metric
/// registries. Produced by [`Recorder::snapshot`] / [`Recorder::take`].
#[derive(Debug, Clone, Default)]
pub struct TraceSession {
    /// Events in emission order.
    pub events: Vec<Event>,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl TraceSession {
    /// True if nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Events with [`EventKind::SpanClose`] and the given name.
    pub fn closed_spans<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Event> {
        self.events
            .iter()
            .filter(move |e| e.name == name && matches!(e.kind, EventKind::SpanClose { .. }))
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// The event/metric sink. Cheap to clone (shared interior).
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder on the real monotonic clock.
    pub fn new() -> Self {
        Recorder::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A recorder on an injected clock (see [`crate::clock::MockClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Recorder {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                clock,
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// Mute / unmute this recorder without uninstalling it.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is this recorder currently recording?
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Current time on this recorder's clock.
    pub fn now_ns(&self) -> u64 {
        self.inner.clock.now_ns()
    }

    fn emit(
        &self,
        kind: EventKind,
        name: &'static str,
        span_id: u64,
        parent: u64,
        fields: Vec<Field>,
    ) {
        let ts_ns = self.now_ns();
        let mut state = self.inner.state.lock().expect("trace state poisoned");
        let seq = state.seq;
        state.seq += 1;
        state.events.push(Event {
            seq,
            ts_ns,
            kind,
            name,
            span_id,
            parent,
            fields,
        });
    }

    /// Open a span by hand. Prefer [`crate::span!`] / [`span`].
    pub fn open_span(&self, name: &'static str, fields: Vec<Field>) -> SpanHandle {
        let id = next_span_id();
        let parent = CURRENT_SPAN.with(|c| c.replace(id));
        let open_ts = self.now_ns();
        self.emit(EventKind::SpanOpen, name, id, parent, fields);
        SpanHandle {
            id,
            parent,
            name,
            open_ts,
        }
    }

    /// Emit a span-open event without touching the thread's span stack
    /// (the [`Span`] guard manages that once for all sinks).
    fn emit_open(&self, name: &'static str, id: u64, parent: u64, fields: Vec<Field>) {
        self.emit(EventKind::SpanOpen, name, id, parent, fields);
    }

    /// Emit a span-close event (duration precomputed on this recorder's
    /// clock) and feed the histogram named after the span.
    fn emit_close(
        &self,
        name: &'static str,
        id: u64,
        parent: u64,
        dur_ns: u64,
        fields: Vec<Field>,
    ) {
        self.emit(EventKind::SpanClose { dur_ns }, name, id, parent, fields);
        let mut state = self.inner.state.lock().expect("trace state poisoned");
        state.histograms.entry(name).or_default().record(dur_ns);
    }

    /// Close a span opened with [`Recorder::open_span`]. Records the
    /// duration in the histogram named after the span.
    pub fn close_span(&self, handle: SpanHandle, fields: Vec<Field>) {
        let dur_ns = self.now_ns().saturating_sub(handle.open_ts);
        CURRENT_SPAN.with(|c| c.set(handle.parent));
        self.emit(
            EventKind::SpanClose { dur_ns },
            handle.name,
            handle.id,
            handle.parent,
            fields,
        );
        let mut state = self.inner.state.lock().expect("trace state poisoned");
        state
            .histograms
            .entry(handle.name)
            .or_default()
            .record(dur_ns);
    }

    /// Emit a point event under the current span.
    pub fn point(&self, name: &'static str, fields: Vec<Field>) {
        let parent = CURRENT_SPAN.with(|c| c.get());
        self.emit(EventKind::Point, name, 0, parent, fields);
    }

    /// Add `delta` to the named counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        let mut state = self.inner.state.lock().expect("trace state poisoned");
        *state.counters.entry(name).or_insert(0) += delta;
    }

    /// Record a sample in the named histogram.
    pub fn record(&self, name: &'static str, value: u64) {
        let mut state = self.inner.state.lock().expect("trace state poisoned");
        state.histograms.entry(name).or_default().record(value);
    }

    fn session_from(state: &State) -> TraceSession {
        TraceSession {
            events: state.events.clone(),
            counters: state
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: state
                .histograms
                .iter()
                .map(|(k, h)| (k.to_string(), h.clone()))
                .collect(),
        }
    }

    /// Copy out everything recorded so far.
    pub fn snapshot(&self) -> TraceSession {
        let state = self.inner.state.lock().expect("trace state poisoned");
        Self::session_from(&state)
    }

    /// Drain everything recorded so far, leaving the recorder empty.
    pub fn take(&self) -> TraceSession {
        let mut state = self.inner.state.lock().expect("trace state poisoned");
        let session = Self::session_from(&state);
        *state = State::default();
        session
    }

    /// Install this recorder for the current thread; the returned guard
    /// restores the previous thread recorder on drop. Takes precedence
    /// over the global recorder.
    pub fn install_thread(&self) -> ThreadGuard {
        let prev = TL_RECORDER.with(|tl| tl.replace(Some(self.clone())));
        if prev.is_none() {
            ACTIVE_SOURCES.fetch_add(1, Ordering::SeqCst);
        }
        ThreadGuard { prev }
    }
}

/// A raw open span (low-level API; see [`Span`] for the RAII guard).
#[derive(Debug)]
pub struct SpanHandle {
    id: u64,
    parent: u64,
    name: &'static str,
    open_ts: u64,
}

impl SpanHandle {
    /// The span id.
    pub fn id(&self) -> u64 {
        self.id
    }
}

// ---------------------------------------------------------------------
// Global / thread-local installation.
// ---------------------------------------------------------------------

static ACTIVE_SOURCES: AtomicUsize = AtomicUsize::new(0);
static GLOBAL: Mutex<Option<Recorder>> = Mutex::new(None);

thread_local! {
    static TL_RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// Install `recorder` as the process-global recorder. Replaces any
/// previous one.
pub fn set_global(recorder: Recorder) {
    let mut slot = GLOBAL.lock().expect("trace global poisoned");
    if slot.is_none() {
        ACTIVE_SOURCES.fetch_add(1, Ordering::SeqCst);
    }
    *slot = Some(recorder);
}

/// Remove the process-global recorder, returning it.
pub fn clear_global() -> Option<Recorder> {
    let mut slot = GLOBAL.lock().expect("trace global poisoned");
    let prev = slot.take();
    if prev.is_some() {
        ACTIVE_SOURCES.fetch_sub(1, Ordering::SeqCst);
    }
    prev
}

/// The process-global recorder, if installed.
pub fn global() -> Option<Recorder> {
    GLOBAL.lock().expect("trace global poisoned").clone()
}

/// Restores the previous thread-local recorder on drop.
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub struct ThreadGuard {
    prev: Option<Recorder>,
}

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        let installed = TL_RECORDER.with(|tl| tl.replace(self.prev.take()));
        // `installed` is what we put in (or a later override); if the slot
        // goes back to empty, retire this thread as an active source.
        if installed.is_some() && TL_RECORDER.with(|tl| tl.borrow().is_none()) {
            ACTIVE_SOURCES.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// True if some sink will receive events: a recorder that is installed
/// *and* enabled, or the always-on flight recorder. Two relaxed atomic
/// loads when nothing is installed.
#[inline]
pub fn enabled() -> bool {
    crate::flight::is_active() || current().is_some()
}

/// The id of the innermost span currently open on *this thread* (0 when
/// outside any span). This is what a crash dump hands to
/// [`crate::flight::FlightSnapshot::stack_from`] to reconstruct the
/// active stack.
#[inline]
pub fn current_span_id() -> u64 {
    CURRENT_SPAN.with(|c| c.get())
}

/// The recorder instrumentation should write to right now, if any.
#[inline]
pub fn current() -> Option<Recorder> {
    if ACTIVE_SOURCES.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let tl = TL_RECORDER.with(|tl| tl.borrow().clone());
    let rec = match tl {
        Some(r) => Some(r),
        None => global(),
    };
    rec.filter(|r| r.is_enabled())
}

// ---------------------------------------------------------------------
// RAII span + free functions.
// ---------------------------------------------------------------------

struct SpanState {
    id: u64,
    parent: u64,
    name: &'static str,
    /// The full recorder, with the open timestamp on *its* clock.
    rec: Option<(Recorder, u64)>,
    /// The flight recorder (measures durations on its own clock).
    flight: Option<crate::flight::FlightRecorder>,
    fields: Vec<Field>,
    /// `(alloc.count, alloc.bytes)` totals at open, reported as deltas on
    /// close.
    #[cfg(feature = "alloc-stats")]
    alloc_at_open: (u64, u64),
}

impl std::fmt::Debug for SpanState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanState")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish()
    }
}

/// An RAII span guard: emits `span_open` on creation and `span_close`
/// (with duration) on drop, to the current [`Recorder`] and/or the
/// global flight recorder. Inert — a single `Option` check — when no
/// sink is installed.
#[must_use = "a span closes when dropped; binding it to _ closes it immediately"]
#[derive(Debug)]
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// An inert span (used on the disabled path).
    pub fn disabled() -> Self {
        Span { state: None }
    }

    /// Is this span actually recording?
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// The span id (0 if not recording).
    pub fn id(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.id)
    }

    /// Attach a field, reported on the close event.
    pub fn record(&mut self, key: &'static str, value: impl IntoField) {
        if let Some(state) = &mut self.state {
            state.fields.push((key, value.into_field()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            self.close(state);
        }
    }
}

impl Span {
    fn close(&self, state: SpanState) {
        #[allow(unused_mut)]
        let mut fields = state.fields;
        #[cfg(feature = "alloc-stats")]
        {
            let (count, bytes) = crate::alloc_stats::totals();
            fields.push((
                "alloc.count",
                FieldValue::U64(count.saturating_sub(state.alloc_at_open.0)),
            ));
            fields.push((
                "alloc.bytes",
                FieldValue::U64(bytes.saturating_sub(state.alloc_at_open.1)),
            ));
        }
        CURRENT_SPAN.with(|c| c.set(state.parent));
        if let Some((rec, open_ts)) = state.rec {
            let dur_ns = rec.now_ns().saturating_sub(open_ts);
            rec.emit_close(state.name, state.id, state.parent, dur_ns, fields.clone());
        }
        if let Some(flight) = state.flight {
            flight.record_close(state.id, state.parent, state.name, &fields);
        }
    }
}

/// Open a span with no fields.
pub fn span(name: &'static str) -> Span {
    span_with(name, Vec::new)
}

/// Open a span; `fields` is only invoked if some sink is active.
pub fn span_with(name: &'static str, fields: impl FnOnce() -> Vec<Field>) -> Span {
    let rec = current();
    let flight = crate::flight::active();
    if rec.is_none() && flight.is_none() {
        return Span::disabled();
    }
    let fields = fields();
    let id = next_span_id();
    let parent = CURRENT_SPAN.with(|c| c.replace(id));
    let rec = rec.map(|r| {
        let open_ts = r.now_ns();
        r.emit_open(name, id, parent, fields.clone());
        (r, open_ts)
    });
    if let Some(flight) = &flight {
        flight.record_open(id, parent, name, &fields);
    }
    Span {
        state: Some(SpanState {
            id,
            parent,
            name,
            rec,
            flight,
            fields: Vec::new(),
            #[cfg(feature = "alloc-stats")]
            alloc_at_open: crate::alloc_stats::totals(),
        }),
    }
}

/// Emit a point event; `fields` is only invoked if some sink is active.
pub fn event_with(name: &'static str, fields: impl FnOnce() -> Vec<Field>) {
    let rec = current();
    let flight = crate::flight::active();
    if rec.is_none() && flight.is_none() {
        return;
    }
    let fields = fields();
    if let Some(rec) = rec {
        rec.point(name, fields.clone());
    }
    if let Some(flight) = flight {
        let parent = CURRENT_SPAN.with(|c| c.get());
        flight.record_point(parent, name, &fields);
    }
}

/// Add `delta` to the named counter on every active sink.
pub fn counter(name: &'static str, delta: u64) {
    if let Some(rec) = current() {
        rec.add(name, delta);
    }
    if let Some(flight) = crate::flight::active() {
        flight.add(name, delta);
    }
}

/// Record a sample in the named histogram on the current recorder.
/// (The flight recorder keeps no histograms; it retains events.)
pub fn record_value(name: &'static str, value: u64) {
    if let Some(rec) = current() {
        rec.record(name, value);
    }
}

/// Open a span: `span!("name")` or `span!("name", key = value, ...)`.
/// Field expressions are not evaluated unless a recorder is active.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span_with($name, || ::std::vec![
            $((stringify!($key), $crate::IntoField::into_field($value))),+
        ])
    };
}

/// Emit a point event: `event!("name", key = value, ...)`.
/// Field expressions are not evaluated unless a recorder is active.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::event_with($name, ::std::vec::Vec::new)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::event_with($name, || ::std::vec![
            $((stringify!($key), $crate::IntoField::into_field($value))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;

    #[test]
    fn disabled_path_records_nothing() {
        assert!(!enabled());
        let mut sp = span("nothing");
        assert!(!sp.is_recording());
        sp.record("k", 1u64);
        counter("c", 1);
        record_value("h", 1);
        drop(sp);
        assert!(!enabled());
    }

    #[test]
    fn thread_install_and_restore() {
        let rec = Recorder::new();
        {
            let _guard = rec.install_thread();
            assert!(enabled());
            counter("x", 2);
        }
        assert!(!enabled());
        assert_eq!(rec.snapshot().counter("x"), 2);
    }

    #[test]
    fn nested_thread_install_restores_outer() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        let _g1 = outer.install_thread();
        {
            let _g2 = inner.install_thread();
            counter("c", 1);
        }
        counter("c", 10);
        assert_eq!(inner.snapshot().counter("c"), 1);
        assert_eq!(outer.snapshot().counter("c"), 10);
    }

    #[test]
    fn muted_recorder_is_skipped() {
        let rec = Recorder::new();
        let _guard = rec.install_thread();
        rec.set_enabled(false);
        assert!(!enabled());
        counter("c", 1);
        rec.set_enabled(true);
        counter("c", 1);
        assert_eq!(rec.snapshot().counter("c"), 1);
    }

    #[test]
    fn span_durations_use_the_injected_clock() {
        let clock = MockClock::new();
        let rec = Recorder::with_clock(clock.clone());
        let _guard = rec.install_thread();
        {
            let _sp = span!("work", input = 3usize);
            clock.advance(1_500);
        }
        let session = rec.snapshot();
        let close = session.closed_spans("work").next().expect("span closed");
        assert_eq!(close.kind, EventKind::SpanClose { dur_ns: 1_500 });
        let hist = session.histogram("work").expect("auto histogram");
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max(), 1_500);
    }

    #[test]
    fn take_drains() {
        let rec = Recorder::new();
        let _guard = rec.install_thread();
        counter("c", 1);
        assert_eq!(rec.take().counter("c"), 1);
        assert!(rec.snapshot().is_empty());
    }
}
