//! Exporters: human-readable span tree and hand-serialized JSON lines.

use crate::histogram::Histogram;
use crate::recorder::{Event, EventKind, TraceSession};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Format a nanosecond duration for humans (`412ns`, `13.2µs`, `4.7ms`,
/// `1.25s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

fn push_fields(out: &mut String, event: &Event) {
    for (k, v) in &event.fields {
        let _ = write!(out, " {k}={v}");
    }
}

/// Render the event stream as an indented tree: one line per span (open
/// fields, then close fields, then duration), point events as leaves.
pub fn render_tree(events: &[Event]) -> String {
    let mut lines: Vec<String> = Vec::new();
    // span_id -> (line index, depth)
    let mut open: HashMap<u64, (usize, usize)> = HashMap::new();
    let mut depth = 0usize;
    for event in events {
        match &event.kind {
            EventKind::SpanOpen => {
                let mut line = format!("{}{}", "  ".repeat(depth), event.name);
                push_fields(&mut line, event);
                open.insert(event.span_id, (lines.len(), depth));
                lines.push(line);
                depth += 1;
            }
            EventKind::SpanClose { dur_ns } => {
                depth = depth.saturating_sub(1);
                match open.remove(&event.span_id) {
                    Some((idx, _)) => {
                        let line = &mut lines[idx];
                        push_fields(line, event);
                        let _ = write!(line, " ({})", fmt_ns(*dur_ns));
                    }
                    None => {
                        // Close without a matching open in this slice
                        // (stream was truncated): render standalone.
                        let mut line = format!("{}{} [close]", "  ".repeat(depth), event.name);
                        push_fields(&mut line, event);
                        let _ = write!(line, " ({})", fmt_ns(*dur_ns));
                        lines.push(line);
                    }
                }
            }
            EventKind::Point => {
                let mut line = format!("{}· {}", "  ".repeat(depth), event.name);
                push_fields(&mut line, event);
                lines.push(line);
            }
        }
    }
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Escape a string for a JSON string literal (contents only, no quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn field_json(value: &crate::recorder::FieldValue) -> String {
    use crate::recorder::FieldValue;
    match value {
        FieldValue::Str(s) => format!("\"{}\"", escape_json(s)),
        FieldValue::U64(v) => format!("{v}"),
        FieldValue::I64(v) => format!("{v}"),
        FieldValue::F64(v) => {
            if v.is_finite() {
                format!("{v}")
            } else {
                // JSON has no NaN/Inf; stringify them.
                format!("\"{v}\"")
            }
        }
        FieldValue::Bool(v) => format!("{v}"),
    }
}

/// Serialize one event as a single JSON object (the `to_jsonl` line
/// format). Also used by the `swsd` crash dumper, which must not build a
/// serializer of its own inside a panic hook.
pub fn event_json(event: &Event) -> String {
    let (kind, dur) = match &event.kind {
        EventKind::SpanOpen => ("span_open", None),
        EventKind::SpanClose { dur_ns } => ("span_close", Some(*dur_ns)),
        EventKind::Point => ("event", None),
    };
    let mut out = format!(
        "{{\"type\":\"{kind}\",\"seq\":{},\"ts_ns\":{},\"name\":\"{}\",\"span\":{},\"parent\":{}",
        event.seq,
        event.ts_ns,
        escape_json(event.name),
        event.span_id,
        event.parent,
    );
    if let Some(dur_ns) = dur {
        let _ = write!(out, ",\"dur_ns\":{dur_ns}");
    }
    if !event.fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in event.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape_json(k), field_json(v));
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// Serialize a whole session as JSON lines: one object per event, then one
/// per counter, then one per histogram (with log2-bucket quantiles).
pub fn to_jsonl(session: &TraceSession) -> String {
    let mut out = String::new();
    for event in &session.events {
        out.push_str(&event_json(event));
        out.push('\n');
    }
    for (name, value) in &session.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            escape_json(name)
        );
    }
    for (name, hist) in &session.histograms {
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            escape_json(name),
            hist.count(),
            hist.sum(),
            hist.min(),
            hist.p50(),
            hist.p99(),
            hist.max(),
        );
    }
    out
}

// ---------------------------------------------------------------------
// Metric summaries (the report's Instrumentation section).
// ---------------------------------------------------------------------

/// Latency statistics for one histogram.
#[derive(Debug, Clone)]
pub struct HistStats {
    /// Histogram name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Median (log2-bucket resolution), nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile (log2-bucket resolution), nanoseconds.
    pub p99_ns: u64,
    /// Largest sample, nanoseconds.
    pub max_ns: u64,
    /// Total, nanoseconds.
    pub sum_ns: u64,
}

impl HistStats {
    /// Compute the stats of a named histogram.
    pub fn of(name: &str, hist: &Histogram) -> Self {
        HistStats {
            name: name.to_string(),
            count: hist.count(),
            p50_ns: hist.p50(),
            p99_ns: hist.p99(),
            max_ns: hist.max(),
            sum_ns: hist.sum(),
        }
    }
}

/// Rows kept in [`TraceSummary::hot_paths`].
const HOT_PATHS_TOP_N: usize = 8;

/// Allocation totals attributed to one span name (only populated when
/// the `alloc-stats` feature instrumented the spans).
#[derive(Debug, Clone, PartialEq)]
pub struct AllocStats {
    /// Span name.
    pub name: String,
    /// Span invocations that reported allocation deltas.
    pub spans: u64,
    /// Total allocations inside those spans.
    pub count: u64,
    /// Total bytes requested inside those spans.
    pub bytes: u64,
}

/// The counters and histogram stats of a session, ready to render.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram stats, sorted by name.
    pub histograms: Vec<HistStats>,
    /// Number of events captured.
    pub events: usize,
    /// The hottest call-tree nodes by exclusive time (top
    /// [`HOT_PATHS_TOP_N`]).
    pub hot_paths: Vec<crate::profile::HotPath>,
    /// Per-span-name allocation totals (empty unless spans carried
    /// `alloc.count`/`alloc.bytes` fields, i.e. the `alloc-stats`
    /// feature).
    pub allocations: Vec<AllocStats>,
}

fn collect_allocations(events: &[Event]) -> Vec<AllocStats> {
    use crate::recorder::FieldValue;
    let mut by_name: std::collections::BTreeMap<&str, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for event in events {
        if !matches!(event.kind, EventKind::SpanClose { .. }) {
            continue;
        }
        let field = |key: &str| {
            event.fields.iter().find_map(|(k, v)| match v {
                FieldValue::U64(n) if *k == key => Some(*n),
                _ => None,
            })
        };
        if let (Some(count), Some(bytes)) = (field("alloc.count"), field("alloc.bytes")) {
            let entry = by_name.entry(event.name).or_insert((0, 0, 0));
            entry.0 += 1;
            entry.1 += count;
            entry.2 += bytes;
        }
    }
    by_name
        .into_iter()
        .map(|(name, (spans, count, bytes))| AllocStats {
            name: name.to_string(),
            spans,
            count,
            bytes,
        })
        .collect()
}

impl TraceSummary {
    /// Summarize a session.
    pub fn of(session: &TraceSession) -> Self {
        TraceSummary {
            counters: session.counters.clone(),
            histograms: session
                .histograms
                .iter()
                .map(|(name, hist)| HistStats::of(name, hist))
                .collect(),
            events: session.events.len(),
            hot_paths: crate::profile::Profile::from_events(&session.events)
                .hot_paths(HOT_PATHS_TOP_N),
            allocations: collect_allocations(&session.events),
        }
    }

    /// True if there is nothing to report.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.events == 0
    }

    /// Render as indented plain text (used by `DesignReport`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "  {} event(s) captured", self.events);
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "    {name} = {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("  timings (count / p50 / p99 / max):\n");
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "    {} = {} / {} / {} / {}",
                    h.name,
                    h.count,
                    fmt_ns(h.p50_ns),
                    fmt_ns(h.p99_ns),
                    fmt_ns(h.max_ns)
                );
            }
        }
        if !self.hot_paths.is_empty() {
            out.push_str("  hot paths (count / excl / incl):\n");
            for p in &self.hot_paths {
                let _ = writeln!(
                    out,
                    "    {} = {} / {} / {}",
                    p.path,
                    p.count,
                    fmt_ns(p.exclusive_ns),
                    fmt_ns(p.inclusive_ns)
                );
            }
        }
        if !self.allocations.is_empty() {
            out.push_str("  allocations (spans / count / bytes):\n");
            for a in &self.allocations {
                let _ = writeln!(
                    out,
                    "    {} = {} / {} / {}",
                    a.name, a.spans, a.count, a.bytes
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Hand-written JSONL checker (used by the tests; no serde anywhere).
// ---------------------------------------------------------------------

/// Line-delimited-JSON validation.
pub mod jsonl {
    /// Check that every non-empty line of `s` is one complete JSON value.
    /// Returns the number of lines validated.
    pub fn check(s: &str) -> Result<usize, String> {
        let mut n = 0;
        for (i, line) in s.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            check_value(line).map_err(|e| format!("line {}: {e}: {line}", i + 1))?;
            n += 1;
        }
        Ok(n)
    }

    /// Check that `line` is exactly one JSON value (with optional
    /// surrounding whitespace).
    pub fn check_value(line: &str) -> Result<(), String> {
        let bytes = line.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\r' | b'\n') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {pos}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => string(b, pos),
            Some(b't') => literal(b, pos, "true"),
            Some(b'f') => literal(b, pos, "false"),
            Some(b'n') => literal(b, pos, "null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            Some(c) => Err(format!("unexpected `{}` at byte {pos}", *c as char)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
        expect(b, pos, b'{')?;
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
        expect(b, pos, b'[')?;
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(());
        }
        loop {
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected `,` or `]` at byte {pos}")),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
        expect(b, pos, b'"')?;
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(());
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                        Some(b'u') => {
                            *pos += 1;
                            for _ in 0..4 {
                                if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                    return Err(format!("bad \\u escape at byte {pos}"));
                                }
                                *pos += 1;
                            }
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                }
                c if c < 0x20 => return Err(format!("raw control byte at {pos}")),
                _ => *pos += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let digits_at = |p: &mut usize| {
            let s = *p;
            while b.get(*p).is_some_and(u8::is_ascii_digit) {
                *p += 1;
            }
            *p > s
        };
        if !digits_at(pos) {
            return Err(format!("bad number at byte {start}"));
        }
        if b.get(*pos) == Some(&b'.') {
            *pos += 1;
            if !digits_at(pos) {
                return Err(format!("bad fraction at byte {pos}"));
            }
        }
        if matches!(b.get(*pos), Some(b'e' | b'E')) {
            *pos += 1;
            if matches!(b.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            if !digits_at(pos) {
                return Err(format!("bad exponent at byte {pos}"));
            }
        }
        Ok(())
    }

    fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(412), "412ns");
        assert_eq!(fmt_ns(13_200), "13.2µs");
        assert_eq!(fmt_ns(4_700_000), "4.70ms");
        assert_eq!(fmt_ns(1_250_000_000), "1.25s");
    }

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn checker_accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "{\"a\":1,\"b\":[true,false,null],\"c\":{\"d\":\"e\\n\"}}",
            "-1.5e-3",
            "\"hi\"",
        ] {
            jsonl::check_value(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn checker_rejects_invalid_json() {
        for bad in [
            "{",
            "{\"a\":}",
            "[1,]",
            "tru",
            "\"unterminated",
            "{\"a\":1} extra",
            "01abc",
            "\"bad\\q\"",
        ] {
            assert!(jsonl::check_value(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn checker_counts_lines() {
        assert_eq!(jsonl::check("{}\n\n[1,2]\n").unwrap(), 2);
        assert!(jsonl::check("{}\nnope\n").is_err());
    }
}
