//! Integration tests for `sws-trace`: span nesting/ordering, counter and
//! histogram accuracy under a mock clock, and JSONL validity via the
//! hand-written checker.

use sws_trace::{export, span, Event, EventKind, MockClock, Recorder};

fn close_dur(e: &Event) -> u64 {
    match e.kind {
        EventKind::SpanClose { dur_ns } => dur_ns,
        _ => panic!("not a close event: {e:?}"),
    }
}

#[test]
fn spans_nest_and_order() {
    let rec = Recorder::new();
    let _guard = rec.install_thread();
    {
        let _outer = span("outer");
        {
            let _inner = span("inner");
            sws_trace::event!("tick", n = 1u64);
        }
        let _sibling = span("sibling");
    }
    let session = rec.take();
    let names: Vec<(&str, &EventKind)> = session.events.iter().map(|e| (e.name, &e.kind)).collect();
    assert_eq!(
        names,
        vec![
            ("outer", &EventKind::SpanOpen),
            ("inner", &EventKind::SpanOpen),
            ("tick", &EventKind::Point),
            (
                "inner",
                &EventKind::SpanClose {
                    dur_ns: close_dur(&session.events[3])
                }
            ),
            ("sibling", &EventKind::SpanOpen),
            (
                "sibling",
                &EventKind::SpanClose {
                    dur_ns: close_dur(&session.events[5])
                }
            ),
            (
                "outer",
                &EventKind::SpanClose {
                    dur_ns: close_dur(&session.events[6])
                }
            ),
        ]
    );
    // Parent links: inner and sibling under outer; tick under inner.
    let outer_id = session.events[0].span_id;
    let inner_id = session.events[1].span_id;
    assert_eq!(session.events[0].parent, 0);
    assert_eq!(session.events[1].parent, outer_id);
    assert_eq!(session.events[2].parent, inner_id);
    assert_eq!(session.events[4].parent, outer_id);
    // Sequence numbers are dense and ordered.
    for (i, e) in session.events.iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }
}

#[test]
fn counters_and_histograms_are_exact_under_mock_clock() {
    let clock = MockClock::new();
    let rec = Recorder::with_clock(clock.clone());
    let _guard = rec.install_thread();

    for (i, advance) in [100u64, 100, 100, 1_000_000].iter().enumerate() {
        let mut sp = span!("op", index = i);
        clock.advance(*advance);
        sp.record("done", true);
        sws_trace::counter("ops", 1);
    }
    sws_trace::record_value("custom", 7);

    let session = rec.take();
    assert_eq!(session.counter("ops"), 4);
    assert_eq!(session.counter("missing"), 0);

    // The auto histogram named after the span saw the exact durations.
    let hist = session.histogram("op").expect("span histogram");
    assert_eq!(hist.count(), 4);
    assert_eq!(hist.min(), 100);
    assert_eq!(hist.max(), 1_000_000);
    assert_eq!(hist.sum(), 1_000_300);
    // p50 in the 100ns octave, p99 bounded by the outlier's bucket.
    assert!(hist.p50() >= 100 && hist.p50() < 200, "{}", hist.p50());
    assert!(hist.p99() >= hist.p50());

    let custom = session.histogram("custom").expect("explicit histogram");
    assert_eq!((custom.count(), custom.max()), (1, 7));

    // Close events carry the exact mock durations.
    let durs: Vec<u64> = session.closed_spans("op").map(close_dur).collect();
    assert_eq!(durs, vec![100, 100, 100, 1_000_000]);
}

#[test]
fn jsonl_export_is_valid_line_delimited_json() {
    let clock = MockClock::new();
    let rec = Recorder::with_clock(clock.clone());
    let _guard = rec.install_thread();
    {
        // Exercise escaping: quotes, backslashes, newlines in field values.
        let mut sp = span!("odd", text = "a \"quoted\"\\ value\nwith newline");
        clock.advance(42);
        sp.record("n", -3i64);
        sws_trace::counter("weird\"counter", 1);
    }
    let session = rec.take();
    let jsonl = export::to_jsonl(&session);
    let lines = export::jsonl::check(&jsonl).expect("valid JSONL");
    // 2 span events + 1 counter + 1 histogram.
    assert_eq!(lines, 4);
    assert!(jsonl.contains("\"type\":\"span_open\""));
    assert!(jsonl.contains("\"dur_ns\":42"));
    assert!(jsonl.contains("\\\"quoted\\\""));
}

#[test]
fn tree_render_shows_hierarchy_and_durations() {
    let clock = MockClock::new();
    let rec = Recorder::with_clock(clock.clone());
    let _guard = rec.install_thread();
    {
        let _a = span!("apply", op = "add_attribute");
        clock.advance(1_000);
        {
            let _b = span("preconditions");
            clock.advance(500);
        }
    }
    let tree = export::render_tree(&rec.take().events);
    let lines: Vec<&str> = tree.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].starts_with("apply op=add_attribute"));
    assert!(lines[0].ends_with("(1.5µs)"), "{}", lines[0]);
    assert!(lines[1].starts_with("  preconditions"), "{}", lines[1]);
    assert!(lines[1].ends_with("(500ns)"), "{}", lines[1]);
}

#[test]
fn profiler_aggregation_is_mockclock_exact() {
    let clock = MockClock::new();
    let rec = Recorder::with_clock(clock.clone());
    let _guard = rec.install_thread();
    // apply { +1000; preconditions { +500 } ; preconditions { +500 } }
    // twice, so counts and merge behaviour are visible.
    for _ in 0..2 {
        let _a = span("apply");
        clock.advance(1_000);
        for _ in 0..2 {
            let _p = span("preconditions");
            clock.advance(500);
        }
    }
    let session = rec.take();
    let profile = sws_trace::Profile::from_events(&session.events);
    let paths = profile.all_paths();
    assert_eq!(paths.len(), 2);
    assert_eq!(paths[0].path, "apply");
    assert_eq!(paths[0].count, 2);
    assert_eq!(paths[0].inclusive_ns, 4_000);
    assert_eq!(paths[0].exclusive_ns, 2_000);
    assert_eq!(paths[1].path, "apply;preconditions");
    assert_eq!(paths[1].count, 4);
    assert_eq!(paths[1].inclusive_ns, 2_000);
    assert_eq!(paths[1].exclusive_ns, 2_000);
    assert_eq!(
        profile.collapsed(),
        "apply 2000\napply;preconditions 2000\n"
    );
    // The summary carries the same rows (hottest first).
    let summary = sws_trace::TraceSummary::of(&session);
    assert_eq!(summary.hot_paths.len(), 2);
    assert_eq!(summary.hot_paths[0].exclusive_ns, 2_000);
}

#[test]
fn summary_collects_counters_and_stats() {
    let clock = MockClock::new();
    let rec = Recorder::with_clock(clock.clone());
    let _guard = rec.install_thread();
    {
        let _sp = span("work");
        clock.advance(2_000);
    }
    sws_trace::counter("things", 5);
    let summary = sws_trace::TraceSummary::of(&rec.take());
    assert!(!summary.is_empty());
    assert_eq!(summary.events, 2);
    assert_eq!(summary.counters, vec![("things".to_string(), 5)]);
    assert_eq!(summary.histograms.len(), 1);
    assert_eq!(summary.histograms[0].count, 1);
    let text = summary.render();
    assert!(text.contains("things = 5"));
    assert!(text.contains("work = 1 /"), "{text}");
}
