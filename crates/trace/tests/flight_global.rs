//! Flight-recorder integration through the *global* install path. These
//! tests live in their own binary and serialize on a lock: the flight
//! recorder is process-global, so a concurrently running span-producing
//! test would pollute the ring.

use std::sync::{Mutex, PoisonError};
use sws_trace::{span, EventKind, Recorder};

static LOCK: Mutex<()> = Mutex::new(());

#[test]
fn flight_recorder_sees_spans_alongside_a_thread_recorder() {
    let _serial = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let rec = Recorder::new();
    let _guard = rec.install_thread();
    let flight = sws_trace::FlightRecorder::with_capacity(8);
    flight.install_global();
    {
        let _sp = span("shared");
        sws_trace::counter("both", 3);
        assert_ne!(sws_trace::current_span_id(), 0);
    }
    assert_eq!(sws_trace::current_span_id(), 0);
    let session = rec.take();
    let snap = flight.snapshot();
    sws_trace::flight::uninstall_global();
    // Same logical span, same id, in both sinks.
    let rec_open = &session.events[0];
    let flight_open = &snap.events[0];
    assert_eq!(rec_open.name, "shared");
    assert_eq!(flight_open.name, "shared");
    assert_eq!(rec_open.span_id, flight_open.span_id);
    assert_eq!(session.counter("both"), 3);
    assert_eq!(snap.counters, vec![("both".to_string(), 3)]);
    assert!(snap.open_spans.is_empty());
}

#[test]
fn flight_recorder_alone_enables_instrumentation() {
    let _serial = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    // No Recorder installed anywhere: the flight recorder still sees
    // spans and events, and `enabled()` reports true.
    let flight = sws_trace::FlightRecorder::with_capacity(4);
    flight.install_global();
    assert!(sws_trace::enabled());
    {
        let mut sp = span("solo");
        assert!(sp.is_recording());
        sp.record("k", 1u64);
        sws_trace::event!("ping", n = 2u64);
    }
    let snap = flight.snapshot();
    sws_trace::flight::uninstall_global();
    assert!(!sws_trace::enabled());
    let kinds: Vec<&str> = snap
        .events
        .iter()
        .map(|e| match e.kind {
            EventKind::SpanOpen => "open",
            EventKind::SpanClose { .. } => "close",
            EventKind::Point => "point",
        })
        .collect();
    assert_eq!(kinds, vec!["open", "point", "close"]);
    // The point event hangs off the open span.
    assert_eq!(snap.events[1].parent, snap.events[0].span_id);
}

#[test]
fn snapshot_survives_a_poisoned_peer_lock() {
    let _serial = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    // A thread that panics while the flight recorder is installed must
    // not make later snapshots (the crash dump path) panic too.
    let flight = sws_trace::FlightRecorder::with_capacity(8);
    flight.install_global();
    let handle = std::thread::spawn(|| {
        let _sp = span("doomed");
        panic!("injected");
    });
    assert!(handle.join().is_err());
    let snap = flight.snapshot();
    sws_trace::flight::uninstall_global();
    // The doomed span opened (and closed during unwind).
    assert!(snap.events.iter().any(|e| e.name == "doomed"));
}
