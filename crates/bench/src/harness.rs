//! Shared helpers for the evaluation harness.

use sws_core::ops::PermissionMatrix;
use sws_core::{ConceptKind, Feedback, ModOp, OpError, Workspace};

/// Choose a concept-schema context in which `op` is permitted, preferring
/// the wagon wheel (which carries most modifications in the paper).
pub fn context_for(op: &ModOp) -> ConceptKind {
    let matrix = PermissionMatrix::new();
    if matrix.allows(ConceptKind::WagonWheel, op.kind()) {
        return ConceptKind::WagonWheel;
    }
    matrix
        .permitting_contexts(op.kind())
        .first()
        .copied()
        .expect("every operation is permitted somewhere (Table 1)")
}

/// Apply a script to a workspace, selecting a permitting context per
/// operation. Returns the feedback stream. Each operation runs under a
/// `bench.apply` span recording the chosen concept-schema context.
pub fn apply_script(ws: &mut Workspace, ops: &[ModOp]) -> Result<Vec<Feedback>, (usize, OpError)> {
    let mut out = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let context = context_for(op);
        let mut sp = sws_trace::span!(
            "bench.apply",
            index = i,
            op = op.kind().name(),
            context = context.tag(),
        );
        match ws.apply(context, op.clone()) {
            Ok(fb) => {
                sp.record("verdict", "ok");
                out.push(fb);
            }
            Err(e) => {
                sp.record("verdict", "err");
                return Err((i, e));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_core::OpKind;

    #[test]
    fn context_prefers_wagon_wheel() {
        let op = ModOp::AddTypeDefinition { ty: "X".into() };
        assert_eq!(context_for(&op), ConceptKind::WagonWheel);
        let op = ModOp::AddSupertype {
            ty: "X".into(),
            supertype: "Y".into(),
        };
        assert_eq!(context_for(&op), ConceptKind::Generalization);
        assert_eq!(op.kind(), OpKind::AddSupertype);
    }

    #[test]
    fn apply_script_emits_one_span_per_op_with_chosen_context() {
        use sws_trace::FieldValue;

        let rec = sws_trace::Recorder::new();
        let _guard = rec.install_thread();
        let g = sws_model::schema_to_graph(
            &sws_odl::parse_schema("interface A { attribute long x; }").unwrap(),
        )
        .unwrap();
        let mut ws = Workspace::new(g);
        let ops = vec![
            ModOp::AddTypeDefinition { ty: "B".into() },
            ModOp::AddSupertype {
                ty: "B".into(),
                supertype: "A".into(),
            },
        ];
        apply_script(&mut ws, &ops).unwrap();
        let session = rec.take();
        let closes: Vec<_> = session.closed_spans("bench.apply").collect();
        assert_eq!(closes.len(), ops.len());
        // Open-time fields (op, context) are on the SpanOpen events; fields
        // recorded mid-span (verdict) land on the SpanClose.
        let opens: Vec<_> = session
            .events
            .iter()
            .filter(|e| e.name == "bench.apply" && matches!(e.kind, sws_trace::EventKind::SpanOpen))
            .collect();
        assert_eq!(opens.len(), ops.len());
        let field = |e: &sws_trace::Event, key: &str| {
            e.fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing field `{key}`"))
        };
        assert_eq!(
            field(opens[0], "op"),
            FieldValue::Str("add_type_definition".into())
        );
        assert_eq!(
            field(opens[0], "context"),
            FieldValue::Str(ConceptKind::WagonWheel.tag().into())
        );
        assert_eq!(
            field(opens[1], "context"),
            FieldValue::Str(ConceptKind::Generalization.tag().into())
        );
        assert_eq!(field(closes[1], "verdict"), FieldValue::Str("ok".into()));
    }
}
