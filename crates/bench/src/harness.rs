//! Shared helpers for the evaluation harness.

use sws_core::ops::PermissionMatrix;
use sws_core::{ConceptKind, Feedback, ModOp, OpError, Workspace};

/// Choose a concept-schema context in which `op` is permitted, preferring
/// the wagon wheel (which carries most modifications in the paper).
pub fn context_for(op: &ModOp) -> ConceptKind {
    let matrix = PermissionMatrix::new();
    if matrix.allows(ConceptKind::WagonWheel, op.kind()) {
        return ConceptKind::WagonWheel;
    }
    matrix
        .permitting_contexts(op.kind())
        .first()
        .copied()
        .expect("every operation is permitted somewhere (Table 1)")
}

/// Apply a script to a workspace, selecting a permitting context per
/// operation. Returns the feedback stream.
pub fn apply_script(ws: &mut Workspace, ops: &[ModOp]) -> Result<Vec<Feedback>, (usize, OpError)> {
    let mut out = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let context = context_for(op);
        out.push(ws.apply(context, op.clone()).map_err(|e| (i, e))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_core::OpKind;

    #[test]
    fn context_prefers_wagon_wheel() {
        let op = ModOp::AddTypeDefinition { ty: "X".into() };
        assert_eq!(context_for(&op), ConceptKind::WagonWheel);
        let op = ModOp::AddSupertype {
            ty: "X".into(),
            supertype: "Y".into(),
        };
        assert_eq!(context_for(&op), ConceptKind::Generalization);
        assert_eq!(op.kind(), OpKind::AddSupertype);
    }
}
