//! Evaluation harness: the logic behind the `repro_*` binaries (one per
//! table/figure of the paper) and the `bench_*` timing binaries, which
//! report per-routine p50/p99 from `sws-trace` histograms instead of
//! depending on an external bench framework.
//!
//! See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.
#![forbid(unsafe_code)]

pub mod case_study;
pub mod edit_scripts;
pub mod figures;
pub mod harness;
pub mod report;
pub mod timing;
