//! Evaluation harness: the logic behind the `repro_*` binaries (one per
//! table/figure of the paper) and the Criterion benches.
//!
//! See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.

pub mod case_study;
pub mod figures;
pub mod harness;
