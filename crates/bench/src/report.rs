//! The one versioned schema behind every `BENCH_*.json` artifact, plus
//! the baseline comparison that `bench_compare` runs in CI.
//!
//! Every bench binary serializes a [`BenchReport`]: group name, seed,
//! iteration count, the host's available parallelism, the size/thread
//! sweeps it covered, and one `{name, p50_ns, p90_ns}` row per measured
//! routine. The JSON is hand-written (this workspace has no serde) with a
//! pinned key order, and [`BenchReport::parse`] reads it back with a
//! minimal recursive-descent parser — enough for baselines committed
//! under `benches/baselines/` to round-trip.
//!
//! [`compare`] diffs a fresh report against a baseline with a per-metric
//! relative tolerance: a metric regresses when `fresh > baseline × (1 +
//! tolerance)` on p50 or p90, and a metric present in the baseline but
//! missing from the fresh run is always a failure (a silently dropped
//! routine must not pass the guard).

use crate::timing::Runner;

/// Version of the `BENCH_*.json` schema.
pub const SCHEMA_VERSION: u64 = 1;

/// One measured routine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metric {
    /// Routine label, e.g. `full/1000` or `edit_verify/500/threads4`.
    pub name: String,
    pub p50_ns: u64,
    pub p90_ns: u64,
}

/// One bench binary's machine-readable output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// Bench group, e.g. `consistency`.
    pub name: String,
    pub seed: u64,
    pub iters: u64,
    /// `std::thread::available_parallelism()` on the producing host — a
    /// comparison across very different hosts is still a comparison, but
    /// this records the context.
    pub host_parallelism: u64,
    /// The size sweep the run covered (empty when not size-swept).
    pub sizes: Vec<u64>,
    /// The thread sweep the run covered (empty when not thread-swept).
    pub threads: Vec<u64>,
    pub metrics: Vec<Metric>,
}

impl BenchReport {
    /// A report shell for `name`; metric rows come from
    /// [`BenchReport::push`] or [`BenchReport::from_runner`].
    pub fn new(name: &str, seed: u64, iters: u64) -> Self {
        BenchReport {
            name: name.to_string(),
            seed,
            iters,
            host_parallelism: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            sizes: Vec::new(),
            threads: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Add one metric row.
    pub fn push(&mut self, name: &str, p50_ns: u64, p90_ns: u64) {
        self.metrics.push(Metric {
            name: name.to_string(),
            p50_ns,
            p90_ns,
        });
    }

    /// Copy every routine a [`Runner`] measured into metric rows, using
    /// the exact (raw-sample) quantiles rather than the log2-bucketed
    /// histogram ones — regression ratios need better than power-of-two
    /// resolution.
    pub fn from_runner(name: &str, seed: u64, runner: &Runner) -> Self {
        let mut report = BenchReport::new(name, seed, runner.iters() as u64);
        let labels: Vec<String> = runner.results().map(|(l, _)| l.to_string()).collect();
        for label in labels {
            let p50 = runner.exact_quantile(&label, 0.50).unwrap_or(0);
            let p90 = runner.exact_quantile(&label, 0.90).unwrap_or(0);
            report.push(&label, p50, p90);
        }
        report
    }

    /// The metric named `name`, if present.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serialize with the pinned key order (`schema_version, name, seed,
    /// iters, host_parallelism, sizes, threads, metrics`).
    pub fn to_json(&self) -> String {
        let list = |xs: &[u64]| xs.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
        let mut out = format!(
            "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"name\": \"{}\",\n  \
             \"seed\": {},\n  \"iters\": {},\n  \"host_parallelism\": {},\n  \
             \"sizes\": [{}],\n  \"threads\": [{}],\n  \"metrics\": [\n",
            escape(&self.name),
            self.seed,
            self.iters,
            self.host_parallelism,
            list(&self.sizes),
            list(&self.threads),
        );
        for (i, m) in self.metrics.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"p50_ns\": {}, \"p90_ns\": {}}}{}\n",
                escape(&m.name),
                m.p50_ns,
                m.p90_ns,
                if i + 1 < self.metrics.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a report produced by [`BenchReport::to_json`] (tolerates any
    /// key order and extra whitespace; rejects unknown schema versions).
    pub fn parse(json: &str) -> Result<BenchReport, String> {
        let value = json::parse(json)?;
        let obj = value.as_object().ok_or("report is not a JSON object")?;
        let version = get_u64(obj, "schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let u64_list = |key: &str| -> Result<Vec<u64>, String> {
            match find(obj, key) {
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| format!("`{key}` is not an array"))?
                    .iter()
                    .map(|x| {
                        x.as_u64()
                            .ok_or_else(|| format!("`{key}` holds a non-integer"))
                    })
                    .collect(),
                None => Ok(Vec::new()),
            }
        };
        let mut metrics = Vec::new();
        for m in find(obj, "metrics")
            .ok_or("missing `metrics`")?
            .as_array()
            .ok_or("`metrics` is not an array")?
        {
            let m = m.as_object().ok_or("metric is not an object")?;
            metrics.push(Metric {
                name: get_str(m, "name")?,
                p50_ns: get_u64(m, "p50_ns")?,
                p90_ns: get_u64(m, "p90_ns")?,
            });
        }
        Ok(BenchReport {
            name: get_str(obj, "name")?,
            seed: get_u64(obj, "seed")?,
            iters: get_u64(obj, "iters")?,
            host_parallelism: get_u64(obj, "host_parallelism")?,
            sizes: u64_list("sizes")?,
            threads: u64_list("threads")?,
            metrics,
        })
    }

    /// Write the report to `path` (stderr notice; a write failure is a
    /// warning, not a bench failure).
    pub fn write(&self, path: &str) {
        match std::fs::write(path, self.to_json()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

fn escape(s: &str) -> String {
    sws_trace::export::escape_json(s)
}

fn find<'a>(obj: &'a [(String, json::Value)], key: &str) -> Option<&'a json::Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(obj: &[(String, json::Value)], key: &str) -> Result<u64, String> {
    find(obj, key)
        .and_then(json::Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer `{key}`"))
}

fn get_str(obj: &[(String, json::Value)], key: &str) -> Result<String, String> {
    find(obj, key)
        .and_then(json::Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

// ---------------------------------------------------------------------
// Baseline comparison
// ---------------------------------------------------------------------

/// Verdict for one baseline metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance (carries the worse of the p50/p90 ratios).
    Ok(f64),
    /// Beyond tolerance on p50 and/or p90 (carries the worse ratio).
    Regressed(f64),
    /// Present in the baseline, absent from the fresh run.
    Missing,
}

/// One row of a [`Comparison`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    pub metric: String,
    pub baseline_p50_ns: u64,
    pub fresh_p50_ns: u64,
    pub verdict: Verdict,
}

/// The result of diffing a fresh report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    pub rows: Vec<CompareRow>,
    pub tolerance: f64,
    /// Metrics the fresh run added that have no baseline yet (informational).
    pub unbaselined: Vec<String>,
}

impl Comparison {
    /// True when no metric regressed or went missing.
    pub fn passed(&self) -> bool {
        self.rows
            .iter()
            .all(|r| matches!(r.verdict, Verdict::Ok(_)))
    }

    /// Failing rows only.
    pub fn failures(&self) -> impl Iterator<Item = &CompareRow> {
        self.rows
            .iter()
            .filter(|r| !matches!(r.verdict, Verdict::Ok(_)))
    }

    /// Render the per-metric table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<36} {:>12} {:>12} {:>8}  verdict (tolerance {:.0}%)\n",
            "metric",
            "base p50",
            "fresh p50",
            "ratio",
            self.tolerance * 100.0
        );
        for row in &self.rows {
            let (ratio, verdict) = match row.verdict {
                Verdict::Ok(r) => (format!("{r:.2}x"), "ok".to_string()),
                Verdict::Regressed(r) => (format!("{r:.2}x"), "REGRESSED".to_string()),
                Verdict::Missing => ("-".to_string(), "MISSING".to_string()),
            };
            out.push_str(&format!(
                "{:<36} {:>12} {:>12} {:>8}  {verdict}\n",
                row.metric,
                sws_trace::fmt_ns(row.baseline_p50_ns),
                sws_trace::fmt_ns(row.fresh_p50_ns),
                ratio,
            ));
        }
        for name in &self.unbaselined {
            out.push_str(&format!("{name:<36} (no baseline yet)\n"));
        }
        out
    }
}

/// Diff `fresh` against `baseline`: every baseline metric must be present
/// and within `tolerance` (relative; `0.25` = +25%) on both p50 and p90.
pub fn compare(baseline: &BenchReport, fresh: &BenchReport, tolerance: f64) -> Comparison {
    let ratio = |fresh: u64, base: u64| fresh as f64 / base.max(1) as f64;
    let mut rows = Vec::new();
    for base in &baseline.metrics {
        let row = match fresh.metric(&base.name) {
            Some(m) => {
                let worst = ratio(m.p50_ns, base.p50_ns).max(ratio(m.p90_ns, base.p90_ns));
                let verdict = if worst > 1.0 + tolerance {
                    Verdict::Regressed(worst)
                } else {
                    Verdict::Ok(worst)
                };
                CompareRow {
                    metric: base.name.clone(),
                    baseline_p50_ns: base.p50_ns,
                    fresh_p50_ns: m.p50_ns,
                    verdict,
                }
            }
            None => CompareRow {
                metric: base.name.clone(),
                baseline_p50_ns: base.p50_ns,
                fresh_p50_ns: 0,
                verdict: Verdict::Missing,
            },
        };
        rows.push(row);
    }
    let unbaselined = fresh
        .metrics
        .iter()
        .filter(|m| baseline.metric(&m.name).is_none())
        .map(|m| m.name.clone())
        .collect();
    Comparison {
        rows,
        tolerance,
        unbaselined,
    }
}

// ---------------------------------------------------------------------
// Minimal JSON value parser (reports only; no serde in this workspace)
// ---------------------------------------------------------------------

mod json {
    /// Just enough of a JSON value tree to read a [`super::BenchReport`].
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(xs) => Some(xs),
                _ => None,
            }
        }

        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(pairs) => Some(pairs),
                _ => None,
            }
        }
    }

    /// Parse one complete JSON value (surrounding whitespace allowed).
    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        skip_ws(b, &mut pos);
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\r' | b'\n') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            Some(c) => Err(format!("unexpected `{}` at byte {pos}", *c as char)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = b
                                .get(*pos..*pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            *pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape `\\{}`", esc as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the raw bytes through.
                    let len = utf8_len(c);
                    let end = *pos - 1 + len;
                    let chunk = b.get(*pos - 1..end).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    *pos = end;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            _ => 4,
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // [
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {pos}")),
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // {
        let mut pairs = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected `:` at byte {pos}"));
            }
            *pos += 1;
            pairs.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("consistency", 42, 200);
        r.sizes = vec![100, 500];
        r.threads = vec![1, 4];
        r.push("full/100", 1_000, 1_500);
        r.push("full/500", 9_000, 12_000);
        r
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample();
        let json = report.to_json();
        sws_trace::export::jsonl::check_value(json.trim()).expect("valid JSON");
        assert_eq!(BenchReport::parse(&json).unwrap(), report);
        // Pinned top-level key order.
        let order = [
            "schema_version",
            "name",
            "seed",
            "iters",
            "host_parallelism",
            "sizes",
            "threads",
            "metrics",
        ];
        let mut last = 0;
        for key in order {
            let at = json.find(&format!("\"{key}\"")).expect("key present");
            assert!(at >= last, "`{key}` out of order");
            last = at;
        }
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let json = sample()
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 999");
        let err = BenchReport::parse(&json).unwrap_err();
        assert!(err.contains("schema_version 999"), "{err}");
        assert!(BenchReport::parse("{").is_err());
        assert!(BenchReport::parse("[1,2]").is_err());
    }

    #[test]
    fn compare_flags_regressions_beyond_tolerance() {
        let base = sample();
        let mut fresh = sample();
        // +10% on full/100: inside a 25% tolerance.
        fresh.metrics[0].p50_ns = 1_100;
        fresh.metrics[0].p90_ns = 1_650;
        // +50% p50 on full/500: out.
        fresh.metrics[1].p50_ns = 13_500;
        let cmp = compare(&base, &fresh, 0.25);
        assert!(!cmp.passed());
        assert!(matches!(cmp.rows[0].verdict, Verdict::Ok(_)));
        match cmp.rows[1].verdict {
            Verdict::Regressed(r) => assert!(r > 1.49 && r < 1.51, "ratio {r}"),
            ref v => panic!("expected regression, got {v:?}"),
        }
        let rendered = cmp.render();
        assert!(rendered.contains("REGRESSED"), "{rendered}");

        // Within tolerance both ways passes.
        let cmp = compare(&base, &base, 0.25);
        assert!(cmp.passed());
    }

    #[test]
    fn p90_alone_can_regress_a_metric() {
        let base = sample();
        let mut fresh = sample();
        fresh.metrics[0].p90_ns = 3_000; // 2x p90, p50 unchanged
        let cmp = compare(&base, &fresh, 0.25);
        assert!(!cmp.passed());
        assert!(matches!(cmp.rows[0].verdict, Verdict::Regressed(_)));
    }

    #[test]
    fn missing_metric_fails_and_new_metric_is_informational() {
        let base = sample();
        let mut fresh = sample();
        fresh.metrics.remove(1);
        fresh.push("brand_new/1", 5, 6);
        let cmp = compare(&base, &fresh, 0.25);
        assert!(!cmp.passed());
        assert!(matches!(cmp.rows[1].verdict, Verdict::Missing));
        assert_eq!(cmp.unbaselined, vec!["brand_new/1".to_string()]);
        assert_eq!(cmp.failures().count(), 1);
        let rendered = cmp.render();
        assert!(rendered.contains("MISSING"), "{rendered}");
        assert!(rendered.contains("no baseline yet"), "{rendered}");
    }

    #[test]
    fn from_runner_copies_every_histogram() {
        let mut runner = Runner::with_iters("demo", 5);
        runner.bench("a", || std::hint::black_box(1 + 1));
        runner.bench("b", || std::hint::black_box(2 + 2));
        let report = BenchReport::from_runner("demo", 7, &runner);
        assert_eq!(report.iters, 5);
        assert_eq!(report.metrics.len(), 2);
        assert_eq!(report.metrics[0].name, "a");
        assert!(report.host_parallelism >= 1);
    }
}
