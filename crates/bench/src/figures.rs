//! Reproduction of the paper's figures (3–8) on the corpus schemas.
//!
//! Each `figN` function returns the rendered artifact plus structural facts
//! asserted by the integration tests; the `repro_*` binaries print them.

use crate::harness::apply_script;
use sws_core::oplang::parse_script;
use sws_core::{decompose, ConceptKind, Workspace};
use sws_corpus::{house, software, university};
use sws_model::{graph_to_schema, query, SchemaGraph, TypeId};
use sws_odl::{print_interface, HierKind};

/// Render one interface of a graph as ODL.
pub fn interface_odl(g: &SchemaGraph, name: &str) -> String {
    let schema = graph_to_schema(g);
    let iface = schema
        .interface(name)
        .unwrap_or_else(|| panic!("no interface `{name}`"));
    print_interface(iface)
}

/// Render a hierarchy as an indented tree.
fn render_tree(
    g: &SchemaGraph,
    root: TypeId,
    children: &dyn Fn(&SchemaGraph, TypeId) -> Vec<TypeId>,
) -> String {
    fn walk(
        g: &SchemaGraph,
        node: TypeId,
        depth: usize,
        children: &dyn Fn(&SchemaGraph, TypeId) -> Vec<TypeId>,
        out: &mut String,
    ) {
        out.push_str(&"    ".repeat(depth));
        out.push_str(g.type_name(node));
        out.push('\n');
        let mut kids = children(g, node);
        kids.sort_by(|a, b| g.type_name(*a).cmp(g.type_name(*b)));
        for kid in kids {
            walk(g, kid, depth + 1, children, out);
        }
    }
    let mut out = String::new();
    walk(g, root, 0, children, &mut out);
    out
}

/// Fig. 3: the course-offering wagon wheel concept schema.
pub fn fig3() -> (String, usize) {
    let g = university::graph();
    let d = decompose(&g);
    let co = g.type_id("CourseOffering").expect("corpus");
    let ww = d.wagon_wheel_of(co).expect("one wagon wheel per type");
    (ww.describe(&g), ww.element_count())
}

/// The Fig. 7 elaboration script: a class schedule that consists of course
/// offerings (an aggregation link added *inside* the course-offering
/// neighbourhood), exactly as §3.4 describes.
pub const FIG7_ELABORATION: &str = "
    add_type_definition(Schedule)
    add_attribute(Schedule, string(16), term_name)
    add_extent_name(Schedule, schedules)
    add_part_of_relationship(Schedule, list<CourseOffering>, offerings,
                             CourseOffering::schedule, (room))
";

/// The §3.4 simplification: courses offered by correspondence only — the
/// time slot entity and room attribute go away.
pub const FIG7_SIMPLIFICATION: &str = "
    delete_relationship(CourseOffering, offered_during)
    delete_type_definition(TimeSlot)
    delete_attribute(CourseOffering, room)
";

/// Fig. 7: elaborate, then simplify; returns the elaborated wagon wheel
/// view and the final one.
pub fn fig7() -> (Workspace, String, String) {
    let mut ws = Workspace::new(university::graph());
    let ops = parse_script(FIG7_ELABORATION).expect("script parses");
    apply_script(&mut ws, &ops).expect("elaboration applies");
    let elaborated = {
        let g = ws.working();
        let d = decompose(g);
        let co = g.type_id("CourseOffering").expect("present");
        d.wagon_wheel_of(co).expect("present").describe(g)
    };
    let ops = parse_script(FIG7_SIMPLIFICATION).expect("script parses");
    apply_script(&mut ws, &ops).expect("simplification applies");
    let simplified = {
        let g = ws.working();
        let d = decompose(g);
        let co = g.type_id("CourseOffering").expect("present");
        d.wagon_wheel_of(co).expect("present").describe(g)
    };
    (ws, elaborated, simplified)
}

/// Fig. 4: the student generalization hierarchy, rendered as a tree.
pub fn fig4() -> String {
    let g = university::graph();
    let student = g.type_id("Student").expect("corpus");
    render_tree(&g, student, &|g, t| g.ty(t).subtypes.clone())
}

/// Fig. 5: the house parts explosion, rendered as a tree.
pub fn fig5() -> String {
    let g = house::graph();
    let root = query::hier_roots(&g, HierKind::PartOf)[0];
    render_tree(&g, root, &|g, t| {
        query::hier_children(g, HierKind::PartOf, t)
            .into_iter()
            .map(|(_, c)| c)
            .collect()
    })
}

/// Fig. 6: the software instance-of sequence, rendered as a chain.
pub fn fig6() -> String {
    let g = software::graph();
    let root = query::hier_roots(&g, HierKind::InstanceOf)[0];
    render_tree(&g, root, &|g, t| {
        query::hier_children(g, HierKind::InstanceOf, t)
            .into_iter()
            .map(|(_, c)| c)
            .collect()
    })
}

/// Fig. 8 + the §3.4 ODL listing: `modify_relationship_target_type`
/// executed on the department/employee/person schema. Returns
/// (before-ODL, after-ODL, workspace).
pub fn fig8() -> (String, String, Workspace) {
    let mut ws = Workspace::new(university::graph());
    let before = format!(
        "{}\n{}",
        interface_odl(ws.working(), "Department"),
        interface_odl(ws.working(), "Employee")
    );
    ws.apply(
        ConceptKind::Generalization,
        sws_core::oplang::parse_statement(
            "modify_relationship_target_type(Department, has, Employee, Person)",
        )
        .expect("statement parses"),
    )
    .expect("the paper's example applies");
    let after = format!(
        "{}\n{}",
        interface_odl(ws.working(), "Department"),
        interface_odl(ws.working(), "Person")
    );
    (before, after, ws)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_wagon_wheel_matches_paper() {
        let (view, _) = fig3();
        for needle in [
            "wagon wheel: CourseOffering",
            "type Course",   // instance-of spoke (dotted in the paper)
            "type Syllabus", // described-by
            "type Book",     // book-for
            "type TimeSlot", // offered-during
            "attribute CourseOffering::room",
            "attribute CourseOffering::duration",
        ] {
            assert!(view.contains(needle), "missing {needle:?} in:\n{view}");
        }
    }

    #[test]
    fn fig7_elaboration_adds_schedule_aggregation() {
        let (ws, elaborated, simplified) = fig7();
        assert!(elaborated.contains("part-of Schedule::offerings -> CourseOffering::schedule"));
        // Simplification removed the time slot and room.
        assert!(!simplified.contains("TimeSlot"));
        assert!(!simplified.contains("room"));
        assert!(ws.working().type_id("TimeSlot").is_none());
        // Deleting TimeSlot cascaded its relationship: visible in the log's
        // impact for the delete_type op.
        let delete_record = ws
            .log()
            .iter()
            .find(|r| matches!(&r.op, sws_core::ModOp::DeleteTypeDefinition { ty } if ty == "TimeSlot"))
            .expect("logged");
        assert!(!delete_record.impact.is_empty());
    }

    #[test]
    fn fig4_tree_shape() {
        let tree = fig4();
        let expected = "\
Student
    Graduate
        Masters
            NonThesisMasters
        PhD
    Undergraduate
";
        assert_eq!(tree, expected);
    }

    #[test]
    fn fig5_tree_contains_roof_explosion() {
        let tree = fig5();
        assert!(tree.starts_with("House\n"));
        assert!(tree.contains("        Roof\n"));
        assert!(tree.contains("            Shingle\n"));
        assert!(tree.contains("            TarPaper\n"));
        assert!(tree.contains("            PlywoodDecking\n"));
    }

    #[test]
    fn fig6_chain_is_linear() {
        let chain = fig6();
        let expected = "\
Application
    Version
        CompiledVersion
            InstalledVersion
";
        assert_eq!(chain, expected);
    }

    #[test]
    fn fig8_odl_matches_paper_listing() {
        let (before, after, _) = fig8();
        // Before (the paper's first listing).
        assert!(before.contains("relationship set<Employee> has inverse Employee::works_in_a"));
        assert!(before.contains("relationship Department works_in_a inverse Department::has;"));
        // After (the paper's second listing).
        assert!(after.contains("relationship set<Person> has inverse Person::works_in_a"));
        assert!(after.contains("relationship Department works_in_a inverse Department::has;"));
        // And Employee no longer declares it.
        let (_, _, ws) = fig8();
        assert!(!interface_odl(ws.working(), "Employee").contains("works_in_a"));
    }
}
