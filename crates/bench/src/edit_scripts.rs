//! Deterministic edit-operation streams for the scaling benches.
//!
//! [`edit_stream`] produces ops that are each individually valid against the
//! *base* schema it was generated from: added names are globally fresh and
//! every deletable member is deleted at most once across the stream. That
//! means a bench can apply any single op to a fresh clone of the base
//! workspace, or the whole stream sequentially to one workspace — both
//! succeed without error handling in the timed loop.

use sws_core::{ConceptKind, ModOp};
use sws_corpus::rng::SplitMix64;
use sws_model::SchemaGraph;
use sws_odl::{Cardinality, CollectionKind, DomainType, Param};

/// Generate `count` operations valid against `g` (see module docs).
/// Deterministic in `(g, count, seed)`.
pub fn edit_stream(g: &SchemaGraph, count: usize, seed: u64) -> Vec<(ConceptKind, ModOp)> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let type_names: Vec<String> = g.types().map(|(_, n)| n.name.to_string()).collect();
    // (type name, attribute name) pairs still available for deletion.
    let mut deletable: Vec<(String, String)> = g
        .types()
        .flat_map(|(_, n)| {
            n.attrs
                .iter()
                .map(|&a| (n.name.to_string(), g.attr(a).name.to_string()))
        })
        .collect();
    let mut fresh = 0usize;
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        fresh += 1;
        let choice = rng.range_u32(0, 4);
        let op = match choice {
            0 => ModOp::AddTypeDefinition {
                ty: format!("GenType_{seed}_{fresh}"),
            },
            1 => ModOp::AddAttribute {
                ty: type_names[rng.range_usize(0, type_names.len())].clone(),
                domain: DomainType::Long,
                size: None,
                name: format!("gen_attr_{seed}_{fresh}"),
            },
            2 => ModOp::AddOperation {
                ty: type_names[rng.range_usize(0, type_names.len())].clone(),
                return_type: DomainType::Void,
                name: format!("gen_op_{seed}_{fresh}"),
                args: vec![Param::input(
                    format!("gen_op_{seed}_{fresh}_x"),
                    DomainType::Long,
                )],
                raises: Vec::new(),
            },
            _ if !deletable.is_empty() => {
                let (ty, name) = deletable.swap_remove(rng.range_usize(0, deletable.len()));
                ModOp::DeleteAttribute { ty, name }
            }
            _ => ModOp::AddTypeDefinition {
                ty: format!("GenType_{seed}_{fresh}"),
            },
        };
        ops.push((ConceptKind::WagonWheel, op));
    }
    ops
}

/// Generate `count` ops of bounded schema *churn*: every odd-indexed op
/// deletes the attribute the previous op added, so replaying any prefix
/// leaves the schema within one attribute of the base — the op log grows
/// without the graph growing. That is exactly the workload checkpoint
/// compaction exists for (`bench_load`): cold-load cost is driven by log
/// length, not schema size. Unlike [`edit_stream`], the stream is only
/// valid *sequentially* (a delete needs its paired add first).
/// Deterministic in `(g, count, seed)`.
pub fn churn_stream(g: &SchemaGraph, count: usize, seed: u64) -> Vec<(ConceptKind, ModOp)> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let type_names: Vec<String> = g.types().map(|(_, n)| n.name.to_string()).collect();
    let mut ops = Vec::with_capacity(count);
    let mut pending: Option<(String, String)> = None;
    for i in 0..count {
        match pending.take() {
            Some((ty, name)) => {
                ops.push((ConceptKind::WagonWheel, ModOp::DeleteAttribute { ty, name }))
            }
            None => {
                let ty = type_names[rng.range_usize(0, type_names.len())].clone();
                let name = format!("churn_{seed}_{}", i / 2);
                ops.push((
                    ConceptKind::WagonWheel,
                    ModOp::AddAttribute {
                        ty: ty.clone(),
                        domain: DomainType::Long,
                        size: None,
                        name: name.clone(),
                    },
                ));
                pending = Some((ty, name));
            }
        }
    }
    ops
}

/// Generate `count` ops where roughly half are *faults*: references to
/// phantom types and members, duplicate definitions, stale `old` values,
/// context-forbidden ops, self-referential supertypes, order-by lists
/// naming ghost attributes, unsolicited deletes of live types (poisoning
/// every later reference to them), and dangling order-by relationships.
/// The stream exercises every diagnostic class of `sws-analyze`; the
/// differential suite replays it against a real `Workspace` and demands
/// the analyzer predict the exact first rejection. Deterministic in
/// `(g, count, seed)`.
pub fn faulty_stream(g: &SchemaGraph, count: usize, seed: u64) -> Vec<(ConceptKind, ModOp)> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let type_names: Vec<String> = g.types().map(|(_, n)| n.name.to_string()).collect();
    let attrs: Vec<(String, String)> = g
        .types()
        .flat_map(|(_, n)| {
            n.attrs
                .iter()
                .map(|&a| (n.name.to_string(), g.attr(a).name.to_string()))
        })
        .collect();
    let mut ops = Vec::with_capacity(count);
    for fresh in 0..count {
        let t = type_names[rng.range_usize(0, type_names.len())].clone();
        let u = type_names[rng.range_usize(0, type_names.len())].clone();
        let (context, op) = match rng.range_u32(0, 10) {
            // Valid ops keep the accepted prefix interesting.
            0 => (
                ConceptKind::WagonWheel,
                ModOp::AddTypeDefinition {
                    ty: format!("FaultGen_{seed}_{fresh}"),
                },
            ),
            1 => (
                ConceptKind::WagonWheel,
                ModOp::AddAttribute {
                    ty: t,
                    domain: DomainType::Long,
                    size: None,
                    name: format!("fault_attr_{seed}_{fresh}"),
                },
            ),
            // Phantom type reference.
            2 => (
                ConceptKind::WagonWheel,
                ModOp::AddAttribute {
                    ty: format!("Phantom_{seed}_{fresh}"),
                    domain: DomainType::Long,
                    size: None,
                    name: format!("fault_attr_{seed}_{fresh}"),
                },
            ),
            // Duplicate type definition.
            3 => (ConceptKind::WagonWheel, ModOp::AddTypeDefinition { ty: t }),
            // Phantom member.
            4 => (
                ConceptKind::WagonWheel,
                ModOp::DeleteAttribute {
                    ty: t,
                    name: format!("no_such_attr_{seed}_{fresh}"),
                },
            ),
            // Stale `old` value on a real attribute (the corpus never uses
            // `unsigned_short`, so `old` cannot match).
            5 if !attrs.is_empty() => {
                let (ty, name) = attrs[rng.range_usize(0, attrs.len())].clone();
                (
                    ConceptKind::WagonWheel,
                    ModOp::ModifyAttributeType {
                        ty,
                        name,
                        old: DomainType::UShort,
                        new: DomainType::Long,
                    },
                )
            }
            // Context-forbidden op (Table 1).
            6 => (
                ConceptKind::WagonWheel,
                ModOp::AddSupertype {
                    ty: t,
                    supertype: u,
                },
            ),
            // Self-referential supertype in the permitted context.
            7 => (
                ConceptKind::Generalization,
                ModOp::AddSupertype {
                    ty: t.clone(),
                    supertype: t,
                },
            ),
            // Valid delete of a live type: every later op naming it
            // becomes a use-after-delete the analyzer must predict.
            8 => (
                ConceptKind::WagonWheel,
                ModOp::DeleteTypeDefinition { ty: t },
            ),
            // Relationship whose order-by names a ghost attribute.
            _ => (
                ConceptKind::WagonWheel,
                ModOp::AddRelationship {
                    ty: t,
                    target: u,
                    cardinality: Cardinality::Many(CollectionKind::Set),
                    path: format!("fault_rel_{seed}_{fresh}"),
                    inverse_path: format!("fault_rel_inv_{seed}_{fresh}"),
                    order_by: vec![format!("ghost_attr_{seed}_{fresh}")],
                },
            ),
        };
        ops.push((context, op));
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_core::Workspace;
    use sws_corpus::synthetic::SyntheticSpec;

    #[test]
    fn stream_is_deterministic() {
        let g = SyntheticSpec::sized(20, 3).generate();
        assert_eq!(edit_stream(&g, 16, 9), edit_stream(&g, 16, 9));
        assert_ne!(edit_stream(&g, 16, 9), edit_stream(&g, 16, 10));
    }

    #[test]
    fn every_op_applies_to_a_fresh_clone_and_sequentially() {
        let g = SyntheticSpec::sized(20, 3).generate();
        let base = Workspace::new(g.clone());
        let stream = edit_stream(&g, 24, 7);
        // Individually valid against the base...
        for (context, op) in &stream {
            let mut ws = base.clone();
            ws.apply(*context, op.clone())
                .unwrap_or_else(|e| panic!("{op:?}: {e}"));
        }
        // ...and as one sequential script.
        let mut ws = base.clone();
        for (context, op) in stream {
            ws.apply(context, op).unwrap();
        }
    }

    #[test]
    fn faulty_stream_is_deterministic_and_actually_faulty() {
        let g = SyntheticSpec::sized(20, 3).generate();
        assert_eq!(faulty_stream(&g, 32, 11), faulty_stream(&g, 32, 11));
        assert_ne!(faulty_stream(&g, 32, 11), faulty_stream(&g, 32, 12));

        // A long-enough stream is guaranteed to trip the executor.
        let mut ws = Workspace::new(g.clone());
        let mut rejected = false;
        for (context, op) in faulty_stream(&g, 32, 11) {
            if ws.apply(context, op).is_err() {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "faulty stream never tripped the executor");
    }

    #[test]
    fn churn_stream_is_deterministic_and_bounded() {
        let g = SyntheticSpec::sized(10, 3).generate();
        assert_eq!(churn_stream(&g, 12, 5), churn_stream(&g, 12, 5));
        assert_ne!(churn_stream(&g, 12, 5), churn_stream(&g, 12, 6));

        let base = Workspace::new(g.clone());
        let base_attrs = base.working().attrs().count();
        let mut ws = base.clone();
        for (context, op) in churn_stream(&g, 101, 5) {
            ws.apply(context, op).unwrap();
        }
        // 101 ops replayed, yet the schema grew by exactly the one
        // unpaired trailing add.
        assert_eq!(ws.log().len(), 101);
        assert_eq!(ws.working().attrs().count(), base_attrs + 1);
    }
}
