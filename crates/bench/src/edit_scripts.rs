//! Deterministic edit-operation streams for the scaling benches.
//!
//! [`edit_stream`] produces ops that are each individually valid against the
//! *base* schema it was generated from: added names are globally fresh and
//! every deletable member is deleted at most once across the stream. That
//! means a bench can apply any single op to a fresh clone of the base
//! workspace, or the whole stream sequentially to one workspace — both
//! succeed without error handling in the timed loop.

use sws_core::{ConceptKind, ModOp};
use sws_corpus::rng::SplitMix64;
use sws_model::SchemaGraph;
use sws_odl::{DomainType, Param};

/// Generate `count` operations valid against `g` (see module docs).
/// Deterministic in `(g, count, seed)`.
pub fn edit_stream(g: &SchemaGraph, count: usize, seed: u64) -> Vec<(ConceptKind, ModOp)> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let type_names: Vec<String> = g.types().map(|(_, n)| n.name.to_string()).collect();
    // (type name, attribute name) pairs still available for deletion.
    let mut deletable: Vec<(String, String)> = g
        .types()
        .flat_map(|(_, n)| {
            n.attrs
                .iter()
                .map(|&a| (n.name.to_string(), g.attr(a).name.to_string()))
        })
        .collect();
    let mut fresh = 0usize;
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        fresh += 1;
        let choice = rng.range_u32(0, 4);
        let op = match choice {
            0 => ModOp::AddTypeDefinition {
                ty: format!("GenType_{seed}_{fresh}"),
            },
            1 => ModOp::AddAttribute {
                ty: type_names[rng.range_usize(0, type_names.len())].clone(),
                domain: DomainType::Long,
                size: None,
                name: format!("gen_attr_{seed}_{fresh}"),
            },
            2 => ModOp::AddOperation {
                ty: type_names[rng.range_usize(0, type_names.len())].clone(),
                return_type: DomainType::Void,
                name: format!("gen_op_{seed}_{fresh}"),
                args: vec![Param::input(
                    format!("gen_op_{seed}_{fresh}_x"),
                    DomainType::Long,
                )],
                raises: Vec::new(),
            },
            _ if !deletable.is_empty() => {
                let (ty, name) = deletable.swap_remove(rng.range_usize(0, deletable.len()));
                ModOp::DeleteAttribute { ty, name }
            }
            _ => ModOp::AddTypeDefinition {
                ty: format!("GenType_{seed}_{fresh}"),
            },
        };
        ops.push((ConceptKind::WagonWheel, op));
    }
    ops
}

/// Generate `count` ops of bounded schema *churn*: every odd-indexed op
/// deletes the attribute the previous op added, so replaying any prefix
/// leaves the schema within one attribute of the base — the op log grows
/// without the graph growing. That is exactly the workload checkpoint
/// compaction exists for (`bench_load`): cold-load cost is driven by log
/// length, not schema size. Unlike [`edit_stream`], the stream is only
/// valid *sequentially* (a delete needs its paired add first).
/// Deterministic in `(g, count, seed)`.
pub fn churn_stream(g: &SchemaGraph, count: usize, seed: u64) -> Vec<(ConceptKind, ModOp)> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let type_names: Vec<String> = g.types().map(|(_, n)| n.name.to_string()).collect();
    let mut ops = Vec::with_capacity(count);
    let mut pending: Option<(String, String)> = None;
    for i in 0..count {
        match pending.take() {
            Some((ty, name)) => {
                ops.push((ConceptKind::WagonWheel, ModOp::DeleteAttribute { ty, name }))
            }
            None => {
                let ty = type_names[rng.range_usize(0, type_names.len())].clone();
                let name = format!("churn_{seed}_{}", i / 2);
                ops.push((
                    ConceptKind::WagonWheel,
                    ModOp::AddAttribute {
                        ty: ty.clone(),
                        domain: DomainType::Long,
                        size: None,
                        name: name.clone(),
                    },
                ));
                pending = Some((ty, name));
            }
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_core::Workspace;
    use sws_corpus::synthetic::SyntheticSpec;

    #[test]
    fn stream_is_deterministic() {
        let g = SyntheticSpec::sized(20, 3).generate();
        assert_eq!(edit_stream(&g, 16, 9), edit_stream(&g, 16, 9));
        assert_ne!(edit_stream(&g, 16, 9), edit_stream(&g, 16, 10));
    }

    #[test]
    fn every_op_applies_to_a_fresh_clone_and_sequentially() {
        let g = SyntheticSpec::sized(20, 3).generate();
        let base = Workspace::new(g.clone());
        let stream = edit_stream(&g, 24, 7);
        // Individually valid against the base...
        for (context, op) in &stream {
            let mut ws = base.clone();
            ws.apply(*context, op.clone())
                .unwrap_or_else(|e| panic!("{op:?}: {e}"));
        }
        // ...and as one sequential script.
        let mut ws = base.clone();
        for (context, op) in stream {
            ws.apply(context, op).unwrap();
        }
    }

    #[test]
    fn churn_stream_is_deterministic_and_bounded() {
        let g = SyntheticSpec::sized(10, 3).generate();
        assert_eq!(churn_stream(&g, 12, 5), churn_stream(&g, 12, 5));
        assert_ne!(churn_stream(&g, 12, 5), churn_stream(&g, 12, 6));

        let base = Workspace::new(g.clone());
        let base_attrs = base.working().attrs().count();
        let mut ws = base.clone();
        for (context, op) in churn_stream(&g, 101, 5) {
            ws.apply(context, op).unwrap();
        }
        // 101 ops replayed, yet the schema grew by exactly the one
        // unpaired trailing add.
        assert_eq!(ws.log().len(), 101);
        assert_eq!(ws.working().attrs().count(), base_attrs + 1);
    }
}
