//! Zero-dependency measurement harness behind the `bench_*` binaries.
//!
//! Each labelled routine runs a warm-up, then a measured batch whose
//! per-iteration wall times feed an [`sws_trace::Histogram`], and the
//! runner prints a p50/p99 table. Iteration counts can be overridden with
//! the `SWS_BENCH_ITERS` environment variable (useful to keep CI smoke
//! runs fast).

use std::time::Instant;
use sws_trace::{fmt_ns, Histogram};

/// Collects timing histograms for a named group of routines.
pub struct Runner {
    group: String,
    iters: u32,
    warmup: u32,
    results: Vec<(String, Histogram)>,
    /// Raw per-iteration samples, parallel to `results`. The histogram's
    /// log2 buckets quantize quantiles to powers of two — fine for the
    /// human-readable table, useless for regression ratios — so exact
    /// quantiles come from here ([`Runner::exact_quantile`]).
    samples: Vec<Vec<u64>>,
}

impl Runner {
    /// A runner with the default iteration count (env-overridable).
    pub fn new(group: &str) -> Self {
        let iters = std::env::var("SWS_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        Runner::with_iters(group, iters)
    }

    /// A runner with an explicit measured-iteration count.
    pub fn with_iters(group: &str, iters: u32) -> Self {
        Runner {
            group: group.to_string(),
            iters: iters.max(1),
            warmup: (iters / 10).clamp(1, 50),
            results: Vec::new(),
            samples: Vec::new(),
        }
    }

    /// Measure a routine that needs no per-iteration setup.
    pub fn bench<R>(&mut self, label: &str, mut routine: impl FnMut() -> R) {
        self.bench_batched(label, || (), |()| routine());
    }

    /// Measure a routine with per-iteration setup excluded from the
    /// timed region (criterion's `iter_batched` shape).
    pub fn bench_batched<I, R>(
        &mut self,
        label: &str,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        for _ in 0..self.warmup {
            std::hint::black_box(routine(setup()));
        }
        let mut hist = Histogram::new();
        let mut raw = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            let ns = start.elapsed().as_nanos() as u64;
            hist.record(ns);
            raw.push(ns);
        }
        self.results.push((label.to_string(), hist));
        self.samples.push(raw);
    }

    /// Like [`Runner::bench_batched`], but the routine borrows its input,
    /// so the input's drop (e.g. deallocating a cloned workspace) stays
    /// outside the timed region — criterion's `iter_batched_ref` shape.
    pub fn bench_batched_ref<I, R>(
        &mut self,
        label: &str,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> R,
    ) {
        for _ in 0..self.warmup {
            let mut input = setup();
            std::hint::black_box(routine(&mut input));
        }
        let mut hist = Histogram::new();
        let mut raw = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            let ns = start.elapsed().as_nanos() as u64;
            hist.record(ns);
            raw.push(ns);
            drop(input);
        }
        self.results.push((label.to_string(), hist));
        self.samples.push(raw);
    }

    /// The measured-iteration count this runner uses.
    pub fn iters(&self) -> u32 {
        self.iters
    }

    /// Every `(label, histogram)` pair recorded so far, in run order.
    pub fn results(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.results.iter().map(|(l, h)| (l.as_str(), h))
    }

    /// The histogram recorded for `label`, if it ran.
    pub fn histogram(&self, label: &str) -> Option<&Histogram> {
        self.results
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, h)| h)
    }

    /// Exact quantile for `label` from the raw samples (nearest-rank, no
    /// log2 bucketing). `q` is clamped to `[0, 1]`.
    pub fn exact_quantile(&self, label: &str, q: f64) -> Option<u64> {
        let at = self.results.iter().position(|(l, _)| l == label)?;
        let mut sorted = self.samples[at].clone();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_unstable();
        let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }

    /// Render the results as an aligned text table.
    pub fn report(&self) -> String {
        let mut out = format!(
            "{} ({} iters/routine)\n{:<32} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            self.group, self.iters, "routine", "p50", "p99", "min", "max", "mean"
        );
        for (label, hist) in &self.results {
            out.push_str(&format!(
                "{:<32} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                label,
                fmt_ns(hist.p50()),
                fmt_ns(hist.p99()),
                fmt_ns(hist.min()),
                fmt_ns(hist.max()),
                fmt_ns(hist.mean()),
            ));
        }
        out
    }

    /// Print the report to stdout.
    pub fn finish(self) {
        print!("{}", self.report());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_records_and_reports() {
        let mut r = Runner::with_iters("demo", 10);
        let mut n = 0u64;
        r.bench("spin", || {
            n = n.wrapping_add(1);
            std::hint::black_box(n)
        });
        r.bench_batched("batched", || vec![1u8; 64], |v| v.len());
        assert_eq!(r.histogram("spin").unwrap().count(), 10);
        assert_eq!(r.histogram("batched").unwrap().count(), 10);
        let report = r.report();
        assert!(report.contains("demo (10 iters/routine)"));
        assert!(report.contains("spin"));
        assert!(report.contains("batched"));
    }
}
