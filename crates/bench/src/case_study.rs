//! The §4 / Figs. 9–11 case study: deriving SacchDB and AAtDB from an
//! ACEDB shrink wrap schema.
//!
//! The paper argues the manually-built ACEDB descendants "could have been
//! created using our technology". We demonstrate it: the op-script needed
//! to customize the ACEDB shrink wrap into each descendant is synthesized,
//! replayed through the full permission/constraint pipeline, and the result
//! is verified equal to the target schema. The reported metrics are the
//! quantitative form of the paper's claim:
//!
//! * **shared types** — the Figs. 9–11 overlap,
//! * **ops needed** vs **from-scratch constructs** — customization effort
//!   against building the schema from nothing,
//! * **reuse fraction** — shrink wrap constructs carried into the custom
//!   schema, from the derived mapping.

use crate::harness::apply_script;
use sws_core::ops::synthesize::synthesize;
use sws_core::{Mapping, Workspace};
use sws_corpus::genome;
use sws_model::{graph_to_schema, SchemaGraph};

/// The outcome of deriving one descendant schema.
#[derive(Debug, Clone)]
pub struct Derivation {
    /// Descendant name.
    pub name: &'static str,
    /// Operations in the synthesized customization script.
    pub ops_needed: usize,
    /// Construct count of the target schema (≈ effort from scratch).
    pub from_scratch_constructs: usize,
    /// Shrink wrap constructs reused (unchanged + modified + moved).
    pub reuse_fraction: f64,
    /// Types shared with the shrink wrap schema.
    pub shared_types: usize,
    /// Types in the target schema.
    pub target_types: usize,
}

impl Derivation {
    /// Customization-vs-from-scratch effort ratio (lower = reuse wins).
    pub fn effort_ratio(&self) -> f64 {
        self.ops_needed as f64 / self.from_scratch_constructs as f64
    }
}

/// Derive `target` from the `shrink_wrap` schema; verify exactness; return
/// metrics.
pub fn derive(name: &'static str, shrink_wrap: &SchemaGraph, target: &SchemaGraph) -> Derivation {
    let script = synthesize(shrink_wrap, target);
    let mut ws = Workspace::new(shrink_wrap.clone());
    apply_script(&mut ws, &script).expect("synthesized script applies cleanly");
    // Compare structure only: the customized schema keeps the shrink wrap's
    // schema name (the designer renames nothing — name equivalence).
    assert_eq!(
        graph_to_schema(ws.working()).interfaces,
        graph_to_schema(target).interfaces,
        "derived schema must equal the target"
    );
    let mapping = Mapping::derive(&ws);
    let summary = mapping.summary();
    let shared_types = target
        .types()
        .filter(|(_, n)| shrink_wrap.type_id(&n.name).is_some())
        .count();
    Derivation {
        name,
        ops_needed: script.len(),
        from_scratch_constructs: target.construct_count(),
        reuse_fraction: summary.reuse_fraction(),
        shared_types,
        target_types: target.type_count(),
    }
}

/// Run the full case study: ACEDB → {SacchDB, AAtDB}.
pub fn run() -> Vec<Derivation> {
    let acedb = genome::acedb();
    vec![
        derive("SacchDB", &acedb, &genome::sacchdb()),
        derive("AAtDB", &acedb, &genome::aatdb()),
    ]
}

/// Render the case-study table.
pub fn render(derivations: &[Derivation]) -> String {
    let acedb = genome::acedb();
    let mut out = String::new();
    out.push_str(&format!(
        "shrink wrap: ACEDB ({} types, {} constructs)\n",
        acedb.type_count(),
        acedb.construct_count()
    ));
    out.push_str(&format!(
        "shared core across all three schemas: {} types\n\n",
        genome::shared_type_names().len()
    ));
    out.push_str(&format!(
        "{:<10} {:>6} {:>8} {:>12} {:>14} {:>12} {:>8}\n",
        "target", "types", "shared", "ops needed", "from scratch", "reuse", "ratio"
    ));
    for d in derivations {
        out.push_str(&format!(
            "{:<10} {:>6} {:>8} {:>12} {:>14} {:>11.1}% {:>8.2}\n",
            d.name,
            d.target_types,
            d.shared_types,
            d.ops_needed,
            d.from_scratch_constructs,
            d.reuse_fraction * 100.0,
            d.effort_ratio()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descendants_derive_exactly() {
        let derivations = run();
        assert_eq!(derivations.len(), 2);
        for d in &derivations {
            // Reuse wins: far fewer ops than building from scratch.
            assert!(
                d.effort_ratio() < 0.6,
                "{}: ratio {:.2} not clearly below from-scratch",
                d.name,
                d.effort_ratio()
            );
            // Most of the shrink wrap carries over.
            assert!(
                d.reuse_fraction > 0.6,
                "{}: reuse {:.2} too low",
                d.name,
                d.reuse_fraction
            );
            // The Figs. 9–11 observation: a large shared type core.
            assert!(d.shared_types >= 10);
        }
    }

    #[test]
    fn render_is_tabular() {
        let table = render(&run());
        assert!(table.contains("SacchDB"));
        assert!(table.contains("AAtDB"));
        assert!(table.contains("shared core across all three schemas: 10 types"));
    }
}
