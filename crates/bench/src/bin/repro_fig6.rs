//! Reproduce Fig. 6: the software instance-of sequence (EMSL).
fn main() {
    println!("Fig. 6 — software instance-of sequence:\n");
    print!("{}", sws_bench::figures::fig6());
}
