//! Reproduce Table 2: addition (and deletion) operations covering every
//! ODL candidate for modification.
use sws_core::ops::coverage;

fn main() {
    println!("Table 2 — addition/deletion operations on ODL candidates:\n");
    print!("{}", coverage::render_table2());
}
