//! Reproduce Table 3: modify operations on ODL candidates (names excluded
//! by the name-equivalence assumption).
use sws_core::ops::coverage;

fn main() {
    println!("Table 3 — modify operations on ODL candidates:\n");
    print!("{}", coverage::render_table3());
}
