//! P2: operation-application latency per category, full pipeline
//! (permission check, precondition constraints, mutation, propagation,
//! feedback).

use sws_bench::timing::Runner;
use sws_core::oplang::parse_statement;
use sws_core::{ConceptKind, Workspace};
use sws_corpus::university;

fn main() {
    let base = Workspace::new(university::graph());
    let mut runner = Runner::new("apply_op");

    let cases: &[(&str, ConceptKind, &str)] = &[
        (
            "add_type",
            ConceptKind::WagonWheel,
            "add_type_definition(Fresh)",
        ),
        (
            "add_attribute",
            ConceptKind::WagonWheel,
            "add_attribute(CourseOffering, string(8), wing)",
        ),
        (
            "add_relationship",
            ConceptKind::WagonWheel,
            "add_relationship(Book, set<Faculty>, recommended_by, Faculty::recommends)",
        ),
        (
            "move_attribute",
            ConceptKind::Generalization,
            "modify_attribute(Faculty, rank, Employee)",
        ),
        (
            "retarget_relationship",
            ConceptKind::Generalization,
            "modify_relationship_target_type(Department, has, Employee, Person)",
        ),
        (
            "delete_type_cascading",
            ConceptKind::WagonWheel,
            "delete_type_definition(Student)",
        ),
    ];
    for (name, context, stmt) in cases {
        let op = parse_statement(stmt).expect("bench statement parses");
        runner.bench_batched(
            name,
            || base.clone(),
            |mut ws| {
                ws.apply(*context, op.clone()).expect("applies");
            },
        );
    }
    runner.finish();
}
