//! P2: operation-application latency per category, full pipeline
//! (permission check, precondition constraints, mutation, propagation,
//! feedback).
//!
//! Results are written to `BENCH_apply_ops.json` at the repository root
//! (override with `SWS_BENCH_OUT`) in the versioned
//! [`sws_bench::report::BenchReport`] schema `bench_compare` understands.

use sws_bench::edit_scripts::edit_stream;
use sws_bench::report::BenchReport;
use sws_bench::timing::Runner;
use sws_core::oplang::parse_statement;
use sws_core::{parallel, ConceptKind, Workspace};
use sws_corpus::{synthetic, university};

fn main() {
    let base = Workspace::new(university::graph());
    let mut runner = Runner::new("apply_op");

    let cases: &[(&str, ConceptKind, &str)] = &[
        (
            "add_type",
            ConceptKind::WagonWheel,
            "add_type_definition(Fresh)",
        ),
        (
            "add_attribute",
            ConceptKind::WagonWheel,
            "add_attribute(CourseOffering, string(8), wing)",
        ),
        (
            "add_relationship",
            ConceptKind::WagonWheel,
            "add_relationship(Book, set<Faculty>, recommended_by, Faculty::recommends)",
        ),
        (
            "move_attribute",
            ConceptKind::Generalization,
            "modify_attribute(Faculty, rank, Employee)",
        ),
        (
            "retarget_relationship",
            ConceptKind::Generalization,
            "modify_relationship_target_type(Department, has, Employee, Person)",
        ),
        (
            "delete_type_cascading",
            ConceptKind::WagonWheel,
            "delete_type_definition(Student)",
        ),
    ];
    for (name, context, stmt) in cases {
        let op = parse_statement(stmt).expect("bench statement parses");
        runner.bench_batched(
            name,
            || base.clone(),
            |mut ws| {
                ws.apply(*context, op.clone()).expect("applies");
            },
        );
    }

    // Size sweep: full apply pipeline (cached preconditions, mutation, undo
    // journaling, dirty-set recording) for one edit against growing
    // synthetic schemas.
    for (n, g) in synthetic::size_sweep(42) {
        let synth = Workspace::new(g.clone());
        let edits = edit_stream(&g, 64, 11);
        let mut next = 0usize;
        runner.bench_batched_ref(
            &format!("synthetic_edit/{n}"),
            || {
                let ws = synth.clone();
                let edit = edits[next % edits.len()].clone();
                next += 1;
                (ws, edit)
            },
            |(ws, (context, op))| {
                ws.apply(*context, op.clone()).expect("applies");
            },
        );
    }

    // Threads sweep: edit + incremental verify — the inner loop of a
    // designer session under `swsd --threads=N`. Worker counts are forced
    // via the same thread-local override the CLI flag uses.
    let threads = [1usize, 2, 4, 8];
    for (n, g) in synthetic::size_sweep(42) {
        let base = Workspace::new(g.clone());
        base.consistency();
        let edits = edit_stream(&g, 64, 11);
        for t in threads {
            let mut next = 0usize;
            runner.bench_batched_ref(
                &format!("edit_verify/{n}/threads{t}"),
                || {
                    let ws = base.clone();
                    let edit = edits[next % edits.len()].clone();
                    next += 1;
                    (ws, edit)
                },
                |(ws, (context, op))| {
                    parallel::with_workers(t, || {
                        ws.apply(*context, op.clone()).expect("applies");
                        ws.consistency()
                    })
                },
            );
        }
    }

    let mut report = BenchReport::from_runner("apply_op", 42, &runner);
    report.sizes = synthetic::size_sweep(42)
        .iter()
        .map(|(n, _)| *n as u64)
        .collect();
    report.threads = threads.iter().map(|&t| t as u64).collect();
    let out = std::env::var("SWS_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_apply_ops.json", env!("CARGO_MANIFEST_DIR")));
    report.write(&out);
    runner.finish();
}
