//! Reproduce Table 1: operations allowed per concept schema type.
use sws_core::ops::PermissionMatrix;

fn main() {
    println!("Table 1 — operations on ODL schema definitions in the context of");
    println!("concept schema types (x = allowed; names are never modifiable):\n");
    print!("{}", PermissionMatrix::new().render_table());
    println!("\nTable 1, paper layout — ODL candidates with A/D/M per context:\n");
    print!("{}", sws_core::ops::coverage::render_table1_candidates());
}
