//! Reproduce Fig. 8 and the §3.4 ODL listing:
//! modify_relationship_target_type(Department, has, Employee, Person).
use sws_bench::figures;

fn main() {
    let (before, after, _) = figures::fig8();
    println!("before the operation:\n{before}");
    println!("after modify_relationship_target_type(Department, has, Employee, Person):\n{after}");
}
