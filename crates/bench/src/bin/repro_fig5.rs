//! Reproduce Fig. 5: the house aggregation hierarchy (parts explosion).
fn main() {
    println!("Fig. 5 — house aggregation hierarchy:\n");
    print!("{}", sws_bench::figures::fig5());
}
