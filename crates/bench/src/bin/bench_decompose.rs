//! P1: concept-schema decomposition scaling (types 10 → 2000), plus the
//! hand-written corpus schemas.

use sws_bench::timing::Runner;
use sws_core::decompose;
use sws_corpus::synthetic::SyntheticSpec;

fn main() {
    let mut runner = Runner::new("decompose");
    for n in [10usize, 50, 200, 500, 2000] {
        let g = SyntheticSpec::sized(n, 42).generate();
        runner.bench(&format!("types/{n}"), || {
            decompose(std::hint::black_box(&g))
        });
    }
    runner.finish();

    let mut runner = Runner::new("decompose_corpus");
    for (name, g) in sws_corpus::all_named() {
        runner.bench(name, || decompose(std::hint::black_box(&g)));
    }
    runner.finish();
}
