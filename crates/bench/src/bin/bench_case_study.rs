//! F9–11: the end-to-end ACEDB case study (synthesize + replay + verify +
//! mapping).

use sws_bench::{case_study, timing::Runner};

fn main() {
    let mut runner = Runner::new("case_study");
    runner.bench("case_study_full", case_study::run);
    runner.finish();
}
