//! Perf-regression guard: diff a fresh `BENCH_*.json` against a committed
//! baseline (see `benches/baselines/`) and fail loudly on regression.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json> [--tolerance=F]
//! ```
//!
//! Tolerance is relative (`0.25` = fresh may be up to 25% slower per
//! metric on p50/p90); the `SWS_BENCH_TOLERANCE` environment variable is
//! the fallback when the flag is absent, and the default is 0.25. CI runs
//! with a much looser tolerance, since its hosts differ from the machine
//! that produced the baseline — the guard is for step-change regressions,
//! not single-digit noise.
//!
//! Exit codes: 0 within tolerance, 1 regression (or baseline metric
//! missing from the fresh run), 2 usage/parse error.

use std::process::ExitCode;
use sws_bench::report::BenchReport;

const USAGE: &str = "usage: bench_compare <baseline.json> <fresh.json> [--tolerance=F]";
const DEFAULT_TOLERANCE: f64 = 0.25;

fn tolerance_from_env() -> Option<f64> {
    std::env::var("SWS_BENCH_TOLERANCE").ok()?.parse().ok()
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let mut tolerance: Option<f64> = None;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        if let Some(value) = arg.strip_prefix("--tolerance=") {
            match value.parse::<f64>() {
                Ok(t) if t >= 0.0 => tolerance = Some(t),
                _ => {
                    eprintln!(
                        "bench_compare: --tolerance wants a non-negative float, got `{value}`"
                    );
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--help" || arg == "-h" {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        } else {
            paths.push(arg);
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let tolerance = tolerance
        .or_else(tolerance_from_env)
        .unwrap_or(DEFAULT_TOLERANCE);

    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_compare: {err}");
            }
            return ExitCode::from(2);
        }
    };
    if baseline.name != fresh.name {
        eprintln!(
            "bench_compare: warning: comparing group `{}` against `{}`",
            fresh.name, baseline.name
        );
    }
    if baseline.host_parallelism != fresh.host_parallelism {
        eprintln!(
            "bench_compare: note: baseline host_parallelism={} vs fresh={}",
            baseline.host_parallelism, fresh.host_parallelism
        );
    }

    let cmp = sws_bench::report::compare(&baseline, &fresh, tolerance);
    print!("{}", cmp.render());
    if cmp.passed() {
        println!(
            "bench_compare: OK ({} metric(s) within tolerance)",
            cmp.rows.len()
        );
        ExitCode::SUCCESS
    } else {
        let n = cmp.failures().count();
        println!("bench_compare: FAIL ({n} metric(s) regressed or missing)");
        ExitCode::from(1)
    }
}
