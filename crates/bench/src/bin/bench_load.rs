//! Cold-start cost of loading a session directory, before and after
//! checkpoint compaction — the number the snapshot + WAL-truncation
//! subsystem exists to buy.
//!
//! For each op count N (default 1 000 / 10 000 / 100 000, override with
//! `SWS_BENCH_SIZES`), a session directory holding N bounded-churn ops
//! (`churn_stream`: each add paired with a delete, so the schema stays
//! small while the log grows) is built on the in-memory `MemIo` backend,
//! and a cold strict load is timed twice:
//!
//! * `full_log/N` — the log as an append-only WAL: replay all N ops;
//! * `checkpointed/N` — after one `checkpoint`: parse the snapshot, replay
//!   the (empty) tail. Load cost becomes O(snapshot), independent of N.
//!
//! Results go to `BENCH_compaction.json` at the repository root (override
//! with `SWS_BENCH_OUT`) in the versioned [`sws_bench::report::BenchReport`]
//! schema that `bench_compare` diffs against `benches/baselines/`.

use std::path::Path;

use sws_bench::edit_scripts::churn_stream;
use sws_bench::report::BenchReport;
use sws_bench::timing::Runner;
use sws_corpus::university;
use sws_repository::io::MemIo;
use sws_repository::{LoadMode, Repository};

const SEED: u64 = 23;

fn sizes() -> Vec<usize> {
    let parsed: Vec<usize> = std::env::var("SWS_BENCH_SIZES")
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect()
        })
        .unwrap_or_default();
    if parsed.is_empty() {
        vec![1_000, 10_000, 100_000]
    } else {
        parsed
    }
}

fn main() {
    let dir = Path::new("/bench_session");
    let mut runner = Runner::new("load");
    let sizes = sizes();

    for &n in &sizes {
        // Build the session once: N churn ops on the university schema,
        // saved as a pure op log (no checkpoint).
        let g = university::graph();
        let mut repo = Repository::ingest(g.clone());
        for (context, op) in churn_stream(&g, n, SEED) {
            repo.workspace_mut()
                .apply(context, op)
                .expect("churn op applies");
        }
        let disk = MemIo::new();
        repo.save_with(&disk, dir).expect("save succeeds");

        runner.bench(&format!("full_log/{n}"), || {
            Repository::load_with(&disk, dir, LoadMode::Strict).expect("full-log load")
        });

        // One checkpoint folds the whole log into a snapshot and
        // truncates the replayed prefix into the archive.
        repo.checkpoint_with(&disk, dir)
            .expect("checkpoint succeeds")
            .expect("log was non-empty");

        runner.bench(&format!("checkpointed/{n}"), || {
            Repository::load_with(&disk, dir, LoadMode::Strict).expect("checkpointed load")
        });
    }

    let mut report = BenchReport::from_runner("load", SEED, &runner);
    report.sizes = sizes.iter().map(|&n| n as u64).collect();
    let out = std::env::var("SWS_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_compaction.json", env!("CARGO_MANIFEST_DIR")));
    report.write(&out);
    runner.finish();
}
