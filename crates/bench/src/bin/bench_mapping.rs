//! P4: mapping derivation and custom-schema emission after a real design
//! session (ACEDB -> SacchDB).

use sws_bench::harness::apply_script;
use sws_bench::timing::Runner;
use sws_core::ops::synthesize::synthesize;
use sws_core::{Mapping, Workspace};
use sws_corpus::genome;
use sws_model::graph_to_schema;
use sws_odl::print_schema;

fn main() {
    let acedb = genome::acedb();
    let script = synthesize(&acedb, &genome::sacchdb());
    let mut ws = Workspace::new(acedb);
    apply_script(&mut ws, &script).expect("derivation applies");

    let mut runner = Runner::new("mapping");
    runner.bench("mapping_derive", || {
        Mapping::derive(std::hint::black_box(&ws))
    });
    runner.bench("custom_schema_emit", || {
        print_schema(&graph_to_schema(std::hint::black_box(ws.working())))
    });
    runner.finish();
}
