//! Reproduce Fig. 4: the student generalization hierarchy.
fn main() {
    println!("Fig. 4 — student generalization hierarchy:\n");
    print!("{}", sws_bench::figures::fig4());
}
