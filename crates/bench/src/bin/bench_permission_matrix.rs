//! T1 companion: permission-matrix lookup cost (it guards every apply).

use sws_bench::timing::Runner;
use sws_core::ops::{OpKind, PermissionMatrix};
use sws_core::ConceptKind;

fn main() {
    let m = PermissionMatrix::new();
    let mut runner = Runner::new("permission_matrix");
    runner.bench("matrix_full_scan", || {
        let mut allowed = 0usize;
        for &context in &ConceptKind::ALL {
            for &op in OpKind::ALL {
                allowed +=
                    usize::from(m.allows(std::hint::black_box(context), std::hint::black_box(op)));
            }
        }
        allowed
    });
    runner.bench("matrix_render_table1", || m.render_table());
    runner.finish();
}
