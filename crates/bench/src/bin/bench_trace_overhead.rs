//! Measures what `sws-trace` instrumentation costs on the hot apply path:
//!
//! * **disabled** — no recorder and no flight recorder installed; every
//!   span/counter call site is one relaxed atomic load plus a
//!   thread-local check.
//! * **flight** — the always-on flight recorder ring (what `swsd` runs
//!   with unconditionally): every span pushes open/close events into a
//!   fixed-capacity mutex-guarded ring.
//! * **enabled** — a thread-local recorder capturing the full event
//!   stream, counters, and histograms (on top of the flight ring, as in
//!   `swsd --trace`).
//! * **disabled_after** — the disabled path re-measured after the flight
//!   recorder and full recorder have been installed and torn down again.
//!
//! The enabled/disabled p50 ratio is the number docs/observability.md
//! quotes; rerun this binary to refresh it. The disabled_after/disabled
//! ratio guards the *disabled-recording* fast path: installing (and
//! uninstalling) the always-on machinery must leave the uninstrumented
//! cost untouched — when the measured run is long enough to be
//! meaningful (`SWS_BENCH_ITERS` ≥ 20), the binary **asserts** that ratio
//! stays ≤ `SWS_TRACE_OVERHEAD_MAX` (default 1.05) and exits nonzero
//! otherwise. Ratios use exact raw-sample quantiles, not the log2
//! histogram buckets (which can only express power-of-two ratios).
//!
//! Results are written to `BENCH_trace_overhead.json` at the repository
//! root (override with `SWS_BENCH_OUT`) in the versioned
//! [`sws_bench::report::BenchReport`] schema.

use std::process::ExitCode;
use sws_bench::report::BenchReport;
use sws_bench::timing::Runner;
use sws_core::oplang::parse_statement;
use sws_core::{ConceptKind, Workspace};
use sws_corpus::university;
use sws_trace::{FlightRecorder, Recorder};

/// Iteration counts below this make the ratio assertion meaningless
/// (CI smoke runs use `SWS_BENCH_ITERS=2`).
const MIN_ITERS_FOR_ASSERT: u32 = 20;

fn overhead_max() -> f64 {
    std::env::var("SWS_TRACE_OVERHEAD_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.05)
}

fn main() -> ExitCode {
    let base = Workspace::new(university::graph());
    let op = parse_statement("add_attribute(CourseOffering, string(8), wing)").expect("parses");
    let apply = |ws: &mut Workspace| {
        ws.apply(ConceptKind::WagonWheel, op.clone())
            .expect("applies");
    };

    let mut runner = Runner::new("trace_overhead");
    runner.bench_batched("apply/disabled", || base.clone(), |mut ws| apply(&mut ws));

    // The always-on path: flight ring only, no full recorder.
    FlightRecorder::new().install_global();
    runner.bench_batched("apply/flight", || base.clone(), |mut ws| apply(&mut ws));

    // Full recording on top (the `swsd --trace` configuration).
    let rec = Recorder::new();
    let guard = rec.install_thread();
    runner.bench_batched(
        "apply/enabled",
        || {
            rec.take(); // keep the event buffer from growing across iterations
            base.clone()
        },
        |mut ws| apply(&mut ws),
    );
    drop(guard);
    sws_trace::flight::uninstall_global();

    // Back to nothing installed: the disabled fast path must cost what it
    // did before the machinery was ever touched.
    runner.bench_batched(
        "apply/disabled_after",
        || base.clone(),
        |mut ws| apply(&mut ws),
    );

    let p50 = |label: &str| runner.exact_quantile(label, 0.50).expect("ran");
    let disabled = p50("apply/disabled");
    let flight = p50("apply/flight");
    let enabled = p50("apply/enabled");
    let disabled_after = p50("apply/disabled_after");

    let report = BenchReport::from_runner("trace_overhead", 0, &runner);
    let out = std::env::var("SWS_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_trace_overhead.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    report.write(&out);

    let iters = runner.iters();
    runner.finish();
    let ratio = |num: u64| num as f64 / disabled.max(1) as f64;
    let disabled_ratio = ratio(disabled_after);
    println!(
        "flight/disabled p50 ratio: {:.2}x\n\
         enabled/disabled p50 ratio: {:.2}x\n\
         disabled_after/disabled p50 ratio: {disabled_ratio:.2}x",
        ratio(flight),
        ratio(enabled),
    );

    if iters < MIN_ITERS_FOR_ASSERT {
        println!("disabled-overhead assertion skipped ({iters} iters < {MIN_ITERS_FOR_ASSERT})");
        return ExitCode::SUCCESS;
    }
    let max = overhead_max();
    if disabled_ratio > max {
        eprintln!(
            "bench_trace_overhead: FAIL: disabled_after/disabled p50 ratio {disabled_ratio:.3}x \
             exceeds SWS_TRACE_OVERHEAD_MAX {max:.2}x"
        );
        return ExitCode::from(1);
    }
    println!("disabled-overhead assertion passed ({disabled_ratio:.3}x <= {max:.2}x)");
    ExitCode::SUCCESS
}
