//! Measures what `sws-trace` instrumentation costs on the hot apply path:
//!
//! * **disabled** — no recorder installed anywhere; every span/counter
//!   call site is one relaxed atomic load.
//! * **enabled** — a thread-local recorder capturing the full event
//!   stream, counters, and histograms.
//!
//! The disabled/enabled p50 ratio is the number docs/observability.md
//! quotes; rerun this binary to refresh it.

use sws_bench::timing::Runner;
use sws_core::oplang::parse_statement;
use sws_core::{ConceptKind, Workspace};
use sws_corpus::university;
use sws_trace::Recorder;

fn main() {
    let base = Workspace::new(university::graph());
    let op = parse_statement("add_attribute(CourseOffering, string(8), wing)").expect("parses");

    let mut runner = Runner::new("trace_overhead");
    runner.bench_batched(
        "apply/disabled",
        || base.clone(),
        |mut ws| {
            ws.apply(ConceptKind::WagonWheel, op.clone())
                .expect("applies");
        },
    );

    let rec = Recorder::new();
    let _guard = rec.install_thread();
    runner.bench_batched(
        "apply/enabled",
        || {
            rec.take(); // keep the event buffer from growing across iterations
            base.clone()
        },
        |mut ws| {
            ws.apply(ConceptKind::WagonWheel, op.clone())
                .expect("applies");
        },
    );

    let disabled = runner.histogram("apply/disabled").expect("ran").p50();
    let enabled = runner.histogram("apply/enabled").expect("ran").p50();
    runner.finish();
    println!(
        "enabled/disabled p50 ratio: {:.2}x",
        enabled as f64 / disabled.max(1) as f64
    );
}
