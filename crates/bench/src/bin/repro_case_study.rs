//! Reproduce the §4 / Figs. 9–11 case study: deriving SacchDB and AAtDB
//! from an ACEDB shrink wrap schema.
use sws_bench::case_study;

fn main() {
    let derivations = case_study::run();
    print!("{}", case_study::render(&derivations));
    println!("\n(every derivation replays through the permission/constraint");
    println!(" pipeline and is verified equal to the target schema)");
}
