//! P5: ODL and modification-language parse/print throughput.

use sws_bench::timing::Runner;
use sws_core::oplang::{parse_script, print_script};
use sws_core::ops::synthesize::synthesize;
use sws_corpus::{genome, synthetic::SyntheticSpec};
use sws_model::{graph_to_schema, SchemaGraph};
use sws_odl::{parse_schema, print_schema};

fn main() {
    let g = SyntheticSpec::sized(200, 42).generate();
    let text = print_schema(&graph_to_schema(&g));
    let mut runner = Runner::new("odl");
    runner.bench("parse_200_types", || {
        parse_schema(std::hint::black_box(&text)).expect("parses")
    });
    let ast = graph_to_schema(&g);
    runner.bench("print_200_types", || {
        print_schema(std::hint::black_box(&ast))
    });
    runner.finish();

    let script = synthesize(&genome::acedb(), &SchemaGraph::new("empty"));
    let script_text = print_script(&script);
    let mut runner = Runner::new("oplang");
    runner.bench("parse_teardown_script", || {
        parse_script(std::hint::black_box(&script_text)).expect("parses")
    });
    runner.finish();
}
