//! Static-analyzer cost: `sws_analyze::analyze_ops` must be O(script),
//! not O(graph) — the abstract interpreter overlays a copy-on-write
//! environment over the base schema and never clones or mutates it.
//!
//! Two sweeps make the claim measurable:
//!
//! * `fixed_script/typesN` — a 64-op stream (adds/deletes; no extent ops,
//!   whose uniqueness precondition scans live types in the executor and
//!   analyzer alike) analyzed against graphs of growing size. Per-op cost
//!   should stay flat as N grows.
//! * `fixed_graph/opsN` — growing scripts against one 200-type graph.
//!   Total cost should grow linearly in script length.
//!
//! Graph sizes default to 100 / 500 / 2000 (override `SWS_BENCH_SIZES`);
//! iterations via `SWS_BENCH_ITERS`.

use sws_analyze::analyze_ops;
use sws_bench::edit_scripts::{edit_stream, faulty_stream};
use sws_bench::timing::Runner;
use sws_corpus::synthetic::SyntheticSpec;

const SEED: u64 = 17;

fn sizes() -> Vec<usize> {
    let parsed: Vec<usize> = std::env::var("SWS_BENCH_SIZES")
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect()
        })
        .unwrap_or_default();
    if parsed.is_empty() {
        vec![100, 500, 2000]
    } else {
        parsed
    }
}

fn main() {
    let mut runner = Runner::new("lint");

    // Graph-size sweep, fixed 64-op script.
    for &n in &sizes() {
        let g = SyntheticSpec::sized(n, SEED).generate();
        let script = edit_stream(&g, 64, SEED);
        runner.bench(&format!("fixed_script/types{n}"), || {
            let report = analyze_ops(&g, &g, &script);
            assert!(report.passes());
            report.findings.len()
        });
    }

    // Script-length sweep, fixed 200-type graph; adversarial streams keep
    // the warning/def-use machinery engaged too.
    let g = SyntheticSpec::sized(200, SEED).generate();
    for len in [16usize, 64, 256] {
        let script = edit_stream(&g, len, SEED);
        runner.bench(&format!("fixed_graph/ops{len}"), || {
            analyze_ops(&g, &g, &script).findings.len()
        });
    }
    let faulty = faulty_stream(&g, 64, SEED);
    runner.bench("fixed_graph/faulty64", || {
        analyze_ops(&g, &g, &faulty).findings.len()
    });

    runner.finish();
}
