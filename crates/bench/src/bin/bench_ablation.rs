//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **A1 — pipeline stages**: raw graph mutation vs. precondition-checked
//!   mutation vs. the full workspace apply (permission + constraints +
//!   mutation + propagation + feedback). Quantifies what the paper's
//!   guidance machinery costs per operation.
//! * **A2 — delete-type propagation mode**: re-wiring subtypes to the
//!   deleted type's supertypes vs. detaching them, on a deep chain.

use sws_bench::timing::Runner;
use sws_core::constraints::check_preconditions;
use sws_core::oplang::parse_statement;
use sws_core::ops::apply::apply_op;
use sws_core::{ConceptKind, Workspace};
use sws_corpus::university;
use sws_model::{RemoveTypeMode, SchemaGraph};

fn bench_pipeline_stages() {
    let base = university::graph();
    let op = parse_statement("add_attribute(CourseOffering, string(8), wing)").expect("parses");
    let mut runner = Runner::new("ablation_pipeline");

    runner.bench_batched(
        "mutation_only",
        || base.clone(),
        |mut g| {
            apply_op(&mut g, &op).expect("applies");
        },
    );
    runner.bench_batched(
        "with_preconditions",
        || base.clone(),
        |mut g| {
            let v = check_preconditions(&op, &g, &base);
            assert!(v.is_empty());
            apply_op(&mut g, &op).expect("applies");
        },
    );
    let ws = Workspace::new(base.clone());
    runner.bench_batched(
        "full_workspace_apply",
        || ws.clone(),
        |mut ws| {
            ws.apply(ConceptKind::WagonWheel, op.clone())
                .expect("applies");
        },
    );
    runner.finish();
}

fn deep_chain(depth: usize) -> SchemaGraph {
    let mut g = SchemaGraph::new("chain");
    let mut prev = g.add_type("T0").expect("fresh");
    for i in 1..depth {
        let t = g.add_type(&format!("T{i}")).expect("fresh");
        g.add_supertype(t, prev).expect("acyclic");
        prev = t;
    }
    g
}

fn bench_remove_type_modes() {
    let mut runner = Runner::new("ablation_remove_type");
    let base = deep_chain(200);
    let middle = base.type_id("T100").expect("exists");
    for (name, mode) in [
        ("rewire_subtypes", RemoveTypeMode::RewireSubtypes),
        ("detach_subtypes", RemoveTypeMode::DetachSubtypes),
    ] {
        runner.bench_batched(
            name,
            || base.clone(),
            |mut g| {
                g.remove_type(middle, mode).expect("removes");
            },
        );
    }
    runner.finish();
}

fn main() {
    bench_pipeline_stages();
    bench_remove_type_modes();
}
