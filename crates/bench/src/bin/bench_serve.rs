//! Request-path latency of the `swsd serve` service layer: one client
//! submitting single-op batches through [`DesignService::handle`] while
//! N−1 other sessions sit open and idle, for N ∈ {1, 4, 16, 64}.
//!
//! Idle sessions are the point: the service keeps per-session metadata
//! but serializes mutations on one writer path, so an open-but-quiet
//! session must cost (near) nothing on the submit tail. The binary
//! asserts that directly — p99 with 16 open sessions may not exceed
//! 8× the 1-session p99 (plus a small absolute slack for timer noise).
//!
//! Rows written to `BENCH_serve.json` (override with `SWS_BENCH_OUT`):
//!
//! * `submit/sessionsN` — p50/p90 of one accepted submit round trip;
//! * `submit_p99/sessionsN` — the exact (nearest-rank) p99, stored in
//!   both fields since the schema carries two quantiles per row;
//! * `submit_ns_per_op/sessionsN` — the mean, i.e. ns-per-op; ops/sec
//!   is its reciprocal and is printed on stdout for humans.
//!
//! `report.sizes` records the session-count sweep. Override the
//! iteration count with `SWS_BENCH_ITERS` (default 200).
//!
//! The committed baseline (`benches/baselines/BENCH_serve.json`)
//! deliberately omits the `submit_p99/*` rows: absolute p99 across runs
//! of a shared CI host is noise (a 20x spike under co-tenant load is
//! routine), so bench_compare treats fresh p99 rows as informational.
//! The tail is guarded by the same-run relative assertion above instead.

use std::cell::Cell;

use sws_bench::report::BenchReport;
use sws_bench::timing::Runner;
use sws_core::ConceptKind;
use sws_corpus::university;
use sws_designer::{DesignService, OpEnvelope, Request, Response, Session};

const SEED: u64 = 31;
const SESSIONS: [usize; 4] = [1, 4, 16, 64];

/// p99 may wobble on a loaded CI host even when the service is flat
/// across session counts; the ratio check gets this much absolute grace.
const P99_SLACK_NS: u64 = 100_000;

fn label(n: usize) -> String {
    format!("submit/sessions{n}")
}

fn main() {
    let mut runner = Runner::new("serve");

    for &n in &SESSIONS {
        let service =
            DesignService::new(Session::from_odl(university::SOURCE).expect("schema ingests"));
        for i in 0..n {
            let opened = service.handle(Request::Open {
                session: format!("s{i}"),
            });
            assert!(
                matches!(opened, Response::Opened { .. }),
                "open s{i} failed: {opened:?}"
            );
        }

        // s0 submits; the other n−1 sessions stay open and idle. Each
        // accepted op advances the head, so the next request's base_rev
        // comes from the previous response — exactly a client at head.
        let rev = Cell::new(0u64);
        let tick = Cell::new(0u64);
        runner.bench_batched(
            &label(n),
            || {
                let t = tick.get();
                tick.set(t + 1);
                Request::Submit {
                    session: "s0".to_string(),
                    base_rev: rev.get(),
                    ops: vec![OpEnvelope {
                        context: ConceptKind::WagonWheel,
                        statement: format!("add_type_definition(Bench{n}x{t})"),
                    }],
                }
            },
            |request| match service.handle(request) {
                Response::Accepted { rev: head, .. } => rev.set(head),
                other => panic!("submit at head must be accepted, got {other:?}"),
            },
        );
    }

    let mut report = BenchReport::from_runner("serve", SEED, &runner);
    report.sizes = SESSIONS.iter().map(|&n| n as u64).collect();
    for &n in &SESSIONS {
        let label = label(n);
        let p99 = runner
            .exact_quantile(&label, 0.99)
            .expect("label was measured");
        report.push(&format!("submit_p99/sessions{n}"), p99, p99);
        let mean = runner.histogram(&label).expect("label was measured").mean();
        report.push(&format!("submit_ns_per_op/sessions{n}"), mean, mean);
        if mean > 0 {
            println!(
                "serve: sessions={n:<3} {:>10.0} ops/sec (mean {mean} ns, p99 {p99} ns)",
                1e9 / mean as f64
            );
        }
    }

    // The acceptance gate: idle sessions must not bend the submit tail.
    let p99_1 = runner
        .exact_quantile(&label(1), 0.99)
        .expect("1-session baseline");
    let p99_16 = runner
        .exact_quantile(&label(16), 0.99)
        .expect("16-session sweep");
    assert!(
        p99_16 <= p99_1.saturating_mul(8).saturating_add(P99_SLACK_NS),
        "p99 with 16 idle sessions ({p99_16} ns) exceeds 8x the 1-session \
         baseline ({p99_1} ns) + {P99_SLACK_NS} ns slack"
    );

    let out = std::env::var("SWS_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));
    report.write(&out);
    runner.finish();
}
