//! P3: consistency-check cost vs schema size — full recheck vs the
//! workspace's incremental engine.
//!
//! For each sweep size N (default 100 / 1 000 / 5 000 types, override with
//! `SWS_BENCH_SIZES`):
//!
//! * `full/N` — `check_consistency` from scratch over the whole schema;
//! * `incremental/N` — `Workspace::consistency()` after one edit, against a
//!   pre-synced consistency state (the setup applies the edit untimed, so
//!   the measured region is exactly the dirty-set sync + report assembly).
//!
//! Results are also written machine-readably to `BENCH_incremental.json`
//! at the repository root (override the path with `SWS_BENCH_OUT`).
//!
//! A threads sweep then re-times the full check and a batched incremental
//! resync at 1/2/4/8 workers (forced via `parallel::with_workers`, the
//! same override `swsd --threads` uses) and writes `BENCH_parallel.json`
//! (override with `SWS_BENCH_PARALLEL_OUT`). Speedups are relative to the
//! 1-worker exact-serial path and depend on the host's core count, which
//! the JSON records as `host_parallelism`.

use sws_bench::edit_scripts::edit_stream;
use sws_bench::timing::Runner;
use sws_core::consistency::check_consistency;
use sws_core::{parallel, Workspace};
use sws_corpus::synthetic;

const SEED: u64 = 42;
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Edits applied per incremental-resync iteration: enough to dirty a
/// closure that clears the parallel threshold on the bigger sizes.
const RESYNC_BATCH: usize = 16;

fn main() {
    let mut runner = Runner::new("consistency");
    let mut rows = Vec::new();

    for (n, g) in synthetic::size_sweep(SEED) {
        let full_label = format!("full/{n}");
        runner.bench(&full_label, || {
            check_consistency(std::hint::black_box(&g), std::hint::black_box(&g))
        });

        // Base workspace with a warm (fully synced) consistency state; each
        // iteration clones it, applies one edit untimed, then times only
        // the incremental recheck.
        let base = Workspace::new(g.clone());
        base.consistency();
        let edits = edit_stream(&g, 64, 7);
        let mut next = 0usize;
        let inc_label = format!("incremental/{n}");
        runner.bench_batched_ref(
            &inc_label,
            || {
                let mut ws = base.clone();
                let (context, op) = edits[next % edits.len()].clone();
                next += 1;
                ws.apply(context, op).expect("edit applies");
                ws
            },
            |ws| ws.consistency(),
        );

        let full = runner.histogram(&full_label).expect("ran");
        let inc = runner.histogram(&inc_label).expect("ran");
        rows.push(format!(
            "    {{\"types\": {n}, \"full_recheck_p50_ns\": {}, \"full_recheck_p99_ns\": {}, \
             \"incremental_p50_ns\": {}, \"incremental_p99_ns\": {}, \"speedup_p50\": {:.2}}}",
            full.p50(),
            full.p99(),
            inc.p50(),
            inc.p99(),
            full.p50() as f64 / inc.p50().max(1) as f64,
        ));
    }

    let out = std::env::var("SWS_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_incremental.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let iters = std::env::var("SWS_BENCH_ITERS").unwrap_or_else(|_| "200".into());
    let json = format!(
        "{{\n  \"bench\": \"incremental_consistency\",\n  \"seed\": {SEED},\n  \
         \"iters\": {iters},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("warning: could not write {out}: {e}");
    } else {
        eprintln!("wrote {out}");
    }

    // ------------------------------------------------------------------
    // Threads sweep → BENCH_parallel.json
    // ------------------------------------------------------------------
    let mut size_rows = Vec::new();
    for (n, g) in synthetic::size_sweep(SEED) {
        let mut full_cells = Vec::new();
        let mut full_serial_p50 = 0u64;
        for t in THREADS {
            let label = format!("full/{n}/threads{t}");
            runner.bench(&label, || {
                parallel::with_workers(t, || {
                    check_consistency(std::hint::black_box(&g), std::hint::black_box(&g))
                })
            });
            let h = runner.histogram(&label).expect("ran");
            if t == 1 {
                full_serial_p50 = h.p50();
            }
            full_cells.push(format!(
                "{{\"threads\": {t}, \"p50_ns\": {}, \"p99_ns\": {}, \"speedup_vs_serial\": {:.2}}}",
                h.p50(),
                h.p99(),
                full_serial_p50 as f64 / h.p50().max(1) as f64,
            ));
        }

        // Incremental resync over a batch of edits: the dirty closure
        // spans many types, so the per-type recheck fans out.
        let base = Workspace::new(g.clone());
        base.consistency();
        let edits = edit_stream(&g, RESYNC_BATCH, 13);
        let mut inc_cells = Vec::new();
        let mut inc_serial_p50 = 0u64;
        for t in THREADS {
            let label = format!("resync{RESYNC_BATCH}/{n}/threads{t}");
            runner.bench_batched_ref(
                &label,
                || {
                    let mut ws = base.clone();
                    for (context, op) in edits.iter().cloned() {
                        ws.apply(context, op).expect("edit applies");
                    }
                    ws
                },
                |ws| parallel::with_workers(t, || ws.consistency()),
            );
            let h = runner.histogram(&label).expect("ran");
            if t == 1 {
                inc_serial_p50 = h.p50();
            }
            inc_cells.push(format!(
                "{{\"threads\": {t}, \"p50_ns\": {}, \"p99_ns\": {}, \"speedup_vs_serial\": {:.2}}}",
                h.p50(),
                h.p99(),
                inc_serial_p50 as f64 / h.p50().max(1) as f64,
            ));
        }

        size_rows.push(format!(
            "    {{\"types\": {n},\n     \"full\": [{}],\n     \"resync_batch{RESYNC_BATCH}\": [{}]}}",
            full_cells.join(", "),
            inc_cells.join(", "),
        ));
    }

    let parallel_out = std::env::var("SWS_BENCH_PARALLEL_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_parallel.json", env!("CARGO_MANIFEST_DIR")));
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"parallel_consistency\",\n  \"seed\": {SEED},\n  \
         \"iters\": {iters},\n  \"host_parallelism\": {host},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        size_rows.join(",\n")
    );
    if let Err(e) = std::fs::write(&parallel_out, &json) {
        eprintln!("warning: could not write {parallel_out}: {e}");
    } else {
        eprintln!("wrote {parallel_out}");
    }

    runner.finish();
}
