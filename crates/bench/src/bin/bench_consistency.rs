//! P3: consistency-check cost vs schema size — full recheck vs the
//! workspace's incremental engine.
//!
//! For each extended sweep size N (default 100 / 1 000 / 5 000 / 50 000 /
//! 100 000 types, override with `SWS_BENCH_SIZES`):
//!
//! * `full/N` — `check_consistency` from scratch over the whole schema
//!   (timed only up to 5 000 types; the two large sizes exist to show the
//!   incremental path stays flat where a full recheck would not);
//! * `incremental/N` — `Workspace::consistency()` after one edit, against a
//!   pre-synced consistency state (the setup applies the edit untimed, so
//!   the measured region is exactly the dirty-set sync + report assembly).
//!
//! Results are also written machine-readably to `BENCH_incremental.json`
//! at the repository root (override the path with `SWS_BENCH_OUT`), in
//! the versioned [`sws_bench::report::BenchReport`] schema that
//! `bench_compare` diffs against `benches/baselines/`.
//!
//! A threads sweep then re-times the full check and a batched incremental
//! resync at 1/2/4/8 workers (forced via `parallel::with_workers`, the
//! same override `swsd --threads` uses) and writes `BENCH_parallel.json`
//! (override with `SWS_BENCH_PARALLEL_OUT`), same schema. Thread-sweep
//! numbers depend on the host's core count, which the report records as
//! `host_parallelism`.

use sws_bench::edit_scripts::edit_stream;
use sws_bench::report::BenchReport;
use sws_bench::timing::Runner;
use sws_core::consistency::check_consistency;
use sws_core::{parallel, Workspace};
use sws_corpus::synthetic;

const SEED: u64 = 42;
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Edits applied per incremental-resync iteration: enough to dirty a
/// closure that clears the parallel threshold on the bigger sizes.
const RESYNC_BATCH: usize = 16;
/// Sizes above this only time the incremental path: a timed full recheck
/// at 50k/100k would dominate the run without informing the comparison.
const FULL_CHECK_MAX: usize = 5_000;

fn main() {
    let mut runner = Runner::new("consistency");
    let mut incremental = BenchReport::new("incremental_consistency", SEED, 0);

    for (n, g) in synthetic::size_sweep_large(SEED) {
        incremental.sizes.push(n as u64);
        let full_label = format!("full/{n}");
        if n <= FULL_CHECK_MAX {
            runner.bench(&full_label, || {
                check_consistency(std::hint::black_box(&g), std::hint::black_box(&g))
            });
        }

        // Base workspace with a warm (fully synced) consistency state; each
        // iteration clones it, applies one edit untimed, then times only
        // the incremental recheck.
        let base = Workspace::new(g.clone());
        base.consistency();
        let edits = edit_stream(&g, 64, 7);
        let mut next = 0usize;
        let inc_label = format!("incremental/{n}");
        runner.bench_batched_ref(
            &inc_label,
            || {
                let mut ws = base.clone();
                let (context, op) = edits[next % edits.len()].clone();
                next += 1;
                ws.apply(context, op).expect("edit applies");
                ws
            },
            |ws| ws.consistency(),
        );

        let labels: &[&String] = if n <= FULL_CHECK_MAX {
            &[&full_label, &inc_label]
        } else {
            &[&inc_label]
        };
        for &label in labels {
            incremental.push(
                label,
                runner.exact_quantile(label, 0.50).expect("ran"),
                runner.exact_quantile(label, 0.90).expect("ran"),
            );
        }
    }

    let out = std::env::var("SWS_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_incremental.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    incremental.iters = runner.iters() as u64;
    incremental.write(&out);

    // ------------------------------------------------------------------
    // Threads sweep → BENCH_parallel.json
    // ------------------------------------------------------------------
    let mut par_report = BenchReport::new("parallel_consistency", SEED, runner.iters() as u64);
    par_report.threads = THREADS.iter().map(|&t| t as u64).collect();
    for (n, g) in synthetic::size_sweep(SEED) {
        par_report.sizes.push(n as u64);
        for t in THREADS {
            let label = format!("full/{n}/threads{t}");
            runner.bench(&label, || {
                parallel::with_workers(t, || {
                    check_consistency(std::hint::black_box(&g), std::hint::black_box(&g))
                })
            });
            par_report.push(
                &label,
                runner.exact_quantile(&label, 0.50).expect("ran"),
                runner.exact_quantile(&label, 0.90).expect("ran"),
            );
        }

        // Incremental resync over a batch of edits: the dirty closure
        // spans many types, so the per-type recheck fans out.
        let base = Workspace::new(g.clone());
        base.consistency();
        let edits = edit_stream(&g, RESYNC_BATCH, 13);
        for t in THREADS {
            let label = format!("resync{RESYNC_BATCH}/{n}/threads{t}");
            runner.bench_batched_ref(
                &label,
                || {
                    let mut ws = base.clone();
                    for (context, op) in edits.iter().cloned() {
                        ws.apply(context, op).expect("edit applies");
                    }
                    ws
                },
                |ws| parallel::with_workers(t, || ws.consistency()),
            );
            par_report.push(
                &label,
                runner.exact_quantile(&label, 0.50).expect("ran"),
                runner.exact_quantile(&label, 0.90).expect("ran"),
            );
        }
    }

    let parallel_out = std::env::var("SWS_BENCH_PARALLEL_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_parallel.json", env!("CARGO_MANIFEST_DIR")));
    par_report.write(&parallel_out);

    runner.finish();
}
