//! P3: consistency-check cost vs schema size.

use sws_bench::timing::Runner;
use sws_core::consistency::check_consistency;
use sws_corpus::synthetic::SyntheticSpec;

fn main() {
    let mut runner = Runner::new("consistency");
    for n in [10usize, 50, 200, 500] {
        let g = SyntheticSpec::sized(n, 42).generate();
        runner.bench(&format!("types/{n}"), || {
            check_consistency(std::hint::black_box(&g), std::hint::black_box(&g))
        });
    }
    runner.finish();
}
