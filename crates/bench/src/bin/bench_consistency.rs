//! P3: consistency-check cost vs schema size — full recheck vs the
//! workspace's incremental engine.
//!
//! For each sweep size N (default 100 / 1 000 / 5 000 types, override with
//! `SWS_BENCH_SIZES`):
//!
//! * `full/N` — `check_consistency` from scratch over the whole schema;
//! * `incremental/N` — `Workspace::consistency()` after one edit, against a
//!   pre-synced consistency state (the setup applies the edit untimed, so
//!   the measured region is exactly the dirty-set sync + report assembly).
//!
//! Results are also written machine-readably to `BENCH_incremental.json`
//! at the repository root (override the path with `SWS_BENCH_OUT`).

use sws_bench::edit_scripts::edit_stream;
use sws_bench::timing::Runner;
use sws_core::consistency::check_consistency;
use sws_core::Workspace;
use sws_corpus::synthetic;

const SEED: u64 = 42;

fn main() {
    let mut runner = Runner::new("consistency");
    let mut rows = Vec::new();

    for (n, g) in synthetic::size_sweep(SEED) {
        let full_label = format!("full/{n}");
        runner.bench(&full_label, || {
            check_consistency(std::hint::black_box(&g), std::hint::black_box(&g))
        });

        // Base workspace with a warm (fully synced) consistency state; each
        // iteration clones it, applies one edit untimed, then times only
        // the incremental recheck.
        let base = Workspace::new(g.clone());
        base.consistency();
        let edits = edit_stream(&g, 64, 7);
        let mut next = 0usize;
        let inc_label = format!("incremental/{n}");
        runner.bench_batched_ref(
            &inc_label,
            || {
                let mut ws = base.clone();
                let (context, op) = edits[next % edits.len()].clone();
                next += 1;
                ws.apply(context, op).expect("edit applies");
                ws
            },
            |ws| ws.consistency(),
        );

        let full = runner.histogram(&full_label).expect("ran");
        let inc = runner.histogram(&inc_label).expect("ran");
        rows.push(format!(
            "    {{\"types\": {n}, \"full_recheck_p50_ns\": {}, \"full_recheck_p99_ns\": {}, \
             \"incremental_p50_ns\": {}, \"incremental_p99_ns\": {}, \"speedup_p50\": {:.2}}}",
            full.p50(),
            full.p99(),
            inc.p50(),
            inc.p99(),
            full.p50() as f64 / inc.p50().max(1) as f64,
        ));
    }

    let out = std::env::var("SWS_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_incremental.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let iters = std::env::var("SWS_BENCH_ITERS").unwrap_or_else(|_| "200".into());
    let json = format!(
        "{{\n  \"bench\": \"incremental_consistency\",\n  \"seed\": {SEED},\n  \
         \"iters\": {iters},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("warning: could not write {out}: {e}");
    } else {
        eprintln!("wrote {out}");
    }

    runner.finish();
}
