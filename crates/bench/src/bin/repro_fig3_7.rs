//! Reproduce Figs. 3 and 7: the course-offering wagon wheel, its
//! elaboration with a class schedule, and the correspondence-course
//! simplification.
use sws_bench::figures;

fn main() {
    let (fig3, elements) = figures::fig3();
    println!("Fig. 3 — course offering concept schema ({elements} elements):\n{fig3}");
    let (ws, elaborated, simplified) = figures::fig7();
    println!("Fig. 7 — elaborated course offering:\n{elaborated}");
    println!("simplified for correspondence-only courses:\n{simplified}");
    println!("operation log:");
    for record in ws.log() {
        println!("  [{}] {}", record.context.tag(), record.op);
        for entry in &record.impact.entries {
            println!("      impact: {entry}");
        }
    }
}
